"""Tests of the adversarial schedulers."""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import pytest

from repro.exceptions import SchedulerError
from repro.graphs import families
from repro.sim import (
    AgentSpec,
    AsyncEngine,
    FunctionController,
    GreedyAvoidingScheduler,
    LazyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    StationaryController,
)
from repro.sim.actions import Move
from repro.sim.schedulers import Advance, Scheduler, Wake, complete


def walker(name: str, ports: Sequence[int], label: int = 1) -> FunctionController:
    def factory(obs):
        def program(obs):
            for port in ports:
                obs = yield Move(port)
            return obs

        return program(obs)

    return FunctionController(name, factory, label=label)


def run(graph, agents, scheduler, **kwargs):
    engine = AsyncEngine(graph, agents, scheduler, **kwargs)
    return engine.run()


class TestRoundRobin:
    def test_alternates_between_agents(self, ring6):
        result = run(
            ring6,
            [AgentSpec(walker("a", [0] * 4), 0), AgentSpec(walker("b", [0] * 4), 3)],
            RoundRobinScheduler(),
        )
        assert result.traversals_by_agent == {"a": 4, "b": 4}

    def test_respects_explicit_order(self, ring6):
        scheduler = RoundRobinScheduler(order=["b", "a"])
        engine = AsyncEngine(
            ring6,
            [AgentSpec(walker("a", [0]), 0), AgentSpec(walker("b", [0]), 3)],
            scheduler,
        )
        engine._bootstrap()
        first = scheduler.decide(engine.view)
        assert isinstance(first, Advance) and first.agent == "b"

    def test_skips_non_eligible_agents(self, ring6):
        result = run(
            ring6,
            [
                AgentSpec(walker("a", [0, 0]), 0),
                AgentSpec(StationaryController("b"), 3),
            ],
            RoundRobinScheduler(),
        )
        assert result.traversals_by_agent == {"a": 2, "b": 0}


class TestRandomScheduler:
    def test_same_seed_same_interleaving(self, ring6):
        def agents():
            return [
                AgentSpec(walker("a", [0] * 6), 0),
                AgentSpec(walker("b", [0] * 6), 3),
            ]

        first = run(ring6, agents(), RandomScheduler(seed=5))
        second = run(ring6, agents(), RandomScheduler(seed=5))
        assert first.traversals_by_agent == second.traversals_by_agent
        assert first.decisions == second.decisions

    def test_weights_bias_the_choice(self, ring6):
        # With weight 0 on "b", only "a" should ever be advanced while "a" is
        # still eligible.
        scheduler = RandomScheduler(seed=1, weights={"a": 1.0, "b": 0.0})
        result = run(
            ring6,
            [AgentSpec(walker("a", [0] * 3), 0), AgentSpec(walker("b", [0] * 3), 3)],
            scheduler,
        )
        # both finish eventually (b runs once a has stopped)
        assert result.traversals_by_agent == {"a": 3, "b": 3}


class TestLazyScheduler:
    def test_starves_until_threshold(self, ring6):
        scheduler = LazyScheduler("b", release_after=4)
        trace = []

        class TrackingScheduler(LazyScheduler):
            def choose(self, view):
                decision = super().choose(view)
                if isinstance(decision, Advance):
                    trace.append(decision.agent)
                return decision

        scheduler = TrackingScheduler("b", release_after=4)
        run(
            ring6,
            [AgentSpec(walker("a", [0] * 6), 0), AgentSpec(walker("b", [0] * 6), 3)],
            scheduler,
        )
        assert trace[:4] == ["a", "a", "a", "a"]
        assert "b" in trace[4:]
        assert scheduler.released

    def test_delay_until_stop_releases_only_when_others_stop(self, ring6):
        scheduler = LazyScheduler("b", release_after=None)
        result = run(
            ring6,
            [AgentSpec(walker("a", [0] * 3), 0), AgentSpec(walker("b", [0] * 2), 3)],
            scheduler,
        )
        # "a" performs its whole walk before "b" moves at all.
        assert result.traversals_by_agent == {"a": 3, "b": 2}
        assert scheduler.released


class TestGreedyAvoidingScheduler:
    def test_rejects_non_positive_patience(self):
        with pytest.raises(SchedulerError):
            GreedyAvoidingScheduler(patience=0)

    def test_meeting_is_delayed_but_not_prevented(self, ring4):
        # Two agents walking towards each other on a tiny ring: the avoider
        # parks them repeatedly (partial advances) but patience eventually
        # forces the meeting.
        result = run(
            ring4,
            [
                AgentSpec(walker("a", [0] * 40, label=1), 0),
                AgentSpec(walker("b", [0] * 40, label=2), 2),
            ],
            GreedyAvoidingScheduler(patience=8),
            rendezvous=("a", "b"),
        )
        assert result.met
        assert result.decisions > result.total_traversals  # parking happened

    def test_larger_patience_means_at_least_as_many_decisions(self, ring4):
        def agents():
            return [
                AgentSpec(walker("a", [0] * 40, label=1), 0),
                AgentSpec(walker("b", [0] * 40, label=2), 2),
            ]

        small = run(ring4, agents(), GreedyAvoidingScheduler(patience=4), rendezvous=("a", "b"))
        large = run(ring4, agents(), GreedyAvoidingScheduler(patience=32), rendezvous=("a", "b"))
        assert large.decisions >= small.decisions

    def test_avoider_produces_only_legal_advances(self, ring6):
        # Run under the engine: any illegal decision would raise SchedulerError.
        result = run(
            ring6,
            [
                AgentSpec(walker("a", [0] * 20, label=1), 0),
                AgentSpec(walker("b", [1] * 20, label=2), 3),
            ],
            GreedyAvoidingScheduler(patience=5),
        )
        assert result.total_traversals == 40


class TestWakeSchedule:
    def test_wake_decision_emitted_at_threshold(self, ring6):
        scheduler = RoundRobinScheduler(wake_schedule={"b": 2})
        result = run(
            ring6,
            [
                AgentSpec(walker("a", [0] * 4), 0),
                AgentSpec(walker("b", [0] * 4, label=2), 3, dormant=True),
            ],
            scheduler,
        )
        assert result.traversals_by_agent["b"] == 4

    def test_wake_on_nonexistent_threshold_not_reached(self, ring6):
        scheduler = RoundRobinScheduler(wake_schedule={"b": 10_000})
        result = run(
            ring6,
            [
                AgentSpec(walker("a", [0] * 3), 0),
                AgentSpec(walker("b", [0] * 3, label=2), 3, dormant=True),
            ],
            scheduler,
        )
        assert result.traversals_by_agent["b"] == 0


class TestDecisionValidation:
    def test_illegal_advance_is_rejected_by_engine(self, ring6):
        class BadScheduler(Scheduler):
            def choose(self, view):
                return Advance("a", Fraction(0))  # not an advance at all

        engine = AsyncEngine(
            ring6, [AgentSpec(walker("a", [0]), 0)], BadScheduler()
        )
        with pytest.raises(SchedulerError):
            engine.run()

    def test_waking_active_agent_is_rejected(self, ring6):
        class BadScheduler(Scheduler):
            def choose(self, view):
                return Wake("a")

        engine = AsyncEngine(
            ring6, [AgentSpec(walker("a", [0]), 0)], BadScheduler()
        )
        with pytest.raises(SchedulerError):
            engine.run()

    def test_unknown_decision_type_rejected(self, ring6):
        class BadScheduler(Scheduler):
            def choose(self, view):
                return object()

        engine = AsyncEngine(
            ring6, [AgentSpec(walker("a", [0]), 0)], BadScheduler()
        )
        with pytest.raises(SchedulerError):
            engine.run()

    def test_complete_helper_builds_full_advance(self):
        decision = complete("x")
        assert isinstance(decision, Advance)
        assert decision.agent == "x" and decision.to == 1
