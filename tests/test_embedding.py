"""Tests of the geometric embedding used for reporting."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import GraphError
from repro.graphs import GraphEmbedding, families


class TestEmbedding:
    def test_node_points_are_distinct(self, ring6):
        embedding = GraphEmbedding(ring6)
        points = [embedding.node_point(v) for v in ring6.nodes()]
        coordinates = {(p.x, p.y, p.z) for p in points}
        assert len(coordinates) == ring6.size

    def test_edge_endpoints_match_node_points(self, ring6):
        embedding = GraphEmbedding(ring6)
        for key in ring6.edges():
            start = embedding.edge_point(key, Fraction(0))
            end = embedding.edge_point(key, Fraction(1))
            assert start.distance_to(embedding.node_point(key[0])) < 1e-12
            assert end.distance_to(embedding.node_point(key[1])) < 1e-12

    def test_interior_points_are_lifted(self, ring6):
        embedding = GraphEmbedding(ring6)
        key = next(iter(sorted(ring6.edges())))
        midpoint = embedding.edge_point(key, Fraction(1, 2))
        assert midpoint.z > 0

    def test_distinct_edges_have_distinct_interiors(self, small_er):
        embedding = GraphEmbedding(small_er)
        midpoints = [
            embedding.edge_point(key, Fraction(1, 2)) for key in sorted(small_er.edges())
        ]
        seen = {(round(p.x, 9), round(p.y, 9), round(p.z, 9)) for p in midpoints}
        assert len(seen) == small_er.num_edges

    def test_invalid_queries(self, ring6):
        embedding = GraphEmbedding(ring6)
        with pytest.raises(GraphError):
            embedding.node_point(42)
        with pytest.raises(GraphError):
            embedding.edge_point((0, 3), Fraction(1, 2))  # not an edge of the ring
        with pytest.raises(GraphError):
            embedding.edge_point((0, 1), Fraction(3, 2))

    def test_graph_property(self, ring6):
        embedding = GraphEmbedding(ring6)
        assert embedding.graph is ring6

    def test_distance_is_symmetric(self, ring6):
        embedding = GraphEmbedding(ring6)
        a = embedding.node_point(0)
        b = embedding.node_point(3)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))
