"""Tests of the experiment drivers (E1–E6, F1–F4) with quick parameters."""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.exceptions import ReproError
from repro.exploration.cost_model import PaperCostModel


class TestSchedulerRegistry:
    @pytest.mark.parametrize("name", experiments.SCHEDULER_NAMES)
    def test_every_named_scheduler_builds(self, name):
        assert experiments.make_scheduler(name) is not None

    def test_unknown_scheduler(self):
        with pytest.raises(ReproError):
            experiments.make_scheduler("chaotic")


class TestFigureStructures:
    def test_covers_all_four_figures(self, sim_model):
        records = experiments.figure_structures(ks=(1, 2), model=sim_model)
        figures = {record.figure for record in records}
        assert figures == {"Figure 1", "Figure 2", "Figure 3", "Figure 4"}
        assert all(record.length > 0 for record in records)

    def test_table_mentions_compositions(self, sim_model):
        records = experiments.figure_structures(ks=(1,), model=sim_model)
        table = experiments.figure_structures_table(records)
        assert "trunk nodes" in table
        assert "Figure 3" in table


class TestRendezvousVsSize:
    def test_quick_run(self, sim_model):
        records = experiments.rendezvous_vs_size(
            sizes=(4, 6),
            family_names=("ring",),
            scheduler_names=("round_robin",),
            algorithms=("rv_asynch_poly", "baseline"),
            model=sim_model,
            max_traversals=300_000,
        )
        assert len(records) == 4
        assert all(record.met for record in records)
        table = experiments.rendezvous_vs_size_table(records)
        assert "rv_asynch_poly" in table and "baseline" in table

    def test_unknown_algorithm_rejected(self, sim_model):
        with pytest.raises(ReproError):
            experiments.rendezvous_vs_size(
                sizes=(4,),
                family_names=("ring",),
                scheduler_names=("round_robin",),
                algorithms=("quantum",),
                model=sim_model,
            )


class TestRendezvousVsLabel:
    def test_quick_run(self, sim_model):
        records = experiments.rendezvous_vs_label(
            small_labels=(1, 2), n=5, model=sim_model, max_traversals=300_000
        )
        assert len(records) == 4
        rv = [r for r in records if r.algorithm == "rv_asynch_poly"]
        baseline = [r for r in records if r.algorithm == "baseline"]
        assert all(record.met for record in records)
        # The guarantees behave as the paper says: the baseline's bound grows
        # with the label value, the RV bound only with the label length.
        assert baseline[1].guaranteed_bound > baseline[0].guaranteed_bound
        assert rv[0].guaranteed_bound <= rv[1].guaranteed_bound
        table = experiments.rendezvous_vs_label_table(records)
        assert "guaranteed_bound" in table


class TestBoundScaling:
    def test_quick_run_and_classification(self):
        records = experiments.bound_scaling(
            sizes=(2, 4, 8), labels=(1, 2, 4, 8, 16), model=PaperCostModel()
        )
        assert len(records) == 15
        table = experiments.bound_scaling_table(records)
        assert "polynomial" in table and "exponential" in table


class TestESSTScaling:
    def test_quick_run(self, sim_model):
        records = experiments.esst_scaling(
            sizes=(4,), family_names=("ring", "path"), model=sim_model
        )
        assert len(records) == 2
        assert all(record.all_edges_traversed for record in records)
        assert all(record.final_phase <= record.phase_bound for record in records)
        assert "ESST" in experiments.esst_scaling_table(records)


class TestAdversaryAblation:
    def test_quick_run(self, sim_model):
        records = experiments.adversary_ablation(
            family="ring", n=6, patiences=(4, 16), model=sim_model, max_traversals=300_000
        )
        schedulers = [record.scheduler for record in records]
        assert schedulers.count("avoider") == 2
        assert all(record.met for record in records)
        assert "avoider" in experiments.adversary_ablation_table(records)


@pytest.mark.sgl
class TestTeamScaling:
    def test_quick_run(self, sim_model):
        records = experiments.team_scaling(
            sizes=(4,), team_sizes=(2,), family="ring", model=sim_model,
            max_traversals=4_000_000,
        )
        assert len(records) == 1
        assert records[0].correct
        assert "team_size" in experiments.team_scaling_table(records)
