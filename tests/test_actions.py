"""Tests of actions, observations and meeting records."""

from __future__ import annotations

from repro.sim.actions import AgentSnapshot, MeetingEvent, Move, Observation, Stop


class TestActions:
    def test_move_equality_and_repr(self):
        assert Move(2) == Move(2)
        assert Move(2) != Move(3)
        assert Move(2) != Stop()
        assert "2" in repr(Move(2))
        assert hash(Move(2)) == hash(Move(2))

    def test_stop_equality(self):
        assert Stop() == Stop()
        assert hash(Stop()) == hash(Stop())
        assert repr(Stop()) == "Stop()"


class TestObservation:
    def test_fields_and_default(self):
        observation = Observation(degree=3, entry_port=None)
        assert observation.degree == 3
        assert observation.entry_port is None
        assert observation.traversals == 0

    def test_is_immutable_tuple(self):
        observation = Observation(degree=2, entry_port=1, traversals=7)
        assert tuple(observation) == (2, 1, 7)


def _snapshot(name: str, label: int) -> AgentSnapshot:
    return AgentSnapshot(name=name, label=label, status="active", public={"label": label})


class TestMeetingEvent:
    def test_names_and_involves(self):
        event = MeetingEvent(
            participants=(_snapshot("a", 3), _snapshot("b", 9)),
            node=4,
            edge=None,
            decision_index=10,
            total_traversals=25,
        )
        assert event.names() == ("a", "b")
        assert event.involves("a") and event.involves("b")
        assert not event.involves("c")

    def test_edge_meeting_has_no_node(self):
        event = MeetingEvent(
            participants=(_snapshot("a", 3),),
            node=None,
            edge=(0, 1),
            decision_index=1,
            total_traversals=2,
        )
        assert event.node is None and event.edge == (0, 1)
