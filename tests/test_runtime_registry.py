"""Tests of the runtime registries (decorator API, duplicates, lookups)."""

from __future__ import annotations

import pytest

from repro.exceptions import RegistryError, ReproError
from repro.runtime import COST_MODELS, GRAPH_FAMILIES, PROBLEMS, SCHEDULERS, Registry
from repro.runtime import runner as _runner  # noqa: F401  (populates the registries)


class TestRegistry:
    def test_register_decorator_and_create(self):
        registry = Registry("gadget")

        @registry.register("double")
        def _double(value):
            return 2 * value

        assert "double" in registry
        assert registry.create("double", 21) == 42
        assert registry.names() == ("double",)

    def test_register_direct_callable(self):
        registry = Registry("gadget")
        registry.register("id", lambda value: value)
        assert registry.create("id", 7) == 7

    def test_duplicate_names_rejected(self):
        registry = Registry("gadget")
        registry.register("x", lambda: 1)
        with pytest.raises(RegistryError):
            registry.register("x", lambda: 2)

    def test_unknown_names_rejected(self):
        registry = Registry("gadget")
        with pytest.raises(RegistryError) as excinfo:
            registry.resolve("nope")
        assert "gadget" in str(excinfo.value)
        with pytest.raises(RegistryError):
            registry.create("nope")

    def test_registry_errors_are_repro_errors(self):
        assert issubclass(RegistryError, ReproError)

    def test_invalid_name_rejected(self):
        registry = Registry("gadget")
        with pytest.raises(RegistryError):
            registry.register("", lambda: 1)

    def test_mapping_protocol(self):
        registry = Registry("gadget")
        registry.register("b", lambda: 2)
        registry.register("a", lambda: 1)
        assert sorted(registry) == ["a", "b"]
        assert len(registry) == 2
        assert registry["a"]() == 1
        with pytest.raises(KeyError):
            registry["missing"]


class TestGlobalRegistries:
    def test_graph_families_registered(self):
        for name in ("ring", "path", "erdos_renyi", "hypercube"):
            assert name in GRAPH_FAMILIES
        graph = GRAPH_FAMILIES.create("ring", 6, 0)
        assert graph.size == 6

    def test_schedulers_registered(self):
        assert SCHEDULERS.names() == (
            "round_robin",
            "random",
            "lazy",
            "delay_until_stop",
            "avoider",
        )
        assert SCHEDULERS.create("avoider", seed=0, patience=4) is not None

    def test_scheduler_factories_ignore_foreign_params(self):
        # One parameter bag serves every adversary; unused keys are ignored.
        assert SCHEDULERS.create("round_robin", seed=3, patience=9, starved="x") is not None

    def test_problems_registered(self):
        assert sorted(PROBLEMS) == [
            "baseline",
            "bounds",
            "esst",
            "figures",
            "rendezvous",
            "teams",
            "tick_gathering",
            "tick_gossip",
            "tick_leader",
        ]

    def test_cost_models_registered(self):
        assert {"simulation", "paper", "default"} <= set(COST_MODELS)

    def test_family_builders_alias_is_the_registry(self):
        from repro.graphs.families import FAMILY_BUILDERS

        assert FAMILY_BUILDERS is GRAPH_FAMILIES

    def test_scheduler_aliases_are_gone_from_the_experiment_drivers(self):
        # Schedulers resolve strictly through the runtime registry; the old
        # SCHEDULER_NAMES / make_scheduler duplication no longer exists.
        from repro.analysis import experiments

        assert not hasattr(experiments, "SCHEDULER_NAMES")
        assert not hasattr(experiments, "make_scheduler")

    def test_every_registered_scheduler_builds(self):
        for name in SCHEDULERS.names():
            assert SCHEDULERS.create(name, seed=0, patience=64, starved="agent-2") is not None
