"""Tests of Algorithm RV-asynch-poly (the main result)."""

from __future__ import annotations

import pytest

from repro.exceptions import LabelError
from repro.core.labels import modified_label
from repro.core.rendezvous import RendezvousController, run_rendezvous, rv_route
from repro.exploration.walker import Tape
from repro.graphs import families
from repro.sim import (
    GreedyAvoidingScheduler,
    LazyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.sim.results import StopReason

from .helpers import drive_walk


class TestRvRoute:
    def test_route_never_stops_on_its_own(self, tiny_model, ring6):
        """RV-asynch-poly runs "until rendezvous": the route is infinite."""
        label = 1

        def factory(obs):
            return rv_route(label, tiny_model, obs, Tape())

        walk = drive_walk(ring6, 0, factory, max_moves=500)
        assert walk.length == 500
        assert walk.return_value is None and not walk.stopped_explicitly

    def test_route_starts_with_the_segment_of_the_first_modified_bit(self, tiny_model, ring6):
        """M(1) = (1, 1, 0, 1): the first bit is 1, so the route opens with
        B(2, v), i.e. repetitions of Y(2, v) anchored at the starting node."""
        label = 1
        bits = modified_label(label)
        assert bits[0] == 1
        y_length = tiny_model.len_Y(2)

        from repro.core.trajectories import traj_Y

        def y_factory(obs):
            def program(obs):
                obs = yield from traj_Y(2, tiny_model, Tape(), obs)
                return obs

            return program(obs)

        reference = drive_walk(ring6, 0, y_factory)

        def route_factory(obs):
            return rv_route(label, tiny_model, obs, Tape())

        walk = drive_walk(ring6, 0, route_factory, max_moves=2 * y_length)
        # The route's first 2 copies of Y(2, v) match the stand-alone Y(2, v).
        expected_nodes = [0] + reference.nodes[1:] + reference.nodes[1:]
        assert walk.nodes == expected_nodes
        # Each copy is anchored at the starting node.
        assert walk.nodes[y_length] == 0 and walk.nodes[2 * y_length] == 0

    def test_route_with_zero_bit_starts_with_a_trajectory(self, tiny_model, ring4):
        """M(2) = (1, 1, 0, 0, 0, 1): still bit 1 first, but check a label whose
        second processed bit is 0 — in iteration k=2 the second segment is
        A(8, v)^2; here we only check that the route is well-formed early on
        (anchored prefixes of closed trajectories)."""
        label = 2
        y_length = tiny_model.len_Y(2)

        def factory(obs):
            return rv_route(label, tiny_model, obs, Tape())

        walk = drive_walk(ring4, 0, factory, max_moves=y_length)
        assert walk.nodes[y_length] == 0

    def test_invalid_label_rejected(self, tiny_model, ring6):
        with pytest.raises(LabelError):
            drive_walk(
                ring6, 0, lambda obs: rv_route(0, tiny_model, obs), max_moves=1
            )


class TestRendezvousRuns:
    @pytest.mark.parametrize(
        "graph_builder, starts",
        [
            (lambda: families.ring(6), (0, 3)),
            (lambda: families.path(6), (0, 5)),
            (lambda: families.complete_graph(5), (0, 3)),
            (lambda: families.binary_tree(7), (2, 6)),
            (lambda: families.random_connected(8, 0.3, rng_seed=4), (0, 4)),
            (lambda: families.lollipop(4, 3), (0, 6)),
        ],
    )
    def test_meeting_happens_on_every_family(self, graph_builder, starts, sim_model):
        graph = graph_builder()
        result = run_rendezvous(
            graph,
            [(6, starts[0]), (11, starts[1])],
            model=sim_model,
            max_traversals=500_000,
        )
        assert result.met
        assert result.reason == StopReason.MEETING
        assert result.cost() <= 500_000

    @pytest.mark.parametrize(
        "scheduler_factory",
        [
            RoundRobinScheduler,
            lambda: RandomScheduler(seed=3),
            lambda: LazyScheduler("agent-1", release_after=50),
            lambda: LazyScheduler("agent-2", release_after=None),
            lambda: GreedyAvoidingScheduler(patience=32),
        ],
    )
    def test_meeting_under_every_adversary(self, scheduler_factory, sim_model, ring6):
        result = run_rendezvous(
            ring6,
            [(6, 0), (11, 3)],
            scheduler=scheduler_factory(),
            model=sim_model,
            max_traversals=500_000,
        )
        assert result.met

    @pytest.mark.parametrize("labels", [(1, 2), (2, 3), (7, 8), (5, 40), (1023, 1024)])
    def test_meeting_for_various_label_pairs(self, labels, sim_model, ring4):
        result = run_rendezvous(
            ring4,
            [(labels[0], 0), (labels[1], 2)],
            model=sim_model,
            max_traversals=500_000,
        )
        assert result.met

    def test_cost_is_within_the_theorem_bound(self, sim_model, ring6):
        """Measured cost never exceeds Π(n, min(|L1|, |L2|)) (Theorem 3.1)."""
        result = run_rendezvous(ring6, [(6, 0), (11, 3)], model=sim_model)
        bound = sim_model.pi_bound(ring6.size, min(6 .bit_length(), 11 .bit_length()))
        assert result.cost() <= bound

    def test_meeting_point_is_node_or_edge(self, sim_model, ring6):
        result = run_rendezvous(ring6, [(6, 0), (11, 3)], model=sim_model)
        meeting = result.meeting
        assert (meeting.node is not None) != (meeting.edge is not None)

    def test_identical_labels_rejected(self, sim_model, ring6):
        with pytest.raises(LabelError):
            run_rendezvous(ring6, [(6, 0), (6, 3)], model=sim_model)

    def test_wrong_number_of_agents_rejected(self, sim_model, ring6):
        with pytest.raises(LabelError):
            run_rendezvous(ring6, [(6, 0)], model=sim_model)

    def test_agents_are_oblivious_to_node_identities(self, sim_model, ring6):
        """Relabeling nodes does not change the cost (ports are what matter)."""
        mapping = {v: (v * 7 + 3) % 100 for v in ring6.nodes()}
        relabeled = ring6.relabeled(mapping)
        original = run_rendezvous(ring6, [(6, 0), (11, 3)], model=sim_model)
        shifted = run_rendezvous(
            relabeled, [(6, mapping[0]), (11, mapping[3])], model=sim_model
        )
        assert original.cost() == shifted.cost()


class TestRendezvousController:
    def test_controller_exposes_label_and_model(self, sim_model):
        controller = RendezvousController("a", 9, sim_model)
        assert controller.label == 9
        assert controller.model is sim_model
        assert controller.public["algorithm"] == "RV-asynch-poly"

    def test_controller_rejects_invalid_label(self, sim_model):
        with pytest.raises(LabelError):
            RendezvousController("a", -1, sim_model)
