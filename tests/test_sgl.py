"""Tests of Algorithm SGL (Strong Global Learning) — Theorem 4.1."""

from __future__ import annotations

import pytest

from repro.exceptions import LabelError, SimulationError
from repro.graphs import families
from repro.sim import RandomScheduler, RoundRobinScheduler
from repro.teams import (
    EXPLORER,
    GHOST,
    SGLController,
    TeamMember,
    TRAVELLER,
    run_sgl,
)

# SGL runs drive the full engine and are the slowest tests of the suite; they
# use the smallest graphs that still exercise every transition.
pytestmark = pytest.mark.sgl


class TestSGLControllerUnit:
    def test_initial_public_state(self, sim_model):
        controller = SGLController("sgl-5", 5, model=sim_model, value="v5")
        assert controller.state == TRAVELLER
        assert controller.public["state"] == TRAVELLER
        assert controller.public["bag"] == ((5, "v5"),)
        assert controller.public["bag_complete"] is False
        assert controller.output is None
        assert controller.token_label is None

    def test_rejects_invalid_label(self, sim_model):
        with pytest.raises(LabelError):
            SGLController("x", 0, model=sim_model)


class TestTwoAgents:
    def test_pair_learns_both_labels(self, sim_model, ring4):
        outcome = run_sgl(
            ring4,
            [TeamMember(4, 0), TeamMember(9, 2)],
            model=sim_model,
            max_traversals=2_000_000,
        )
        assert outcome.correct
        assert outcome.label_sets == {4: (4, 9), 9: (4, 9)}
        assert outcome.cost > 0
        assert outcome.cost == outcome.result.cost()

    def test_pair_on_a_path(self, sim_model):
        graph = families.path(4)
        outcome = run_sgl(
            graph,
            [TeamMember(3, 0), TeamMember(12, 3)],
            model=sim_model,
            max_traversals=2_000_000,
        )
        assert outcome.correct

    def test_values_travel_with_labels(self, sim_model, ring4):
        outcome = run_sgl(
            ring4,
            [TeamMember(4, 0, value="alpha"), TeamMember(9, 2, value="beta")],
            model=sim_model,
            max_traversals=2_000_000,
        )
        assert outcome.correct
        assert outcome.value_maps[4] == {4: "alpha", 9: "beta"}
        assert outcome.value_maps[9] == {4: "alpha", 9: "beta"}

    def test_smaller_label_becomes_the_explorer(self, sim_model, ring4):
        # Run manually so the controllers remain inspectable.
        from repro.sim.engine import AgentSpec, AsyncEngine

        small = SGLController("sgl-4", 4, model=sim_model)
        big = SGLController("sgl-9", 9, model=sim_model)
        engine = AsyncEngine(
            ring4,
            [AgentSpec(small, 0), AgentSpec(big, 2)],
            RoundRobinScheduler(),
            stop_when_all_output=True,
            max_traversals=2_000_000,
        )
        engine.run()
        assert big.state == GHOST
        assert small.token_label == 9
        assert small.output is not None and big.output is not None


class TestLargerTeams:
    def test_three_agents_on_a_ring(self, sim_model):
        graph = families.ring(5)
        outcome = run_sgl(
            graph,
            [TeamMember(4, 0), TeamMember(9, 2), TeamMember(6, 3)],
            model=sim_model,
            max_traversals=4_000_000,
        )
        assert outcome.correct
        assert outcome.expected_labels == (4, 6, 9)

    def test_three_agents_random_scheduler(self, sim_model):
        graph = families.random_connected(6, 0.4, rng_seed=3)
        outcome = run_sgl(
            graph,
            [TeamMember(12, 0), TeamMember(5, 2), TeamMember(30, 4)],
            scheduler=RandomScheduler(seed=11),
            model=sim_model,
            max_traversals=4_000_000,
        )
        assert outcome.correct

    def test_dormant_agent_is_woken_and_learns_everything(self, sim_model):
        graph = families.ring(5)
        outcome = run_sgl(
            graph,
            [TeamMember(3, 0), TeamMember(8, 2), TeamMember(15, 4, dormant=True)],
            model=sim_model,
            max_traversals=4_000_000,
        )
        assert outcome.correct
        assert 15 in outcome.label_sets
        assert outcome.label_sets[15] == (3, 8, 15)


class TestValidation:
    def test_single_agent_rejected(self, sim_model, ring4):
        with pytest.raises(LabelError):
            run_sgl(ring4, [TeamMember(4, 0)], model=sim_model)

    def test_duplicate_labels_rejected(self, sim_model, ring4):
        with pytest.raises(LabelError):
            run_sgl(ring4, [TeamMember(4, 0), TeamMember(4, 2)], model=sim_model)

    def test_duplicate_start_nodes_rejected(self, sim_model, ring4):
        with pytest.raises(SimulationError):
            run_sgl(ring4, [TeamMember(4, 0), TeamMember(9, 0)], model=sim_model)
