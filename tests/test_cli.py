"""Tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rendezvous_defaults(self):
        args = build_parser().parse_args(["rendezvous"])
        assert args.family == "ring"
        assert args.size == 6
        assert tuple(args.labels) == (6, 11)
        assert args.scheduler == "round_robin"
        assert not args.baseline

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "e3"])
        assert args.name == "e3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "e99"])


class TestCommands:
    def test_rendezvous_command_meets(self, capsys):
        code = main(["rendezvous", "--family", "ring", "--size", "6", "--labels", "5", "12"])
        captured = capsys.readouterr()
        assert code == 0
        assert "RV-asynch-poly" in captured.out
        assert "meeting" in captured.out

    def test_rendezvous_baseline_flag(self, capsys):
        code = main(
            ["rendezvous", "--family", "ring", "--size", "5", "--labels", "1", "2", "--baseline"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "baseline" in captured.out

    def test_esst_command(self, capsys):
        code = main(["esst", "--family", "ring", "--size", "4"])
        captured = capsys.readouterr()
        assert code == 0
        assert "all edges traversed: True" in captured.out

    def test_experiment_f1(self, capsys):
        code = main(["experiment", "f1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Figure 1" in captured.out

    def test_experiment_e3(self, capsys):
        code = main(["experiment", "e3"])
        captured = capsys.readouterr()
        assert code == 0
        assert "baseline_bound" in captured.out

    @pytest.mark.sgl
    def test_teams_command(self, capsys):
        code = main(
            ["teams", "--family", "ring", "--size", "4", "--team-size", "2",
             "--max-traversals", "4000000"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "outputs correct: True" in captured.out
        assert "leader" in captured.out
