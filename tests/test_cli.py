"""Tests of the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rendezvous_defaults(self):
        args = build_parser().parse_args(["rendezvous"])
        assert args.family == "ring"
        assert args.size == 6
        assert tuple(args.labels) == (6, 11)
        assert args.scheduler == "round_robin"
        assert not args.baseline

    def test_experiment_flags(self):
        args = build_parser().parse_args(["experiment", "e3", "F1", "--format", "csv"])
        assert args.names == ["e3", "F1"]
        assert args.format == "csv"
        assert args.resume is True
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "e3", "--format", "xml"])

    def test_experiment_unknown_name_fails_at_runtime_with_the_registry_error(self, capsys):
        assert main(["experiment", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCommands:
    def test_rendezvous_command_meets(self, capsys):
        code = main(["rendezvous", "--family", "ring", "--size", "6", "--labels", "5", "12"])
        captured = capsys.readouterr()
        assert code == 0
        assert "RV-asynch-poly" in captured.out
        assert "meeting" in captured.out

    def test_rendezvous_baseline_flag(self, capsys):
        code = main(
            ["rendezvous", "--family", "ring", "--size", "5", "--labels", "1", "2", "--baseline"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "baseline" in captured.out

    def test_esst_command(self, capsys):
        code = main(["esst", "--family", "ring", "--size", "4"])
        captured = capsys.readouterr()
        assert code == 0
        assert "all edges traversed: True" in captured.out

    def test_experiment_f1(self, capsys):
        code = main(["experiment", "f1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Figure 1" in captured.out

    def test_experiment_e3(self, capsys):
        code = main(["experiment", "e3"])
        captured = capsys.readouterr()
        assert code == 0
        assert "baseline_bound" in captured.out

    def test_experiment_several_names_at_once(self, capsys):
        code = main(["experiment", "f1", "e3"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Figure 1" in captured.out and "baseline_bound" in captured.out

    def test_experiment_list(self, capsys):
        code = main(["experiment", "--list"])
        captured = capsys.readouterr()
        assert code == 0
        for name in ("E1", "E6", "F1", "bounds"):
            assert name in captured.out

    def test_experiment_without_names_errors(self, capsys):
        assert main(["experiment"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_experiment_csv_and_json_formats(self, capsys):
        assert main(["experiment", "e3", "--format", "csv"]) == 0
        csv_out = capsys.readouterr().out
        assert csv_out.splitlines()[0] == "n,label,label_length,rv_bound,baseline_bound"
        assert main(["experiment", "e3", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["columns"][0] == "n"

    def test_experiment_spec_file_with_store_warm_pass_executes_nothing(
        self, tmp_path, capsys
    ):
        from repro.analysis.experiment_spec import experiment_spec

        spec = experiment_spec("E3", sizes=(2, 4), labels=(1, 2))
        spec_file = tmp_path / "exp.json"
        spec_file.write_text(spec.to_json(), encoding="utf-8")
        store = str(tmp_path / "store")
        args = ["experiment", "--spec", str(spec_file), "--store", store, "--format", "json"]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "executed 4" in cold.err
        assert main(args) == 0
        warm = capsys.readouterr()
        assert "cached 4, executed 0" in warm.err
        assert cold.out == warm.out

    @pytest.mark.sgl
    def test_teams_command(self, capsys):
        code = main(
            ["teams", "--family", "ring", "--size", "4", "--team-size", "2",
             "--max-traversals", "4000000"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "outputs correct: True" in captured.out
        assert "leader" in captured.out


class TestObservabilityCli:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(
            json.dumps(
                {"problem": "rendezvous", "family": "ring", "size": 4, "seed": 0}
            ),
            encoding="utf-8",
        )
        return str(path)

    def test_run_profile_prints_the_span_table(self, spec_file, capsys):
        assert main(["run", "--spec", spec_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "% of run" in out and "engine.run" in out
        assert "engine coverage:" in out and "counters:" in out

    def test_run_trace_attaches_the_payload_to_the_json(self, spec_file, capsys):
        assert main(["run", "--spec", spec_file, "--trace", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        trace = record["extra"]["trace"]
        assert trace["schema"] == 1 and "engine.run" in trace["spans"]

    def test_run_without_trace_has_no_trace_key(self, spec_file, capsys):
        assert main(["run", "--spec", spec_file, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert "trace" not in record["extra"]

    def test_metrics_dump_wraps_a_sweep(self, capsys):
        assert main(["metrics", "dump", "sweep", "--sizes", "4", "--quiet"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("\n{") :])
        assert payload["repro_runs_total"] == {"problem=rendezvous": 1}
        assert payload["repro_sweep_cells_total"]["status=executed"] == 1

    def test_metrics_dump_prom_format(self, capsys):
        assert main(["metrics", "dump", "--format", "prom", "rendezvous", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_runs_total counter" in out
        assert 'repro_runs_total{problem="rendezvous"} 1' in out

    def test_metrics_dump_without_a_command_dumps_an_empty_registry(self, capsys):
        assert main(["metrics", "dump"]) == 0
        assert json.loads(capsys.readouterr().out) == {}

    def test_sweep_trace_attaches_traces_to_stored_records(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert (
            main(["sweep", "--sizes", "4", "--quiet", "--trace", "--store", store_dir])
            == 0
        )
        from repro.store import FileStore

        with FileStore(store_dir, create=False) as store:
            records = [store.get(key) for key in store.keys()]
        assert records and all("trace" in r.extra_dict for r in records)

    def test_queue_executor_degrades_trace_to_untraced(self, tmp_path, capsys):
        # --trace with the queue executor must not fail the sweep: it warns
        # and runs untraced (tracing is a per-process concern).
        store_dir = str(tmp_path / "store")
        with pytest.warns(RuntimeWarning, match="cannot trace"):
            code = main(
                [
                    "sweep",
                    "--sizes",
                    "4",
                    "--quiet",
                    "--trace",
                    "--executor",
                    "queue",
                    "--store",
                    store_dir,
                ]
            )
        assert code == 0
        from repro.store import FileStore

        with FileStore(store_dir, create=False) as store:
            records = [store.get(key) for key in store.keys()]
        assert records and all("trace" not in r.extra_dict for r in records)


class TestServeCli:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 8642
        assert args.queue is None and args.unit_size == 4

    def test_serve_end_to_end_over_a_socket(self, tmp_path):
        """repro serve in a thread: banner, /healthz, clean shutdown."""
        import threading
        import urllib.request

        from repro.serve import ResultService, make_server
        from repro.store import FileStore

        with FileStore(tmp_path / "store") as store:
            server = make_server(ResultService(store), port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            host, port = server.server_address[:2]
            try:
                with urllib.request.urlopen(f"http://{host}:{port}/healthz") as response:
                    assert json.load(response) == {"ok": True}
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)
