"""Tests of the declarative scenario/sweep specs (JSON round-trips, grids)."""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import ReproError
from repro.runtime import ScenarioSpec, SweepSpec


class TestScenarioSpec:
    def test_defaults_validate(self):
        spec = ScenarioSpec()
        assert spec.validate() is spec
        assert spec.problem == "rendezvous"
        assert spec.scheduler == "round_robin"

    def test_fields_are_normalised_to_tuples(self):
        spec = ScenarioSpec(labels=[6, 11], starts=[0, 3], scheduler_params={"patience": 4})
        assert spec.labels == (6, 11)
        assert spec.starts == (0, 3)
        assert spec.scheduler_params == (("patience", 4),)
        assert spec.scheduler_kwargs == {"patience": 4}

    def test_json_round_trip_equality(self):
        spec = ScenarioSpec(
            problem="teams",
            family="erdos_renyi",
            size=9,
            seed=7,
            team_size=3,
            scheduler="avoider",
            scheduler_params={"patience": 16},
            max_traversals=123_456,
            name="round-trip",
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_with_labels_and_starts(self):
        spec = ScenarioSpec(labels=(5, 12), starts=(1, 4), token_node=2)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_with_team_and_token_extensions(self):
        spec = ScenarioSpec(
            problem="teams",
            labels=(3, 5, 9),
            starts=(0, 2, 4),
            values=("a", {"k": 1}, [1, 2]),
            dormant=(1, 2),
            problem_params={"variant": "x"},
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        token_spec = ScenarioSpec(problem="esst", token_edge=(3, 1), token_fraction="2/6")
        assert ScenarioSpec.from_json(token_spec.to_json()) == token_spec

    def test_token_edge_and_fraction_are_normalised(self):
        spec = ScenarioSpec(problem="esst", token_edge=(3, 1), token_fraction="2/6")
        assert spec.token_edge == (1, 3)
        assert spec.token_fraction == "1/3"

    def test_token_placement_validation(self):
        with pytest.raises(ReproError):
            ScenarioSpec(token_node=1, token_edge=(0, 1)).validate()
        with pytest.raises(ReproError):
            ScenarioSpec(token_fraction="1/2").validate()
        with pytest.raises(ReproError):
            ScenarioSpec(token_edge=(2, 2)).validate()
        with pytest.raises(ReproError):
            ScenarioSpec(token_edge=(0, 1), token_fraction="3/2").validate()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ReproError):
            ScenarioSpec.from_dict({"problem": "rendezvous", "turbo": True})

    def test_non_object_json_rejected(self):
        with pytest.raises(ReproError):
            ScenarioSpec.from_json("[1, 2, 3]")

    def test_validate_rejects_unknown_names(self):
        with pytest.raises(ReproError):
            ScenarioSpec(problem="chess").validate()
        with pytest.raises(ReproError):
            ScenarioSpec(family="moebius").validate()
        with pytest.raises(ReproError):
            ScenarioSpec(scheduler="chaotic").validate()
        with pytest.raises(ReproError):
            ScenarioSpec(on_cost_limit="explode").validate()

    def test_specs_are_picklable_and_hashable(self):
        spec = ScenarioSpec(scheduler_params={"patience": 8})
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(spec.replace())

    def test_replace_returns_updated_copy(self):
        spec = ScenarioSpec(size=6)
        bigger = spec.replace(size=12)
        assert spec.size == 6 and bigger.size == 12


class TestSweepSpec:
    def test_grid_enumeration_order(self):
        sweep = SweepSpec(
            problems=("rendezvous", "baseline"),
            families=("ring",),
            sizes=(4, 6),
            seeds=(0, 1),
            schedulers=("round_robin",),
        )
        cells = list(sweep.cells())
        assert len(cells) == len(sweep) == 8
        # outermost-first: family, size, seed, ..., problem (innermost).
        assert [(c.size, c.seed, c.problem) for c in cells[:4]] == [
            (4, 0, "rendezvous"),
            (4, 0, "baseline"),
            (4, 1, "rendezvous"),
            (4, 1, "baseline"),
        ]

    def test_every_cell_carries_its_own_seed(self):
        sweep = SweepSpec(seeds=(0, 1, 2))
        assert [cell.seed for cell in sweep.cells()] == [0, 1, 2]

    def test_json_round_trip_equality(self):
        sweep = SweepSpec(
            problems=("rendezvous",),
            families=("ring", "erdos_renyi"),
            sizes=(4, 8, 12),
            seeds=(0, 1, 2),
            schedulers=("round_robin", "avoider"),
            label_sets=((6, 11), (1, 2)),
            scheduler_param_sets=({"patience": 4}, {"patience": 64}),
            team_sizes=(None, 3),
            max_traversals=777,
            name="grid",
        )
        assert SweepSpec.from_json(sweep.to_json()) == sweep

    def test_unknown_fields_rejected(self):
        with pytest.raises(ReproError):
            SweepSpec.from_dict({"sizes": [4], "warp": 9})
