"""Tests of the asynchronous execution engine."""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

import pytest

from repro.exceptions import CostLimitExceeded, ProtocolError, SimulationError
from repro.graphs import families
from repro.sim import (
    AgentSpec,
    AsyncEngine,
    FunctionController,
    RoundRobinScheduler,
    StationaryController,
    StopReason,
)
from repro.sim.actions import Move, Stop
from repro.sim.schedulers import Advance, Scheduler, Wake


def scripted(name: str, ports: Sequence[int], label: Optional[int] = None) -> FunctionController:
    """A controller that follows a fixed list of ports and then stops."""

    def factory(obs):
        def program(obs):
            for port in ports:
                obs = yield Move(port)
            return obs

        return program(obs)

    return FunctionController(name, factory, label=label)


class ScriptedScheduler(Scheduler):
    """Replay a fixed list of decisions (for precise engine tests)."""

    def __init__(self, decisions):
        super().__init__()
        self._decisions = list(decisions)

    def choose(self, view):
        if not self._decisions:
            return None
        return self._decisions.pop(0)


class TestBasicExecution:
    def test_single_agent_walk_and_cost(self, ring6):
        walker = scripted("w", [0, 0, 0])
        engine = AsyncEngine(ring6, [AgentSpec(walker, 0)], RoundRobinScheduler())
        result = engine.run()
        assert result.reason == StopReason.ALL_STOPPED
        assert result.total_traversals == 3
        assert result.traversals_by_agent == {"w": 3}
        assert not result.met

    def test_two_agents_round_robin_costs_add_up(self, ring6):
        a = scripted("a", [0, 0])
        b = scripted("b", [0, 0])
        engine = AsyncEngine(
            ring6, [AgentSpec(a, 0), AgentSpec(b, 3)], RoundRobinScheduler()
        )
        result = engine.run()
        assert result.total_traversals == 4
        assert result.traversals_by_agent == {"a": 2, "b": 2}

    def test_program_can_stop_explicitly(self, ring6):
        def factory(obs):
            def program(obs):
                obs = yield Move(0)
                yield Stop()

            return program(obs)

        controller = FunctionController("s", factory)
        engine = AsyncEngine(ring6, [AgentSpec(controller, 0)], RoundRobinScheduler())
        result = engine.run()
        assert result.total_traversals == 1
        assert result.reason == StopReason.ALL_STOPPED


class TestMeetings:
    def test_meeting_at_node(self, oring6):
        # "a" walks clockwise from node 0 towards node 2 where "b" sits still.
        a = scripted("a", [0, 0, 0, 0], label=1)
        b = StationaryController("b", label=2)
        engine = AsyncEngine(
            oring6,
            [AgentSpec(a, 0), AgentSpec(b, 2)],
            RoundRobinScheduler(),
            rendezvous=("a", "b"),
        )
        result = engine.run()
        assert result.met and result.reason == StopReason.MEETING
        assert result.meeting is not None
        assert result.meeting.node == 2
        assert result.meeting.edge is None
        assert set(result.meeting.names()) == {"a", "b"}
        # Cost: only completed traversals count; the meeting happens while
        # completing the second traversal, so exactly 1 is on the books.
        assert result.total_traversals == 1

    def test_meeting_inside_edge_via_partial_advance(self, ring6):
        # "a" commits to edge 0-1 and is parked at 1/2 by the adversary;
        # "b" then traverses the same edge from node 1 and sweeps over "a".
        a = scripted("a", [0], label=1)   # port 0 at node 0 leads to node 1
        b = scripted("b", [0], label=2)   # port 0 at node 1 leads back to node 0
        engine = AsyncEngine(
            ring6,
            [AgentSpec(a, 0), AgentSpec(b, 1)],
            ScriptedScheduler(
                [Advance("a", Fraction(1, 2)), Advance("b", Fraction(1))]
            ),
            rendezvous=("a", "b"),
        )
        result = engine.run()
        assert result.met
        assert result.meeting.edge == (0, 1)
        assert result.meeting.node is None
        assert result.total_traversals == 0  # nobody completed a traversal yet

    def test_meeting_records_public_snapshots(self, ring6):
        a = scripted("a", [0, 0], label=5)
        b = StationaryController("b", label=9)
        b.public["note"] = "token"
        engine = AsyncEngine(
            ring6,
            [AgentSpec(a, 0), AgentSpec(b, 1)],
            RoundRobinScheduler(),
            rendezvous=("a", "b"),
        )
        result = engine.run()
        publics = {snap.name: snap.public for snap in result.meeting.participants}
        assert publics["a"]["label"] == 5
        assert publics["b"]["note"] == "token"

    def test_initial_colocation_is_a_meeting(self, ring6):
        a = scripted("a", [0], label=1)
        b = scripted("b", [0], label=2)
        engine = AsyncEngine(
            ring6,
            [AgentSpec(a, 4), AgentSpec(b, 4)],
            RoundRobinScheduler(),
            rendezvous=("a", "b"),
        )
        result = engine.run()
        assert result.met and result.total_traversals == 0

    def test_all_meetings_are_recorded(self, oring6):
        # "a" walks clockwise around the whole ring twice and passes the
        # stationary "b" on each lap.
        a = scripted("a", [0] * 12, label=1)
        b = StationaryController("b", label=2)
        engine = AsyncEngine(
            oring6, [AgentSpec(a, 0), AgentSpec(b, 3)], RoundRobinScheduler()
        )
        result = engine.run()
        assert len(result.meetings) == 2
        assert all(set(event.names()) == {"a", "b"} for event in result.meetings)

    def test_on_meeting_hook_is_called_for_all_participants(self, oring6):
        calls = []

        class Recorder(StationaryController):
            def on_meeting(self, event):
                calls.append((self.name, tuple(sorted(event.names()))))

        a = scripted("a", [0, 0], label=1)
        b = Recorder("b", label=2)
        engine = AsyncEngine(
            oring6, [AgentSpec(a, 0), AgentSpec(b, 2)], RoundRobinScheduler()
        )
        engine.run()
        assert ("b", ("a", "b")) in calls


class TestDormantAgents:
    def test_dormant_agent_never_scheduled_until_woken(self, ring6):
        a = scripted("a", [0, 0], label=1)
        b = scripted("b", [0, 0], label=2)
        engine = AsyncEngine(
            ring6,
            [AgentSpec(a, 0), AgentSpec(b, 3, dormant=True)],
            RoundRobinScheduler(),
        )
        result = engine.run()
        assert result.traversals_by_agent["b"] == 0

    def test_dormant_agent_woken_by_visit(self, oring6):
        # "a" walks into node 2 where the dormant "b" sits; "b" wakes and walks.
        a = scripted("a", [0, 0], label=1)
        b = scripted("b", [0, 0, 0], label=2)
        engine = AsyncEngine(
            oring6,
            [AgentSpec(a, 0), AgentSpec(b, 2, dormant=True)],
            RoundRobinScheduler(),
        )
        result = engine.run()
        assert result.traversals_by_agent["b"] == 3
        assert any(set(event.names()) == {"a", "b"} for event in result.meetings)

    def test_dormant_agent_woken_by_scheduler(self, ring6):
        woken = []

        class WakeAware(FunctionController):
            def on_wake(self):
                woken.append(self.name)

        def factory(obs):
            def program(obs):
                obs = yield Move(0)
                return obs

            return program(obs)

        b = WakeAware("b", factory, label=2)
        a = scripted("a", [0, 0], label=1)
        engine = AsyncEngine(
            ring6,
            [AgentSpec(a, 0), AgentSpec(b, 3, dormant=True)],
            RoundRobinScheduler(wake_schedule={"b": 1}),
        )
        result = engine.run()
        assert woken == ["b"]
        assert result.traversals_by_agent["b"] == 1


class TestTermination:
    def test_stop_when_all_output(self, ring6):
        class OutputsAfterTwoMoves(FunctionController):
            def __init__(self, name):
                def factory(obs):
                    def program(obs):
                        obs = yield Move(0)
                        obs = yield Move(0)
                        self.output = "done"
                        obs = yield Move(0)
                        obs = yield Move(0)
                        return obs

                    return program(obs)

                super().__init__(name, factory)

        a = OutputsAfterTwoMoves("a")
        b = OutputsAfterTwoMoves("b")
        engine = AsyncEngine(
            ring6,
            [AgentSpec(a, 0), AgentSpec(b, 3)],
            RoundRobinScheduler(),
            stop_when_all_output=True,
        )
        result = engine.run()
        assert result.reason == StopReason.ALL_OUTPUT
        assert result.outputs == {"a": "done", "b": "done"}
        assert result.output_cost is not None
        assert result.output_cost <= result.total_traversals
        assert result.cost() == result.output_cost

    def test_cost_limit_raises_with_partial_result(self, ring6):
        a = scripted("a", [0] * 50, label=1)
        engine = AsyncEngine(
            ring6, [AgentSpec(a, 0)], RoundRobinScheduler(), max_traversals=10
        )
        with pytest.raises(CostLimitExceeded) as excinfo:
            engine.run()
        partial = excinfo.value.partial_result
        assert partial is not None
        assert partial.reason == StopReason.COST_LIMIT
        assert partial.total_traversals >= 10

    def test_cost_limit_can_return_instead(self, ring6):
        a = scripted("a", [0] * 50, label=1)
        engine = AsyncEngine(
            ring6,
            [AgentSpec(a, 0)],
            RoundRobinScheduler(),
            max_traversals=10,
            on_cost_limit="return",
        )
        result = engine.run()
        assert result.reason == StopReason.COST_LIMIT
        assert not result.succeeded

    def test_scheduler_exhausted(self, ring6):
        a = scripted("a", [0] * 5, label=1)
        engine = AsyncEngine(ring6, [AgentSpec(a, 0)], ScriptedScheduler([]))
        result = engine.run()
        assert result.reason == StopReason.SCHEDULER_EXHAUSTED

    def test_result_summary_mentions_reason(self, ring6):
        a = scripted("a", [0], label=1)
        engine = AsyncEngine(ring6, [AgentSpec(a, 0)], RoundRobinScheduler())
        result = engine.run()
        assert "reason=" in result.summary()


class TestValidationAndErrors:
    def test_duplicate_agent_names_rejected(self, ring6):
        a1 = scripted("a", [0])
        a2 = scripted("a", [0])
        with pytest.raises(SimulationError):
            AsyncEngine(ring6, [AgentSpec(a1, 0), AgentSpec(a2, 1)], RoundRobinScheduler())

    def test_unknown_start_node_rejected(self, ring6):
        with pytest.raises(SimulationError):
            AsyncEngine(ring6, [AgentSpec(scripted("a", [0]), 77)], RoundRobinScheduler())

    def test_unknown_rendezvous_agent_rejected(self, ring6):
        with pytest.raises(SimulationError):
            AsyncEngine(
                ring6,
                [AgentSpec(scripted("a", [0]), 0)],
                RoundRobinScheduler(),
                rendezvous=("a", "ghost"),
            )

    def test_no_agents_rejected(self, ring6):
        with pytest.raises(SimulationError):
            AsyncEngine(ring6, [], RoundRobinScheduler())

    def test_invalid_port_raises_protocol_error(self, ring6):
        bad = scripted("bad", [7])
        engine = AsyncEngine(ring6, [AgentSpec(bad, 0)], RoundRobinScheduler())
        with pytest.raises(ProtocolError):
            engine.run()

    def test_invalid_action_raises_protocol_error(self, ring6):
        def factory(obs):
            def program(obs):
                yield "sideways"

            return program(obs)

        bad = FunctionController("bad", factory)
        engine = AsyncEngine(ring6, [AgentSpec(bad, 0)], RoundRobinScheduler())
        with pytest.raises(ProtocolError):
            engine.run()

    def test_invalid_cost_limit_mode_rejected(self, ring6):
        with pytest.raises(SimulationError):
            AsyncEngine(
                ring6,
                [AgentSpec(scripted("a", [0]), 0)],
                RoundRobinScheduler(),
                on_cost_limit="explode",
            )


class TestEngineView:
    def test_view_reports_positions_and_progress(self, ring6):
        a = scripted("a", [0, 0], label=1)
        b = StationaryController("b", label=2)
        engine = AsyncEngine(
            ring6, [AgentSpec(a, 0), AgentSpec(b, 1)], RoundRobinScheduler()
        )
        engine._bootstrap()
        view = engine.view
        assert set(view.agent_names()) == {"a", "b"}
        assert view.eligible_agents() == ["a"]
        assert view.agent_status("b") == "stopped"
        assert view.agent_position("a").node == 0
        assert view.agent_progress("a") == 0
        assert view.total_traversals() == 0
        assert view.agent_traversals("a") == 0
        assert not view.is_dormant("a")

    def test_max_safe_advance_sees_obstacles(self, ring6):
        # "a" commits to the edge 0-1 while "b" sits at node 1: completing the
        # traversal would produce a meeting, so the safe advance is < 1.
        a = scripted("a", [0], label=1)
        b = StationaryController("b", label=2)
        engine = AsyncEngine(
            ring6, [AgentSpec(a, 0), AgentSpec(b, 1)], RoundRobinScheduler()
        )
        engine._bootstrap()
        safe = engine.view.max_safe_advance("a")
        assert safe is not None and Fraction(0) < safe < Fraction(1)
        # Without an obstacle the whole traversal is safe.
        engine2 = AsyncEngine(
            ring6, [AgentSpec(scripted("c", [0], label=1), 0),
                    AgentSpec(StationaryController("d", label=2), 3)],
            RoundRobinScheduler(),
        )
        engine2._bootstrap()
        assert engine2.view.max_safe_advance("c") == Fraction(1)
        assert engine2.view.max_safe_advance("d") is None
