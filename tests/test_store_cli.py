"""Tests of the CLI's result-store surface (sweep --store/--resume, store ls/show/gc)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

SWEEP_ARGS = ["sweep", "--sizes", "4", "6", "--seeds", "2", "--quiet"]


def _sweep(tmp_path, *extra):
    return main(SWEEP_ARGS + ["--store", str(tmp_path / "store")] + list(extra))


class TestParser:
    def test_sweep_store_flags(self):
        args = build_parser().parse_args(["sweep", "--store", "d", "--no-resume"])
        assert args.store == "d" and args.resume is False
        args = build_parser().parse_args(["sweep", "--store", "d"])
        assert args.resume is True

    def test_store_subcommands(self):
        assert build_parser().parse_args(["store", "ls"]).store_command == "ls"
        args = build_parser().parse_args(["store", "show", "abc", "--store", "d"])
        assert args.store_command == "show" and args.key == "abc" and args.store == "d"
        assert build_parser().parse_args(["store", "gc"]).store_command == "gc"


class TestSweepWithStore:
    def test_second_run_executes_zero_cells_and_tables_match(self, tmp_path, capsys):
        assert _sweep(tmp_path) == 0
        first = capsys.readouterr().out
        assert "cached 0/4, executed 4" in first

        assert _sweep(tmp_path) == 0
        second = capsys.readouterr().out
        assert "cached 4/4, executed 0" in second

        def table_of(output):
            lines = output.splitlines()
            start = next(i for i, line in enumerate(lines) if line.startswith("sweep:"))
            return "\n".join(lines[start:-1])

        assert table_of(first) == table_of(second)

    def test_json_outputs_are_byte_identical(self, tmp_path, capsys):
        _sweep(tmp_path, "--json", str(tmp_path / "first.json"))
        _sweep(tmp_path, "--json", str(tmp_path / "second.json"))
        capsys.readouterr()
        assert (tmp_path / "first.json").read_bytes() == (tmp_path / "second.json").read_bytes()

    def test_no_resume_reexecutes(self, tmp_path, capsys):
        _sweep(tmp_path)
        capsys.readouterr()
        _sweep(tmp_path, "--no-resume")
        assert "cached 0/4, executed 4" in capsys.readouterr().out

    def test_progress_marks_hits(self, tmp_path, capsys):
        main(SWEEP_ARGS[:-1] + ["--store", str(tmp_path / "store")])  # without --quiet
        capsys.readouterr()
        main(SWEEP_ARGS[:-1] + ["--store", str(tmp_path / "store")])
        out = capsys.readouterr().out
        assert out.count("hit ") == 4


class TestStoreMaintenance:
    @pytest.fixture()
    def store_dir(self, tmp_path, capsys):
        _sweep(tmp_path)
        capsys.readouterr()
        return str(tmp_path / "store")

    def test_ls_lists_records(self, store_dir, capsys):
        assert main(["store", "ls", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "rendezvous" in out and "4 records" in out

    def test_ls_size_range_filters(self, store_dir, capsys):
        assert main(["store", "ls", "--store", store_dir, "--n-max", "4"]) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines() if "rendezvous" in line]
        assert len(rows) == 2  # two seeds at n=4; the n=6 records are filtered

        assert main(["store", "ls", "--store", store_dir, "--n-min", "5", "--n-max", "6"]) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines() if "rendezvous" in line]
        assert len(rows) == 2

        assert main(["store", "ls", "--store", store_dir, "--n-min", "7"]) == 0
        out = capsys.readouterr().out
        assert "rendezvous" not in out

    def test_ls_problem_family_scheduler_filters(self, store_dir, capsys):
        assert main(["store", "ls", "--store", store_dir, "--problem", "esst"]) == 0
        assert "rendezvous" not in capsys.readouterr().out
        assert main(["store", "ls", "--store", store_dir, "--family", "ring",
                     "--scheduler", "round_robin"]) == 0
        assert "rendezvous" in capsys.readouterr().out

    def test_ls_filter_flags_parse(self):
        args = build_parser().parse_args(
            ["store", "ls", "--problem", "esst", "--n-min", "4", "--n-max", "8"]
        )
        assert args.problem == "esst" and args.n_min == 4 and args.n_max == 8

    def test_ls_filters(self, store_dir, capsys):
        assert main(["store", "ls", "--store", store_dir, "--problem", "esst"]) == 0
        out = capsys.readouterr().out
        table = out.split("\n\n")[0]
        assert "rendezvous" not in table  # every stored record is filtered out
        assert "4 records" in out  # the stats line still counts the whole store

    def test_show_prints_record_json(self, store_dir, capsys):
        main(["store", "ls", "--store", store_dir])
        prefix = capsys.readouterr().out.splitlines()[4].split()[0]
        assert main(["store", "show", prefix, "--store", store_dir]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["spec"]["problem"] == "rendezvous"

    def test_show_rejects_unknown_and_ambiguous(self, store_dir, capsys):
        assert main(["store", "show", "zzzz", "--store", store_dir]) == 1
        assert "no stored record" in capsys.readouterr().err
        assert main(["store", "show", "", "--store", store_dir]) == 1
        assert "ambiguous" in capsys.readouterr().err

    def test_gc_reports(self, store_dir, capsys):
        assert main(["store", "gc", "--store", store_dir]) == 0
        assert "kept 4 records" in capsys.readouterr().out

    def test_missing_store_errors(self, tmp_path, capsys):
        assert main(["store", "ls", "--store", str(tmp_path / "nowhere")]) == 2
        assert "error" in capsys.readouterr().err


class TestExperimentWithStore:
    def test_experiment_e4_uses_the_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["experiment", "e4", "--store", store]) == 0
        first = capsys.readouterr().out
        assert main(["experiment", "e4", "--store", store]) == 0
        assert capsys.readouterr().out == first
        assert main(["store", "ls", "--store", store]) == 0
        assert "esst" in capsys.readouterr().out
