"""Tests of the multi-writer FileStore, store merging and LRU eviction."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exceptions import StoreConflictError, StoreError
from repro.runtime import ScenarioSpec, SweepSpec
from repro.runtime.executors import run_sweep
from repro.runtime.records import RunRecord
from repro.runtime.runner import run
from repro.store import FileStore, MemoryStore, merge_stores


def _record(size: int, seed: int = 0) -> RunRecord:
    return run(ScenarioSpec(size=size, seed=seed))


def _tampered_copy(record: RunRecord) -> RunRecord:
    """Same spec (same key), different payload — a divergent computation."""
    return RunRecord(
        spec=record.spec,
        ok=record.ok,
        cost=record.cost + 1,
        reason=record.reason,
        decisions=record.decisions,
        graph_name=record.graph_name,
        graph_size=record.graph_size,
        graph_edges=record.graph_edges,
        extra=record.extra,
    )


class TestWriterNamespaces:
    def test_writers_append_to_their_own_shards(self, tmp_path):
        record = _record(4)
        with FileStore(tmp_path / "s", writer="w1") as store:
            store.put(record)
        shard = tmp_path / "s" / "shards" / f"{record.spec.key()[:2]}--w1.jsonl"
        assert shard.exists()
        # Any reader (no writer namespace) sees the record.
        with FileStore(tmp_path / "s") as reader:
            assert reader.get(record.spec) == record

    def test_invalid_writer_names_rejected(self, tmp_path):
        for bad in ("a--b", "", "-lead", "sp ace", "sl/ash"):
            with pytest.raises(StoreError):
                FileStore(tmp_path / "s", writer=bad)

    def test_two_handles_write_concurrently_without_corruption(self, tmp_path):
        root = tmp_path / "s"
        a = FileStore(root, writer="a")
        b = FileStore(root, writer="b")
        records = [_record(size, seed) for size in (4, 5, 6) for seed in (0, 1)]
        for index, record in enumerate(records):
            (a if index % 2 else b).put(record)
        a.close()
        b.close()
        with FileStore(root) as merged:
            assert len(merged) == len(records)
            merged.verify()
            for record in records:
                assert merged.get(record.spec) == record

    def test_multiprocess_writers_one_store(self, tmp_path):
        """Satellite: concurrent multi-process writers against one FileStore."""
        import repro

        root = tmp_path / "s"
        FileStore(root).close()  # create the layout up front
        code = (
            "import sys\n"
            "from repro.runtime import ScenarioSpec\n"
            "from repro.runtime.runner import run\n"
            "from repro.store import FileStore\n"
            "root, writer = sys.argv[1], sys.argv[2]\n"
            "with FileStore(root, writer=writer) as store:\n"
            "    for size in (int(n) for n in sys.argv[3:]):\n"
            "        store.put(run(ScenarioSpec(size=size, seed=7)))\n"
        )
        env = dict(os.environ)
        package_root = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (package_root, env.get("PYTHONPATH")) if part
        )
        sizes = {"w0": ["4", "7", "10"], "w1": ["5", "8", "11"], "w2": ["6", "9", "12"]}
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", code, str(root), writer, *args],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for writer, args in sizes.items()
        ]
        for proc in procs:
            _out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        with FileStore(root) as store:
            store.verify()  # no interleaved/corrupt shard lines
            assert len(store) == 9
            index_rebuilt = store.rebuild_index()
            assert index_rebuilt == 9
            # The rebuilt index agrees with the shard contents record by record.
            for size_args in sizes.values():
                for size in size_args:
                    spec = ScenarioSpec(size=int(size), seed=7)
                    assert store.get(spec) == run(spec)

    def test_gc_collapses_writer_namespaces(self, tmp_path):
        root = tmp_path / "s"
        with FileStore(root, writer="w1") as store:
            store.put(_record(4))
        store = FileStore(root)
        store.gc()
        stems = [path.stem for path in (root / "shards").glob("*.jsonl")]
        assert stems and all("--" not in stem for stem in stems)
        with FileStore(root) as reopened:
            assert len(reopened) == 1


class TestPutReplace:
    def test_put_replace_shadows_and_gc_keeps_last(self, tmp_path):
        original = _record(5)
        divergent = _tampered_copy(original)
        with FileStore(tmp_path / "s") as store:
            store.put(original)
            assert store.put(divergent) == original.spec.key()
            assert store.get(original.spec) == original  # put is idempotent
            store.put_replace(divergent)
            assert store.get(original.spec) == divergent
        store = FileStore(tmp_path / "s")
        assert store.get(original.spec) == divergent
        store.gc()
        with FileStore(tmp_path / "s") as reopened:
            assert reopened.get(original.spec) == divergent
            assert len(reopened) == 1


class TestMergeStores:
    def test_merge_dedups_by_key(self, tmp_path):
        shared = _record(4)
        with FileStore(tmp_path / "a") as a:
            a.put(shared)
            a.put(_record(5))
        with FileStore(tmp_path / "b") as b:
            b.put(shared)
            b.put(_record(6))
        with FileStore(tmp_path / "dst") as dst:
            report = merge_stores([tmp_path / "a", tmp_path / "b"], dst)
            assert report["merged"] == 3
            assert report["duplicates"] == 1
            assert report["conflicts"] == []
            assert len(dst) == 3

    def test_merge_detects_divergent_payloads(self, tmp_path):
        record = _record(4)
        with FileStore(tmp_path / "a") as a:
            a.put(record)
        with FileStore(tmp_path / "b") as b:
            b.put(_tampered_copy(record))
        with FileStore(tmp_path / "dst") as dst:
            with pytest.raises(StoreConflictError) as excinfo:
                merge_stores([tmp_path / "a", tmp_path / "b"], dst)
            assert excinfo.value.conflicts == (record.spec.key(),)

    def test_merge_conflict_policies(self, tmp_path):
        record = _record(4)
        divergent = _tampered_copy(record)
        with FileStore(tmp_path / "src") as src:
            src.put(divergent)
        ours = MemoryStore()
        ours.put(record)
        report = merge_stores([tmp_path / "src"], ours, on_conflict="ours")
        assert report["conflicts"] == [record.spec.key()]
        assert ours.get(record.spec) == record
        theirs = MemoryStore()
        theirs.put(record)
        merge_stores([tmp_path / "src"], theirs, on_conflict="theirs")
        assert theirs.get(record.spec) == divergent

    def test_merge_rebuilds_the_index(self, tmp_path):
        with FileStore(tmp_path / "src") as src:
            run_sweep(SweepSpec(sizes=(4, 6), seeds=(0, 1)), store=src)
            keys = set(src.keys())
        with FileStore(tmp_path / "dst") as dst:
            merge_stores([tmp_path / "src"], dst)
        index_keys = {
            json.loads(line)["key"]
            for line in (tmp_path / "dst" / "index.jsonl").read_text().splitlines()
        }
        assert index_keys == keys
        with FileStore(tmp_path / "dst") as dst:
            assert set(dst.keys()) == keys
            dst.verify()

    def test_merge_tolerates_truncated_source_tail(self, tmp_path):
        with FileStore(tmp_path / "src") as src:
            run_sweep(SweepSpec(sizes=(4, 6), seeds=(0, 1)), store=src)
            total = len(src)
        shard = sorted((tmp_path / "src" / "shards").glob("*.jsonl"))[0]
        shard.write_bytes(shard.read_bytes()[:-9])  # the in-flight record of a kill
        (tmp_path / "src" / "index.jsonl").unlink()
        with FileStore(tmp_path / "dst") as dst:
            report = merge_stores([tmp_path / "src"], dst)
            assert report["merged"] == total - 1

    def test_merge_unknown_policy(self, tmp_path):
        with pytest.raises(StoreError):
            merge_stores([], MemoryStore(), on_conflict="panic")


class TestLruEviction:
    def _fill(self, root, sizes=(4, 5, 6, 7)) -> list:
        records = [_record(size) for size in sizes]
        with FileStore(root) as store:
            for record in records:
                store.put(record)
        return records

    def test_gc_max_records_evicts_least_recently_read(self, tmp_path):
        root = tmp_path / "s"
        records = self._fill(root)
        with FileStore(root) as store:
            # Touch the last two records; the untouched ones must go first.
            time.sleep(0.01)
            store.get(records[2].spec)
            store.get(records[3].spec)
        store = FileStore(root)
        report = store.gc(max_records=2)
        assert report["evicted"] == 2 and report["kept"] == 2
        with FileStore(root) as reopened:
            assert reopened.get(records[0].spec) is None
            assert reopened.get(records[1].spec) is None
            assert reopened.get(records[2].spec) == records[2]
            assert reopened.get(records[3].spec) == records[3]

    def test_gc_max_bytes_bounds_the_shards(self, tmp_path):
        root = tmp_path / "s"
        self._fill(root)
        store = FileStore(root)
        budget = 2000
        report = store.gc(max_bytes=budget)
        assert report["evicted"] >= 1
        total = sum(path.stat().st_size for path in (root / "shards").glob("*.jsonl"))
        assert total <= budget

    def test_lastread_survives_reopen_and_prunes_on_gc(self, tmp_path):
        root = tmp_path / "s"
        records = self._fill(root, sizes=(4, 5))
        with FileStore(root) as store:
            store.get(records[1].spec)
        stamps = json.loads((root / "lastread.json").read_text())
        assert records[1].spec.key() in stamps
        store = FileStore(root)
        store.gc(max_records=1)
        stamps = json.loads((root / "lastread.json").read_text())
        assert set(stamps) == {records[1].spec.key()}

    def test_corrupt_lastread_is_ignored(self, tmp_path):
        root = tmp_path / "s"
        records = self._fill(root, sizes=(4,))
        (root / "lastread.json").write_text("{broken")
        with FileStore(root) as store:
            assert store.get(records[0].spec) == records[0]


class TestStoreCliExtensions:
    @pytest.fixture()
    def stores(self, tmp_path, capsys):
        from repro.cli import main

        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert main(["sweep", "--sizes", "4", "--seeds", "2", "--quiet", "--store", a]) == 0
        assert main(["sweep", "--sizes", "6", "--seeds", "2", "--quiet", "--store", b]) == 0
        capsys.readouterr()
        return a, b

    def test_store_merge_cli(self, stores, tmp_path, capsys):
        from repro.cli import main

        a, b = stores
        dst = str(tmp_path / "dst")
        assert main(["store", "merge", a, b, "--into", dst]) == 0
        out = capsys.readouterr().out
        assert "merged 4 of 4 records from 2 store(s)" in out
        assert "0 duplicates, 0 conflicts" in out
        assert main(["store", "ls", "--store", dst, "--keys"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 4

    def test_store_ls_stat_line(self, stores, capsys):
        from repro.cli import main

        a, _b = stores
        assert main(["store", "ls", "--store", a, "--stat"]) == 0
        out = capsys.readouterr().out
        assert "2 records" in out and "writer namespace" in out

    def test_store_gc_budget_flags(self, stores, capsys):
        from repro.cli import main

        a, _b = stores
        assert main(["store", "gc", "--store", a, "--max-records", "1"]) == 0
        out = capsys.readouterr().out
        assert "evicted 1 LRU records" in out
        assert main(["store", "ls", "--store", a, "--stat"]) == 0
        assert "1 records" in capsys.readouterr().out
