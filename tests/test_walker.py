"""Tests of the generator walk primitives (tape, step, backtrack)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exploration.uxs import walk_trajectory
from repro.exploration.walker import Tape, backtrack, follow_exploration, step
from repro.graphs import families

from .helpers import drive_walk


class TestTape:
    def test_mark_and_slice(self):
        tape = Tape()
        assert len(tape) == 0
        tape.entry_ports.extend([1, 0, 1])
        mark = tape.mark()
        tape.entry_ports.extend([0, 0])
        assert mark == 3
        assert list(tape.slice_since(mark)) == [0, 0]
        assert len(tape) == 5


class TestStepAndBacktrack:
    def test_step_records_entry_port(self, ring6):
        tape = Tape()

        def factory(obs):
            def program(obs):
                obs = yield from step(tape, 0)
                obs = yield from step(tape, 1)
                return obs

            return program(obs)

        walk = drive_walk(ring6, 0, factory)
        assert walk.length == 2
        assert tape.entry_ports == walk.entry_ports

    def test_backtrack_returns_to_start(self, small_er, sim_model):
        """Following any exploration walk and backtracking ends at the start."""
        tape = Tape()

        def factory(obs):
            def program(obs):
                mark = tape.mark()
                obs = yield from follow_exploration(tape, sim_model.uxs_terms(4), obs)
                obs = yield from backtrack(tape, mark, obs)
                return obs

            return program(obs)

        walk = drive_walk(small_er, 0, factory)
        assert walk.end == 0
        assert walk.length == 2 * sim_model.P(4)
        # The second half of the node sequence is the mirror of the first half.
        forward = walk.nodes[: sim_model.P(4) + 1]
        backward = walk.nodes[sim_model.P(4):]
        assert backward == list(reversed(forward))

    def test_nested_backtracks_compose(self, ring6, sim_model):
        """Backtracking a stretch that itself contains a backtrack retraces it all."""
        tape = Tape()
        terms = sim_model.uxs_terms(2)

        def factory(obs):
            def program(obs):
                outer = tape.mark()
                obs = yield from follow_exploration(tape, terms, obs)
                inner = tape.mark()
                obs = yield from follow_exploration(tape, terms, obs)
                obs = yield from backtrack(tape, inner, obs)
                obs = yield from backtrack(tape, outer, obs)
                return obs

            return program(obs)

        walk = drive_walk(ring6, 2, factory)
        assert walk.end == 2
        assert walk.nodes == walk.nodes[::-1]  # the full walk is a palindrome

    def test_follow_exploration_matches_simulator_walk(self, small_er, sim_model):
        """Agent-side walk == simulator-side walk for the same sequence."""
        terms = sim_model.uxs_terms(small_er.size)
        reference = walk_trajectory(small_er, 3, terms)
        tape = Tape()

        def factory(obs):
            def program(obs):
                obs = yield from follow_exploration(tape, terms, obs)
                return obs

            return program(obs)

        walk = drive_walk(small_er, 3, factory)
        assert walk.nodes == list(reference.nodes)
        assert walk.ports == list(reference.ports)

    @given(start=st.integers(min_value=0, max_value=6), k=st.integers(min_value=1, max_value=4))
    def test_backtrack_property_on_random_walks(self, start, k):
        """Property: follow-then-backtrack is a closed palindrome from any start."""
        from repro.exploration.cost_model import SimulationCostModel

        graph = families.random_connected(7, 0.35, rng_seed=9)
        model = SimulationCostModel()
        tape = Tape()

        def factory(obs):
            def program(obs):
                mark = tape.mark()
                obs = yield from follow_exploration(tape, model.uxs_terms(k), obs)
                obs = yield from backtrack(tape, mark, obs)
                return obs

            return program(obs)

        walk = drive_walk(graph, start, factory)
        assert walk.end == start
        assert walk.nodes == walk.nodes[::-1]
