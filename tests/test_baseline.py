"""Tests of the naive exponential baseline algorithm."""

from __future__ import annotations

import pytest

from repro.exceptions import LabelError
from repro.core.baseline import (
    BaselineController,
    baseline_route,
    run_baseline_rendezvous,
)
from repro.graphs import families
from repro.sim import LazyScheduler, RoundRobinScheduler

from .helpers import drive_walk


class TestBaselineRoute:
    def test_route_length_is_exactly_the_exponential_formula(self, tiny_model, ring4):
        """The agent performs (2P(n)+1)^L · 2P(n) traversals and then stops."""
        label, n = 2, 4
        expected = tiny_model.baseline_trajectory_length(n, label)

        def factory(obs):
            return baseline_route(label, n, tiny_model, obs)

        walk = drive_walk(ring4, 0, factory)
        assert walk.length == expected
        assert walk.end == 0  # X(n, v) is closed, so the agent stops at home

    def test_route_grows_exponentially_with_the_label(self, tiny_model, ring4):
        lengths = []
        for label in (1, 2):
            walk = drive_walk(
                ring4, 0, lambda obs, lab=label: baseline_route(lab, 4, tiny_model, obs)
            )
            lengths.append(walk.length)
        assert lengths[1] == lengths[0] * (2 * tiny_model.P(4) + 1)

    def test_invalid_parameters(self, tiny_model, ring4):
        with pytest.raises(LabelError):
            drive_walk(ring4, 0, lambda obs: baseline_route(0, 4, tiny_model, obs))
        with pytest.raises(LabelError):
            drive_walk(ring4, 0, lambda obs: baseline_route(1, 0, tiny_model, obs))


class TestBaselineRendezvous:
    def test_agents_meet_under_round_robin(self, sim_model, ring6):
        result = run_baseline_rendezvous(
            ring6, [(1, 0), (2, 3)], model=sim_model, max_traversals=500_000
        )
        assert result.met

    def test_agents_meet_under_delay_until_stop(self, sim_model, ring6):
        result = run_baseline_rendezvous(
            ring6,
            [(1, 0), (2, 3)],
            scheduler=LazyScheduler("agent-2", release_after=None),
            model=sim_model,
            max_traversals=500_000,
        )
        assert result.met

    def test_known_size_defaults_to_graph_size(self, sim_model, ring6):
        controller = BaselineController("b", 3, ring6.size, sim_model)
        assert controller.known_size == ring6.size
        assert controller.public["algorithm"] == "naive-exponential"

    def test_identical_labels_rejected(self, sim_model, ring6):
        with pytest.raises(LabelError):
            run_baseline_rendezvous(ring6, [(2, 0), (2, 3)], model=sim_model)

    def test_wrong_team_size_rejected(self, sim_model, ring6):
        with pytest.raises(LabelError):
            run_baseline_rendezvous(ring6, [(2, 0), (3, 1), (4, 2)], model=sim_model)

    def test_underestimating_the_size_can_break_the_baseline(self, sim_model):
        """The baseline needs a correct size bound: with n' < n both agents can
        stop without meeting — the drawback RV-asynch-poly removes.

        The path is long enough that the two agents' (too short) exploration
        walks cannot even overlap in space, so the failure is deterministic.
        """
        graph = families.path(24)
        result = run_baseline_rendezvous(
            graph,
            [(1, 0), (2, 23)],
            known_size=1,  # far below the real size
            scheduler=RoundRobinScheduler(),
            model=sim_model,
            max_traversals=200_000,
            on_cost_limit="return",
        )
        assert not result.met
        assert result.reason == "all_stopped"
