"""Tests of the four applications built on Algorithm SGL (§4)."""

from __future__ import annotations

import pytest

from repro.graphs import families
from repro.teams import (
    TeamMember,
    solve_gossiping,
    solve_leader_election,
    solve_perfect_renaming,
    solve_team_size,
)

pytestmark = pytest.mark.sgl


@pytest.fixture(scope="module")
def team_setup(sim_model_module):
    """One SGL-sized setup shared by the four problem tests."""
    graph = families.ring(4)
    members = [
        TeamMember(7, 0, value="red"),
        TeamMember(3, 1, value="green"),
        TeamMember(11, 2, value="blue"),
    ]
    return graph, members


@pytest.fixture(scope="module")
def sim_model_module():
    from repro.exploration.cost_model import SimulationCostModel

    return SimulationCostModel()


class TestTeamSize:
    def test_every_agent_counts_the_team(self, team_setup, sim_model_module):
        graph, members = team_setup
        answers, outcome = solve_team_size(
            graph, members, model=sim_model_module, max_traversals=4_000_000
        )
        assert outcome.correct
        assert answers == {7: 3, 3: 3, 11: 3}


class TestLeaderElection:
    def test_everyone_elects_the_smallest_label(self, team_setup, sim_model_module):
        graph, members = team_setup
        answers, outcome = solve_leader_election(
            graph, members, model=sim_model_module, max_traversals=4_000_000
        )
        assert outcome.correct
        assert set(answers.values()) == {3}
        assert set(answers.keys()) == {3, 7, 11}


class TestPerfectRenaming:
    def test_new_names_are_a_bijection_onto_1_to_k(self, team_setup, sim_model_module):
        graph, members = team_setup
        answers, outcome = solve_perfect_renaming(
            graph, members, model=sim_model_module, max_traversals=4_000_000
        )
        assert outcome.correct
        assert sorted(answers.values()) == [1, 2, 3]
        # Ranks follow the label order: 3 -> 1, 7 -> 2, 11 -> 3.
        assert answers == {3: 1, 7: 2, 11: 3}


class TestGossiping:
    def test_every_agent_learns_every_value(self, team_setup, sim_model_module):
        graph, members = team_setup
        answers, outcome = solve_gossiping(
            graph, members, model=sim_model_module, max_traversals=4_000_000
        )
        assert outcome.correct
        expected = {7: "red", 3: "green", 11: "blue"}
        assert answers == {7: expected, 3: expected, 11: expected}
