"""Tests of the telemetry layer: metrics registry, tracing, profiling.

The load-bearing guarantees:

* metrics and tracing are **off by default** and cost nothing when off —
  an untraced run produces a byte-identical :class:`RunRecord`;
* a trace's counters, span counts and events are deterministic for a fixed
  spec (only measured seconds vary);
* the registry is thread-safe (the HTTP service records into one instance
  from ``ThreadingHTTPServer`` threads);
* ``render_prom`` emits the Prometheus text exposition format exactly.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    Tracer,
    current_tracer,
    deterministic_view,
    disable_metrics,
    enable_metrics,
    engine_coverage,
    format_profile,
    get_registry,
    use_tracer,
)
from repro.runtime.records import RunRecord
from repro.runtime.runner import run
from repro.runtime.spec import ScenarioSpec
from repro.serve import ResultService, make_server
from repro.store import MemoryStore


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "Things")
        counter.inc()
        counter.inc(2, kind="a")
        counter.inc(3, kind="a")
        assert counter.value() == 1
        assert counter.value(kind="a") == 5
        assert counter.value(kind="never") == 0

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_histogram_counts_sum_and_buckets(self):
        histogram = MetricsRegistry().histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(6.25)
        assert histogram.cumulative_buckets(()) == [
            (0.1, 1),
            (1.0, 3),
            (float("inf"), 4),
        ]

    def test_same_name_same_instrument_wrong_kind_raises(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        assert registry.counter("x_total") is counter
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_prom_exposition_golden(self):
        registry = MetricsRegistry()
        registry.counter("repro_runs_total", "Scenario runs").inc(3, problem="teams")
        registry.gauge("repro_depth").set(2.5)
        histogram = registry.histogram("repro_wait_seconds", "Waits", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        assert registry.render_prom() == (
            "# TYPE repro_depth gauge\n"
            "repro_depth 2.5\n"
            "# HELP repro_runs_total Scenario runs\n"
            "# TYPE repro_runs_total counter\n"
            'repro_runs_total{problem="teams"} 3\n'
            "# HELP repro_wait_seconds Waits\n"
            "# TYPE repro_wait_seconds histogram\n"
            'repro_wait_seconds_bucket{le="0.1"} 1\n'
            'repro_wait_seconds_bucket{le="1"} 2\n'
            'repro_wait_seconds_bucket{le="+Inf"} 2\n'
            "repro_wait_seconds_sum 0.55\n"
            "repro_wait_seconds_count 2\n"
        )

    def test_prom_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(1, path='a"b\\c')
        assert 'c_total{path="a\\"b\\\\c"} 1' in registry.render_prom()

    def test_json_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.counter("b_total").inc(1, kind="x")
        registry.histogram("h_seconds").observe(0.25)
        snapshot = json.loads(registry.render_json())
        assert snapshot["a_total"] == 2
        assert snapshot["b_total"] == {"kind=x": 1}
        assert snapshot["h_seconds"] == {"count": 1, "sum": 0.25}

    def test_registry_is_thread_safe(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        histogram = registry.histogram("lat_seconds")
        threads = [
            threading.Thread(
                target=lambda: [
                    (counter.inc(thread=str(t % 2)), histogram.observe(0.01))
                    for _ in range(500)
                ],
            )
            for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(thread="0") + counter.value(thread="1") == 4000
        assert histogram.count() == 4000

    def test_disabled_registry_hands_out_noops(self):
        null = MetricsRegistry(enabled=False)
        counter = null.counter("x_total")
        counter.inc(99)
        assert counter.value() == 0
        assert null.names() == []
        assert null.render_prom() == ""

    def test_global_registry_defaults_to_null_and_toggles(self):
        assert get_registry() is NULL_REGISTRY
        try:
            live = enable_metrics()
            assert get_registry() is live and live.enabled
            assert enable_metrics() is live  # idempotent
        finally:
            disable_metrics()
        assert get_registry() is NULL_REGISTRY


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_spans_accumulate_under_an_injected_clock(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        with tracer.span("work"):
            pass  # 0 -> 1
        start = tracer.clock()  # 2
        tracer.add_span("work", start)  # 3 - 2
        trace = tracer.finish()
        assert trace.spans["work"] == {"count": 2, "seconds": 2.0}
        assert trace.span_seconds("work") == 2.0
        assert trace.span_seconds("absent") == 0.0

    def test_events_are_bounded(self):
        tracer = Tracer(max_events=2)
        for index in range(5):
            tracer.event("meeting", index=index)
        trace = tracer.finish()
        assert [event["index"] for event in trace.events] == [0, 1]
        assert trace.events_dropped == 3

    def test_ambient_tracer_scoping(self):
        assert current_tracer() is None
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with use_tracer(None):
                assert current_tracer() is None
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_to_dict_sorts_and_versions(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.count("b", 2)
        tracer.count("a")
        payload = tracer.finish().to_dict()
        assert list(payload["counters"]) == ["a", "b"]
        assert payload["schema"] == 1


# ----------------------------------------------------------------------
# traced runs end to end
# ----------------------------------------------------------------------
TEAMS_SPEC = ScenarioSpec(
    problem="teams", family="ring", size=4, seed=0, team_size=2, scheduler="round_robin"
)


@pytest.fixture(scope="module")
def plain_record():
    return run(TEAMS_SPEC)


@pytest.fixture(scope="module")
def traced_record():
    return run(TEAMS_SPEC, trace=True)


@pytest.fixture(scope="module")
def traced_again():
    return run(TEAMS_SPEC, trace=True)


class TestTracedRuns:
    def test_untraced_run_is_byte_identical(self, plain_record, traced_record):
        # Stripping the trace key recovers the plain record exactly — so
        # traced and untraced records share a spec key in the store.
        stripped = tuple(kv for kv in traced_record.extra if kv[0] != "trace")
        assert stripped == plain_record.extra
        assert run(TEAMS_SPEC).to_json() == plain_record.to_json()

    def test_trace_is_deterministic_for_a_fixed_spec(self, traced_record, traced_again):
        first = traced_record.extra_dict["trace"]
        second = traced_again.extra_dict["trace"]
        assert deterministic_view(first) == deterministic_view(second)
        assert first["counters"]["engine.decisions"] > 0
        assert first["counters"]["engine.fraction_ops"] > 0

    def test_trace_round_trips_through_record_json(self, traced_record):
        rebuilt = RunRecord.from_dict(json.loads(traced_record.to_json()))
        assert rebuilt == traced_record

    def test_engine_coverage_and_profile_table(self, traced_record):
        trace = traced_record.extra_dict["trace"]
        coverage = engine_coverage(trace)
        assert coverage is not None and coverage > 0.5
        table = format_profile(trace)
        assert "engine.run" in table and "% of run" in table
        assert "engine coverage:" in table and "counters:" in table

    def test_esst_trace_has_no_engine_span(self):
        spec = ScenarioSpec(problem="esst", family="ring", size=5, seed=0)
        trace = run(spec, trace=True).extra_dict["trace"]
        assert engine_coverage(trace) is None
        assert trace["spans"]["run"]["count"] == 1


# ----------------------------------------------------------------------
# the registry under a threading HTTP server
# ----------------------------------------------------------------------
class TestServeRegistry:
    def test_concurrent_requests_count_exactly(self):
        service = ResultService(MemoryStore())
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            workers = [
                threading.Thread(
                    target=lambda: [
                        urllib.request.urlopen(f"{base}/healthz").read()
                        for _ in range(25)
                    ]
                )
                for _ in range(4)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            with urllib.request.urlopen(f"{base}/metrics") as response:
                metrics = json.load(response)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        assert metrics["requests"]["healthz"] == 100
        assert metrics["requests_total"] == 101  # the /metrics call itself
        assert metrics["errors"] == 0

    def test_prom_format_over_http(self):
        service = ResultService(MemoryStore())
        service.handle("GET", "/healthz")
        response = service.handle("GET", "/metrics", params={"format": "prom"})
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = response.body.decode("utf-8")
        assert "# TYPE serve_http_requests_total counter" in text
        assert 'serve_http_requests_total{route="healthz"} 1' in text
        assert "serve_http_request_seconds_bucket" in text

    def test_unknown_metrics_format_is_400(self):
        service = ResultService(MemoryStore())
        response = service.handle("GET", "/metrics", params={"format": "xml"})
        assert response.status == 400


class TestProfileFooter:
    def test_events_dropped_lands_in_the_trace_and_the_footer(self):
        """Satellite: the tracer's drop counter survives into the persisted
        payload and the profile footer names it."""
        tracer = Tracer(max_events=1)
        with tracer.span("run"):
            for index in range(4):
                tracer.event("meeting", index=index)
        payload = tracer.finish().to_dict()
        assert payload["events_dropped"] == 3
        rendered = format_profile(payload)
        assert "events: 1 recorded, 3 dropped" in rendered

    def test_footer_is_omitted_without_events(self):
        tracer = Tracer()
        with tracer.span("run"):
            pass
        rendered = format_profile(tracer.finish().to_dict())
        assert "recorded" not in rendered
