"""Tests of the durable fleet event journal and its reconstructions."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.distrib import Dispatcher, Worker, WorkQueue
from repro.exceptions import ReproError
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventJournal,
    executed_cells,
    fleet_summary,
    format_event,
    format_fleet,
    sweep_timeline,
)
from repro.runtime import SweepSpec
from repro.runtime.executors import run_sweep
from repro.store import FileStore, merge_stores

GRID = SweepSpec(sizes=(4, 6), seeds=(0, 1), name="events-tests")


def _queue(tmp_path, unit_size=2, sweep=GRID) -> WorkQueue:
    queue = WorkQueue(tmp_path / "queue", create=True)
    Dispatcher(queue, unit_size=unit_size).dispatch(sweep)
    return queue


class TestJournalAppend:
    def test_append_stamps_schema_writer_and_sequence(self, tmp_path):
        with EventJournal(tmp_path / "j", writer="w1") as journal:
            first = journal.append("unit.start", unit="u1", ts=10.0)
            second = journal.append("unit.done", unit="u1", ts=11.0)
        assert first["schema"] == EVENT_SCHEMA_VERSION
        assert first["writer"] == "w1" and first["ts"] == 10.0
        assert (first["seq"], second["seq"]) == (0, 1)
        events = EventJournal(tmp_path / "j").events()
        assert [e["type"] for e in events] == ["unit.start", "unit.done"]

    def test_restarted_writer_continues_its_numbering(self, tmp_path):
        with EventJournal(tmp_path / "j", writer="w1") as journal:
            journal.append("worker.start", ts=1.0)
            journal.append("worker.exit", ts=2.0)
        with EventJournal(tmp_path / "j", writer="w1") as reborn:
            event = reborn.append("worker.start", ts=3.0)
        assert event["seq"] == 2

    def test_reader_journal_refuses_to_append(self, tmp_path):
        journal = EventJournal(tmp_path / "j", create=True)
        with pytest.raises(ReproError):
            journal.append("unit.start")

    def test_invalid_writer_names_rejected(self, tmp_path):
        for bad in ("a--b", "", "-lead", "sp ace", "sl/ash"):
            with pytest.raises(ReproError):
                EventJournal(tmp_path / "j", writer=bad)

    def test_missing_journal_reads_as_empty(self, tmp_path):
        journal = EventJournal(tmp_path / "never")
        assert journal.events() == []
        assert journal.latest_heartbeats() == {}

    def test_generation_tracks_shard_growth(self, tmp_path):
        with EventJournal(tmp_path / "j", writer="w1") as journal:
            before = journal.generation()
            journal.append("unit.start", unit="u1")
            time.sleep(0.01)  # mtime_ns granularity
            after = journal.generation()
        assert before != after
        assert EventJournal(tmp_path / "j").generation() == after


class TestJournalRead:
    def _seed(self, tmp_path) -> EventJournal:
        with EventJournal(tmp_path / "j", writer="w1") as w1:
            w1.append("unit.claim", unit="u1", kind="fresh", ts=1.0)
            w1.append("cell.done", unit="u1", key="k1", status="executed", ts=3.0)
        with EventJournal(tmp_path / "j", writer="w2") as w2:
            w2.append("unit.claim", unit="u2", kind="fresh", ts=2.0)
            w2.append("lease.expire", unit="u1", worker="w1", ts=4.0)
        return EventJournal(tmp_path / "j")

    def test_merged_read_is_totally_ordered(self, tmp_path):
        journal = self._seed(tmp_path)
        events = journal.events()
        assert [e["ts"] for e in events] == [1.0, 2.0, 3.0, 4.0]
        assert [e["writer"] for e in events] == ["w1", "w2", "w1", "w2"]

    def test_filters_are_conjunctive(self, tmp_path):
        journal = self._seed(tmp_path)
        assert len(journal.events(type="unit.claim")) == 2
        assert len(journal.events(unit="u1")) == 3
        assert len(journal.events(since=3.0)) == 2
        # `worker` matches the event's worker field, else its writer stamp:
        # the lease.expire written by w2 names w1 as the (dead) worker.
        w1_view = journal.events(worker="w1")
        assert [e["type"] for e in w1_view] == [
            "unit.claim",
            "cell.done",
            "lease.expire",
        ]

    def test_torn_tail_and_malformed_interior_lines_are_dropped(self, tmp_path):
        journal = self._seed(tmp_path)
        shard = journal.shard_path("w1")
        with shard.open("a", encoding="utf-8") as handle:
            handle.write("{not json}\n")  # malformed interior line
            handle.write('"a string, not an event"\n')  # wrong shape
            handle.write('{"type": "cell.done", "ts": 9.0')  # torn tail
        events = journal.events()
        assert len(events) == 4  # the good lines, nothing else
        assert journal.dropped == 2  # torn tail is not even counted as a line

    def test_heartbeat_keeps_only_the_latest_snapshot(self, tmp_path):
        with EventJournal(tmp_path / "j", writer="w1") as journal:
            journal.heartbeat(unit="u1", cells_done=1, ts=1.0)
            journal.heartbeat(unit="u1", cells_done=2, ts=2.0)
        reader = EventJournal(tmp_path / "j")
        beats = reader.latest_heartbeats()
        assert set(beats) == {"w1"}
        assert beats["w1"]["cells_done"] == 2
        # The history is still in the shard.
        assert len(reader.events(type="worker.heartbeat")) == 2


class TestMultiProcessAppenders:
    def test_concurrent_processes_produce_no_torn_records(self, tmp_path):
        """Satellite: N processes append concurrently; the merged read sees
        every event exactly once, with contiguous per-writer sequences."""
        import repro

        root = tmp_path / "j"
        per_writer = 200
        code = (
            "import sys\n"
            "from repro.obs.events import EventJournal\n"
            "root, writer, count = sys.argv[1], sys.argv[2], int(sys.argv[3])\n"
            "with EventJournal(root, writer=writer) as journal:\n"
            "    for i in range(count):\n"
            "        journal.append('cell.done', unit='u', key=f'{writer}-{i}',\n"
            "                       status='executed', payload='x' * 256)\n"
        )
        env = dict(os.environ)
        package_root = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (package_root, env.get("PYTHONPATH")) if part
        )
        writers = [f"w{i}" for i in range(4)]
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", code, str(root), writer, str(per_writer)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for writer in writers
        ]
        for proc in procs:
            _out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()

        journal = EventJournal(root)
        events = journal.events()
        assert journal.dropped == 0
        assert len(events) == len(writers) * per_writer
        for writer in writers:
            seqs = [e["seq"] for e in events if e["writer"] == writer]
            assert sorted(seqs) == list(range(per_writer))
        keys = {e["key"] for e in events}
        assert len(keys) == len(writers) * per_writer


class TestFabricJournal:
    def test_worker_journal_reconstructs_the_sweep_timeline(self, tmp_path):
        queue = _queue(tmp_path)
        Worker(queue, worker_id="w1", lease_ttl=60).run()
        journal = queue.journal()
        events = journal.events()
        assert {e["type"] for e in events} >= {
            "sweep.dispatch",
            "unit.claim",
            "unit.start",
            "cell.done",
            "unit.done",
            "worker.start",
            "worker.heartbeat",
            "worker.exit",
        }
        timeline = sweep_timeline(journal)
        assert set(timeline) == set(queue.units())
        for uid, entry in timeline.items():
            assert [c["kind"] for c in entry["claims"]] == ["fresh"]
            assert entry["done"] is not None and not entry["cancelled"]
            assert set(entry["cells"]) == set(queue.load_unit(uid).keys)
        # The journal's executed-cell set is exactly the fleet's record set.
        serial = {r.spec.key() for r in run_sweep(GRID).records}
        assert set(executed_cells(journal)) == serial

    def test_cached_and_salvaged_cells_are_journalled_too(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        unit = queue.load_unit(uid)
        from repro.runtime.runner import run as run_one

        with FileStore(queue.results_root / "dead", create=True) as dead_store:
            dead_store.put(run_one(unit.specs[0]))
        assert queue.try_claim(uid, "dead", ttl=-1)
        Worker(queue, worker_id="w2", lease_ttl=60, poll=0.05).run()

        journal = queue.journal()
        statuses = {
            e["key"]: e["status"] for e in journal.events(type="cell.done")
        }
        assert statuses[unit.keys[0]] == "salvaged"
        assert sorted(statuses) == sorted(
            key for u in queue.units() for key in queue.load_unit(u).keys
        )
        timeline = sweep_timeline(journal)[uid]
        assert [c["kind"] for c in timeline["claims"]] == ["fresh", "steal"]
        assert [e["worker"] for e in timeline["expires"]] == ["dead"]

    def test_cancelled_unit_lands_in_the_timeline(self, tmp_path):
        queue = _queue(tmp_path)
        queue.attach_journal("test")
        uid = queue.units()[0]
        queue.cancel_unit(uid)
        Worker(queue, worker_id="w1", lease_ttl=60).run()
        timeline = sweep_timeline(queue.journal())
        assert timeline[uid]["cancelled"] is True
        others = [u for u in queue.units() if u != uid]
        assert all(not timeline[u]["cancelled"] for u in others)

    def test_journal_off_worker_still_drains(self, tmp_path):
        queue = _queue(tmp_path)
        totals = Worker(queue, worker_id="w1", lease_ttl=60, journal=False).run()
        assert totals["executed"] == 4
        # Only the dispatcher journalled; no worker shard exists.
        assert queue.journal().events(type="cell.done") == []


class TestSigkilledWorker:
    def test_journal_reconstruction_survives_a_sigkilled_worker(self, tmp_path):
        """Acceptance: after SIGKILL mid-drain the journal still reconstructs
        the exact executed-cell set, cross-checked against the done markers
        and the merged store keys."""
        import repro

        sweep = SweepSpec(sizes=(8, 10, 12, 14), seeds=(0, 1), name="events-tests")
        queue = WorkQueue(tmp_path / "queue", create=True)
        Dispatcher(queue, unit_size=1).dispatch(sweep)

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (package_root, env.get("PYTHONPATH")) if part
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "worker",
                "--queue", str(queue.root), "--worker-id", "doomed",
                "--lease-ttl", "30", "--heartbeat", "0.01", "--quiet",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        # Kill as soon as the journal proves the worker is mid-drain.
        deadline = time.time() + 60
        while time.time() < deadline:
            if queue.journal().events(type="cell.done", worker="doomed"):
                break
            time.sleep(0.01)
        proc.kill()
        proc.wait(timeout=30)
        assert queue.journal().events(worker="doomed"), "worker never journalled"

        # An expired lease (if the kill landed mid-unit) must be stolen, so
        # rescue with a tiny TTL and a claim-age override via direct steal.
        for uid in queue.units():
            claim = queue.read_claim(uid)
            if claim is not None and claim["worker"] == "doomed":
                queue.try_claim(uid, "doomed", ttl=-1)  # re-expire instantly
        Worker(queue, worker_id="rescuer", lease_ttl=30, poll=0.05).run()
        assert all(queue.is_done(uid) for uid in queue.units())

        journal = queue.journal()
        timeline = sweep_timeline(journal)
        # Every done unit's journalled cells are exactly its keys, and each
        # had at least one claim.
        for uid in queue.units():
            entry = timeline[uid]
            assert entry["done"] is not None
            assert set(entry["cells"]) == set(queue.load_unit(uid).keys)
            assert entry["claims"], f"unit {uid} finished without a claim event"
        # A stolen unit carries its expiry evidence.
        for uid, entry in timeline.items():
            kinds = [c["kind"] for c in entry["claims"]]
            if "steal" in kinds:
                assert any(e["worker"] == "doomed" for e in entry["expires"])

        # Durable ordering: every journalled executed cell has a store line.
        with FileStore(tmp_path / "merged") as merged:
            merge_stores(queue.result_store_dirs(), merged, salvage=True)
            stored = set(merged.keys())
        accounted = {
            key
            for key, event in executed_cells(
                journal, statuses=("executed", "salvaged", "cached")
            ).items()
        }
        assert set(executed_cells(journal)) <= stored
        assert accounted == stored
        assert stored == {r.spec.key() for r in run_sweep(sweep).records}
        # Done markers agree with the journal, unit by unit.
        for uid in queue.units():
            done = queue.read_done(uid)
            statuses = [e["status"] for e in timeline[uid]["cells"].values()]
            assert done["executed"] == statuses.count("executed")
            assert done["salvaged"] == statuses.count("salvaged")
            assert done["cached"] == statuses.count("cached")


class TestFleetSummary:
    def _beat(self, ts, **fields):
        return {"ts": ts, "pid": 1, "host": "h", **fields}

    def test_stale_workers_are_flagged_by_lease_ttl(self, tmp_path):
        status = {"cells": 4, "executed": 2, "salvaged": 0, "cached": 0}
        beats = {
            "live": self._beat(95.0, unit="u1", cells_done=1, unit_total=2),
            "dead": self._beat(10.0),
        }
        summary = fleet_summary(status, beats, lease_ttl=60.0, now=100.0)
        by_name = {w["worker"]: w for w in summary["workers"]}
        assert by_name["live"]["stale"] is False
        assert by_name["dead"]["stale"] is True
        assert summary["live_workers"] == 1 and summary["stale_workers"] == 1
        assert summary["remaining_cells"] == 2

    def test_throughput_and_eta_from_cell_events(self):
        status = {"cells": 10, "executed": 4, "salvaged": 0, "cached": 0}
        beats = {"w1": self._beat(99.0)}
        events = [
            {"type": "cell.done", "ts": 90.0 + i, "seconds": 0.5} for i in range(4)
        ]
        summary = fleet_summary(
            status, beats, events=events, lease_ttl=60.0, now=100.0
        )
        assert summary["cells_per_sec"] == 1.0
        assert summary["eta_seconds"] == pytest.approx(3.0)  # 6 cells * 0.5s / 1

    def test_format_fleet_renders_rows_and_empty_fleet(self):
        summary = fleet_summary({"cells": 0}, {}, now=1.0)
        assert "no worker heartbeats yet" in format_fleet(summary)
        summary = fleet_summary(
            {"cells": 4, "executed": 4},
            {"w1": self._beat(99.0, unit="u" * 20, cells_done=2, unit_total=2)},
            lease_ttl=60.0,
            now=100.0,
        )
        rendered = format_fleet(summary)
        assert "w1" in rendered and "2/2" in rendered
        assert "u" * 12 in rendered and "u" * 13 not in rendered

    def test_format_event_truncates_and_selects_fields(self):
        line = format_event(
            {
                "ts": 0.0,
                "writer": "w1",
                "type": "cell.done",
                "unit": "u" * 40,
                "key": "k1",
                "status": "executed",
                "seconds": 0.5,
            }
        )
        assert "cell.done" in line and "status=executed" in line
        assert "u" * 12 + "…" in line and "u" * 17 not in line
