"""Tests of the benchmark harness's machine-readable metrics history."""

from __future__ import annotations

import json

import pytest

from benchmarks import _harness


@pytest.fixture()
def results_file(tmp_path, monkeypatch):
    monkeypatch.setattr(_harness, "RESULTS_DIR", tmp_path)
    monkeypatch.setattr(_harness, "BENCH_RESULTS", tmp_path / "BENCH_results.json")
    monkeypatch.setitem(_harness._SESSION, "stamp", None)
    return tmp_path / "BENCH_results.json"


class TestRecordBench:
    def test_writes_history_and_latest(self, results_file):
        _harness.record_bench("bench_a", 2.0, cells=10)
        _harness.record_bench("bench_b", 0.5)
        _harness.record_bench("bench_a", 4.0, cells=10)  # same-session re-run updates

        results = json.loads(results_file.read_text())
        assert len(results["history"]) == 1
        session = results["history"][0]
        assert session["timestamp"] is not None
        assert session["benches"]["bench_a"] == {
            "seconds": 4.0,
            "cells": 10,
            "cells_per_sec": 2.5,
        }
        assert session["benches"]["bench_b"] == {"seconds": 0.5}
        assert results["latest"] == session["benches"]

    def test_new_session_appends_instead_of_overwriting(self, results_file):
        _harness.record_bench("bench_a", 1.0, cells=4)
        # A later pytest session: fresh process, fresh timestamp.
        _harness._SESSION["stamp"] = "2099-01-01T00:00:00+00:00"
        _harness.record_bench("bench_a", 2.0, cells=4)

        results = json.loads(results_file.read_text())
        assert len(results["history"]) == 2
        assert results["history"][0]["benches"]["bench_a"]["seconds"] == 1.0
        assert results["history"][1]["benches"]["bench_a"]["seconds"] == 2.0
        assert results["latest"]["bench_a"]["seconds"] == 2.0

    def test_legacy_flat_file_becomes_first_history_entry(self, results_file):
        results_file.write_text(
            json.dumps({"old_bench": {"seconds": 3.0, "cells": 6, "cells_per_sec": 2.0}})
        )
        _harness.record_bench("bench_a", 1.0, cells=2)
        results = json.loads(results_file.read_text())
        assert results["history"][0]["timestamp"] is None
        assert results["history"][0]["benches"]["old_bench"]["seconds"] == 3.0
        assert results["history"][1]["benches"]["bench_a"]["seconds"] == 1.0
        assert set(results["latest"]) == {"old_bench", "bench_a"}

    def test_tolerates_a_corrupt_file(self, results_file):
        results_file.write_text("{not json", encoding="utf-8")
        _harness.record_bench("bench_a", 1.0, cells=2)
        results = json.loads(results_file.read_text())
        assert results["history"][0]["benches"] == {
            "bench_a": {"seconds": 1.0, "cells": 2, "cells_per_sec": 2.0}
        }

    def test_cell_count_resolution(self):
        class Sized:
            def __len__(self):
                return 3

        class ExperimentLike:
            result = Sized()

        assert _harness._cell_count(Sized()) == 3
        assert _harness._cell_count(ExperimentLike()) == 3
        assert _harness._cell_count(object()) is None


def _entry(rate: float | None, cells: int = 100) -> dict:
    if rate is None:
        return {"seconds": 1.0}
    return {"seconds": cells / rate, "cells": cells, "cells_per_sec": rate}


class TestCheckRegression:
    def test_passes_at_and_fails_beyond_the_threshold(self):
        history = [{"timestamp": "t0", "benches": {"bench_a": _entry(150.0)}}]
        # Exactly 1.5x slower (100 vs 150) is the boundary: still allowed.
        assert _harness.check_regression({"bench_a": _entry(100.0)}, history) == []
        problems = _harness.check_regression({"bench_a": _entry(99.0)}, history)
        assert len(problems) == 1
        assert "bench_a" in problems[0] and "1.5x" in problems[0]

    def test_baseline_is_the_best_of_the_history(self):
        history = [
            {"timestamp": "t0", "benches": {"bench_a": _entry(300.0)}},
            {"timestamp": "t1", "benches": {"bench_a": _entry(90.0)}},
        ]
        # 150 would pass against the recent 90 but regresses the best (300).
        problems = _harness.check_regression({"bench_a": _entry(150.0)}, history)
        assert len(problems) == 1

    def test_skips_unsized_and_unknown_benches(self):
        history = [{"timestamp": "t0", "benches": {"bench_a": _entry(None)}}]
        benches = {
            "bench_a": _entry(1.0),  # history has no throughput for it
            "bench_b": _entry(None),  # no throughput now
            "bench_c": _entry(5.0),  # never benched before
        }
        assert _harness.check_regression(benches, history) == []

    def test_custom_threshold(self):
        history = [{"timestamp": "t0", "benches": {"bench_a": _entry(100.0)}}]
        benches = {"bench_a": _entry(60.0)}
        assert _harness.check_regression(benches, history, threshold=2.0) == []
        assert len(_harness.check_regression(benches, history, threshold=1.2)) == 1

    def test_latest_gate_reads_the_results_file(self, results_file):
        _harness.record_bench("bench_a", 1.0, cells=300)  # 300 cells/sec
        assert _harness.check_latest_regression() == []  # single entry: vacuous
        _harness._SESSION["stamp"] = "2099-01-01T00:00:00+00:00"
        _harness.record_bench("bench_a", 3.0, cells=300)  # 100 cells/sec
        problems = _harness.check_latest_regression()
        assert len(problems) == 1 and "bench_a" in problems[0]


@pytest.mark.perfgate
def test_perf_gate_latest_session_has_not_regressed():
    """Opt-in gate (``--perfgate``): the newest benchmark session's
    throughput must stay within ``REGRESSION_THRESHOLD`` of the best the
    stored history records for each bench."""
    problems = _harness.check_latest_regression()
    assert not problems, "\n".join(problems)
