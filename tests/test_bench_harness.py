"""Tests of the benchmark harness's machine-readable metrics file."""

from __future__ import annotations

import json

from benchmarks import _harness


class TestRecordBench:
    def test_writes_and_merges_entries(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_harness, "RESULTS_DIR", tmp_path)
        monkeypatch.setattr(_harness, "BENCH_RESULTS", tmp_path / "BENCH_results.json")

        _harness.record_bench("bench_a", 2.0, cells=10)
        _harness.record_bench("bench_b", 0.5)
        _harness.record_bench("bench_a", 4.0, cells=10)  # re-run overwrites

        results = json.loads((tmp_path / "BENCH_results.json").read_text())
        assert results["bench_a"] == {"seconds": 4.0, "cells": 10, "cells_per_sec": 2.5}
        assert results["bench_b"] == {"seconds": 0.5}

    def test_tolerates_a_corrupt_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_harness, "RESULTS_DIR", tmp_path)
        monkeypatch.setattr(_harness, "BENCH_RESULTS", tmp_path / "BENCH_results.json")
        (tmp_path / "BENCH_results.json").write_text("{not json", encoding="utf-8")
        _harness.record_bench("bench_a", 1.0, cells=2)
        results = json.loads((tmp_path / "BENCH_results.json").read_text())
        assert results == {"bench_a": {"seconds": 1.0, "cells": 2, "cells_per_sec": 2.0}}

    def test_cell_count_resolution(self):
        class Sized:
            def __len__(self):
                return 3

        class ExperimentLike:
            result = Sized()

        assert _harness._cell_count(Sized()) == 3
        assert _harness._cell_count(ExperimentLike()) == 3
        assert _harness._cell_count(object()) is None
