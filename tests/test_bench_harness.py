"""Tests of the benchmark harness's machine-readable metrics history."""

from __future__ import annotations

import json

import pytest

from benchmarks import _harness


@pytest.fixture()
def results_file(tmp_path, monkeypatch):
    monkeypatch.setattr(_harness, "RESULTS_DIR", tmp_path)
    monkeypatch.setattr(_harness, "BENCH_RESULTS", tmp_path / "BENCH_results.json")
    monkeypatch.setitem(_harness._SESSION, "stamp", None)
    return tmp_path / "BENCH_results.json"


class TestRecordBench:
    def test_writes_history_and_latest(self, results_file):
        _harness.record_bench("bench_a", 2.0, cells=10)
        _harness.record_bench("bench_b", 0.5)
        _harness.record_bench("bench_a", 4.0, cells=10)  # same-session re-run updates

        results = json.loads(results_file.read_text())
        assert len(results["history"]) == 1
        session = results["history"][0]
        assert session["timestamp"] is not None
        assert session["benches"]["bench_a"] == {
            "seconds": 4.0,
            "cells": 10,
            "cells_per_sec": 2.5,
        }
        assert session["benches"]["bench_b"] == {"seconds": 0.5}
        assert results["latest"] == session["benches"]

    def test_new_session_appends_instead_of_overwriting(self, results_file):
        _harness.record_bench("bench_a", 1.0, cells=4)
        # A later pytest session: fresh process, fresh timestamp.
        _harness._SESSION["stamp"] = "2099-01-01T00:00:00+00:00"
        _harness.record_bench("bench_a", 2.0, cells=4)

        results = json.loads(results_file.read_text())
        assert len(results["history"]) == 2
        assert results["history"][0]["benches"]["bench_a"]["seconds"] == 1.0
        assert results["history"][1]["benches"]["bench_a"]["seconds"] == 2.0
        assert results["latest"]["bench_a"]["seconds"] == 2.0

    def test_legacy_flat_file_becomes_first_history_entry(self, results_file):
        results_file.write_text(
            json.dumps({"old_bench": {"seconds": 3.0, "cells": 6, "cells_per_sec": 2.0}})
        )
        _harness.record_bench("bench_a", 1.0, cells=2)
        results = json.loads(results_file.read_text())
        assert results["history"][0]["timestamp"] is None
        assert results["history"][0]["benches"]["old_bench"]["seconds"] == 3.0
        assert results["history"][1]["benches"]["bench_a"]["seconds"] == 1.0
        assert set(results["latest"]) == {"old_bench", "bench_a"}

    def test_tolerates_a_corrupt_file(self, results_file):
        results_file.write_text("{not json", encoding="utf-8")
        _harness.record_bench("bench_a", 1.0, cells=2)
        results = json.loads(results_file.read_text())
        assert results["history"][0]["benches"] == {
            "bench_a": {"seconds": 1.0, "cells": 2, "cells_per_sec": 2.0}
        }

    def test_cell_count_resolution(self):
        class Sized:
            def __len__(self):
                return 3

        class ExperimentLike:
            result = Sized()

        assert _harness._cell_count(Sized()) == 3
        assert _harness._cell_count(ExperimentLike()) == 3
        assert _harness._cell_count(object()) is None
