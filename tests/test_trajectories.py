"""Tests of the trajectory constructions of §3.1 (Definitions 3.1–3.8)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExplorationError
from repro.exploration.walker import Tape
from repro.core.trajectories import (
    TRAJECTORY_KINDS,
    traj_A,
    traj_A_prime,
    traj_B,
    traj_K,
    traj_Omega,
    traj_Q,
    traj_R,
    traj_X,
    traj_Y,
    traj_Y_prime,
    traj_Z,
    trajectory_structure,
)
from repro.graphs import families

from .helpers import drive_walk


def execute(graph, start, generator, k, model, max_moves=None):
    """Drive a trajectory generator to completion and return the walk."""
    tape = Tape()

    def factory(obs):
        def program(obs):
            obs = yield from generator(k, model, tape, obs)
            return obs

        return program(obs)

    return drive_walk(graph, start, factory, max_moves=max_moves)


# Trajectories that can be executed end-to-end with the tiny cost model.
EXECUTABLE = [
    ("R", traj_R, "len_R"),
    ("X", traj_X, "len_X"),
    ("Q", traj_Q, "len_Q"),
    ("Y'", traj_Y_prime, "len_Y_prime"),
    ("Y", traj_Y, "len_Y"),
    ("Z", traj_Z, "len_Z"),
    ("A'", traj_A_prime, "len_A_prime"),
    ("A", traj_A, "len_A"),
]

#: Trajectories that return to their starting node (all except R, Y', A').
CLOSED = [
    ("X", traj_X),
    ("Q", traj_Q),
    ("Y", traj_Y),
    ("Z", traj_Z),
    ("A", traj_A),
]


class TestExecutedLengths:
    """The executed walks have exactly the lengths the cost model predicts."""

    @pytest.mark.parametrize("kind, generator, length_name", EXECUTABLE)
    @pytest.mark.parametrize("k", [1, 2])
    def test_length_matches_cost_model(self, kind, generator, length_name, k, tiny_model, ring6):
        walk = execute(ring6, 0, generator, k, tiny_model)
        expected = getattr(tiny_model, length_name)(k)
        assert walk.length == expected, f"{kind}({k})"

    @pytest.mark.parametrize("kind, generator, length_name", EXECUTABLE)
    def test_length_is_graph_independent(self, kind, generator, length_name, tiny_model):
        """The same trajectory traverses the same number of edges in any graph."""
        lengths = set()
        for graph in (families.ring(4), families.path(5), families.complete_graph(5)):
            walk = execute(graph, 0, generator, 2, tiny_model)
            lengths.add(walk.length)
        assert len(lengths) == 1


class TestAnchoring:
    """X, Q, Y, Z, A (and B, K, Ω) start and end at the invoking node."""

    @pytest.mark.parametrize("kind, generator", CLOSED)
    @pytest.mark.parametrize("start", [0, 2, 4])
    def test_closed_trajectories_return_to_start(self, kind, generator, start, tiny_model, ring6):
        walk = execute(ring6, start, generator, 2, tiny_model)
        assert walk.end == start, f"{kind} must return to its anchor"

    def test_x_is_a_palindrome(self, tiny_model, small_er):
        walk = execute(small_er, 1, traj_X, 3, tiny_model)
        assert walk.nodes == walk.nodes[::-1]

    def test_y_is_a_palindrome(self, tiny_model, ring6):
        walk = execute(ring6, 1, traj_Y, 2, tiny_model)
        assert walk.nodes == walk.nodes[::-1]

    def test_a_is_a_palindrome(self, tiny_model, ring6):
        walk = execute(ring6, 3, traj_A, 1, tiny_model)
        assert walk.nodes == walk.nodes[::-1]


class TestComposition:
    def test_q_is_concatenation_of_x(self, tiny_model, ring6):
        """Q(k, v) visits exactly the concatenation of X(1, v) ... X(k, v)."""
        k = 3
        q_walk = execute(ring6, 0, traj_Q, k, tiny_model)
        expected_nodes = [0]
        for i in range(1, k + 1):
            x_walk = execute(ring6, 0, traj_X, i, tiny_model)
            expected_nodes.extend(x_walk.nodes[1:])
        assert q_walk.nodes == expected_nodes

    def test_z_is_concatenation_of_y(self, tiny_model, ring6):
        k = 2
        z_walk = execute(ring6, 0, traj_Z, k, tiny_model)
        expected_nodes = [0]
        for i in range(1, k + 1):
            y_walk = execute(ring6, 0, traj_Y, i, tiny_model)
            expected_nodes.extend(y_walk.nodes[1:])
        assert z_walk.nodes == expected_nodes

    def test_b_prefix_is_repetition_of_y(self, tiny_model, ring6):
        """The first copies of Y inside B(k, v) are exactly Y(k, v)."""
        k = 1
        y_walk = execute(ring6, 0, traj_Y, k, tiny_model)
        prefix_length = 3 * y_walk.length
        b_walk = execute(ring6, 0, traj_B, k, tiny_model, max_moves=prefix_length)
        expected = [0] + (y_walk.nodes[1:] * 3)
        assert b_walk.nodes[: prefix_length + 1] == expected

    def test_k_prefix_is_repetition_of_x(self, tiny_model, ring6):
        k = 1
        x_walk = execute(ring6, 0, traj_X, k, tiny_model)
        prefix_length = 4 * x_walk.length
        k_walk = execute(ring6, 0, traj_K, k, tiny_model, max_moves=prefix_length)
        expected = [0] + (x_walk.nodes[1:] * 4)
        assert k_walk.nodes[: prefix_length + 1] == expected

    def test_omega_prefix_is_repetition_of_x(self, tiny_model, ring6):
        k = 1
        x_walk = execute(ring6, 0, traj_X, k, tiny_model)
        prefix_length = 2 * x_walk.length
        omega_walk = execute(ring6, 0, traj_Omega, k, tiny_model, max_moves=prefix_length)
        expected = [0] + (x_walk.nodes[1:] * 2)
        assert omega_walk.nodes[: prefix_length + 1] == expected

    def test_integral_x_covers_the_graph(self, sim_model, ring6):
        """For k >= n with the simulation model, X(k, v) is integral."""
        walk = execute(ring6, 0, traj_X, ring6.size, sim_model)
        assert walk.traversed_edges == frozenset(ring6.edges())


class TestStructureDescriptors:
    def test_registry_contains_all_kinds(self):
        assert set(TRAJECTORY_KINDS) == {
            "R", "X", "Q", "Y'", "Y", "Z", "A'", "A", "B", "K", "Omega",
        }

    @pytest.mark.parametrize("kind", sorted(TRAJECTORY_KINDS))
    def test_structure_length_matches_cost_model(self, kind, sim_model):
        structure = trajectory_structure(kind, 2, sim_model)
        assert structure["length"] > 0
        assert structure["kind"] in (kind, "Omega")

    def test_structure_of_q_lists_all_x(self, sim_model):
        structure = trajectory_structure("Q", 4, sim_model)
        assert [component["k"] for component in structure["components"]] == [1, 2, 3, 4]
        assert structure["length"] == sum(
            component["length"] for component in structure["components"]
        )

    def test_structure_of_repetitions_is_consistent(self, sim_model):
        for kind, repetitions in (
            ("B", sim_model.repetitions_B(2)),
            ("K", sim_model.repetitions_K(2)),
            ("Omega", sim_model.repetitions_Omega(2)),
        ):
            structure = trajectory_structure(kind, 2, sim_model)
            inner = structure["components"][0]
            assert inner["repetitions"] == repetitions
            assert structure["length"] == inner["repetitions"] * inner["length"]

    def test_unknown_kind_rejected(self, sim_model):
        with pytest.raises(ExplorationError):
            trajectory_structure("W", 2, sim_model)
        with pytest.raises(ExplorationError):
            trajectory_structure("X", 0, sim_model)
