"""Tests of Procedure ESST (Theorem 2.1)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import ExplorationError
from repro.exploration.esst import ESSTResult, TokenTracker, run_esst
from repro.graphs import families
from repro.sim.position import Position


class TestTokenTracker:
    def test_counts_and_remembers_last_kind(self):
        tracker = TokenTracker()
        assert tracker.sightings == 0
        tracker.record_sighting(at_node=True)
        tracker.record_sighting(at_node=False)
        assert tracker.sightings == 2
        assert tracker.last_was_at_node is False


class TestRunESST:
    @pytest.mark.parametrize(
        "graph_builder, token_node",
        [
            (lambda: families.ring(4), 2),
            (lambda: families.ring(5), 3),
            (lambda: families.path(5), 4),
            (lambda: families.star(5), 3),
            (lambda: families.complete_graph(5), 4),
            (lambda: families.binary_tree(6), 5),
            (lambda: families.random_connected(6, 0.4, rng_seed=2), 5),
        ],
    )
    def test_terminates_and_traverses_all_edges(self, graph_builder, token_node, sim_model):
        graph = graph_builder()
        result = run_esst(graph, 0, Position.at_node(token_node), sim_model)
        assert result.all_edges_traversed
        assert result.traversed_edges == frozenset(graph.edges())
        assert result.visited_nodes == frozenset(graph.nodes())
        # Theorem 2.1: termination by phase 9n + 3 and the final phase exceeds n.
        assert result.final_phase <= 9 * graph.size + 3
        assert result.final_phase > graph.size
        assert result.sightings > 0

    def test_cost_is_within_the_analytic_bound(self, sim_model):
        graph = families.ring(4)
        result = run_esst(graph, 0, Position.at_node(2), sim_model)
        assert result.traversals <= sim_model.esst_bound(graph.size)

    def test_token_inside_an_edge(self, sim_model):
        graph = families.ring(5)
        token = Position.on_edge((2, 3), Fraction(1, 3))
        result = run_esst(graph, 0, token, sim_model)
        assert result.all_edges_traversed

    def test_token_at_the_start_node(self, sim_model):
        graph = families.ring(5)
        result = run_esst(graph, 2, Position.at_node(2), sim_model)
        assert result.all_edges_traversed

    def test_cost_grows_with_the_graph(self, sim_model):
        small = run_esst(families.ring(4), 0, Position.at_node(2), sim_model)
        large = run_esst(families.ring(6), 0, Position.at_node(3), sim_model)
        assert large.traversals > small.traversals

    def test_deterministic(self, sim_model):
        graph = families.ring(5)
        first = run_esst(graph, 0, Position.at_node(3), sim_model)
        second = run_esst(graph, 0, Position.at_node(3), sim_model)
        assert first.traversals == second.traversals
        assert first.final_phase == second.final_phase

    def test_unknown_start_or_token_rejected(self, sim_model):
        graph = families.ring(4)
        with pytest.raises(ExplorationError):
            run_esst(graph, 9, Position.at_node(2), sim_model)
        with pytest.raises(ExplorationError):
            run_esst(graph, 0, Position.at_node(9), sim_model)

    def test_missing_token_never_terminates_cleanly(self, sim_model):
        """Without a token the procedure keeps aborting phases (and our driver
        raises once the theoretical last phase is exceeded) — terminating
        exploration of anonymous graphs without help is impossible."""
        graph = families.ring(4)

        class NoSightings(TokenTracker):
            def record_sighting(self, at_node: bool) -> None:  # pragma: no cover
                pass

        # Simulate a token position that is never reported by placing the
        # token on a node but monkeypatching the tracker type via max_phase:
        # simplest honest check: a token inside an edge of a DIFFERENT
        # component is impossible (graphs are connected), so instead we cap
        # the phases artificially low and expect the error.
        with pytest.raises(ExplorationError):
            run_esst(graph, 0, Position.at_node(2), sim_model, max_phase=3)

    def test_result_dataclass_fields(self, sim_model):
        graph = families.ring(4)
        result = run_esst(graph, 0, Position.at_node(2), sim_model)
        assert isinstance(result, ESSTResult)
        assert result.traversals > 0
        assert isinstance(result.visited_nodes, frozenset)
