"""Tests of the scenario runner and the sweep executors."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.runtime import RunRecord, ScenarioSpec, SweepSpec, SweepResult
from repro.runtime.executors import (
    ProcessPoolExecutor,
    SerialExecutor,
    make_executor,
    run_sweep,
)
from repro.runtime.runner import build_graph, build_scheduler, run
from repro.sim.schedulers import GreedyAvoidingScheduler, RandomScheduler

#: A small grid that exercises both problems and a seeded scheduler but
#: still runs in well under a second per cell.
SMALL_GRID = SweepSpec(
    problems=("rendezvous", "baseline"),
    families=("ring", "erdos_renyi"),
    sizes=(4, 5),
    seeds=(0, 1, 2),
    schedulers=("round_robin",),
    label_sets=((1, 2),),
    max_traversals=500_000,
    name="test-grid",
)


class TestRun:
    def test_rendezvous_record(self):
        record = run(ScenarioSpec(family="ring", size=6, labels=(6, 11)))
        assert record.ok and record.reason == "meeting"
        assert record.graph_size == 6 and record.graph_edges == 6
        assert record.problem == "rendezvous"
        assert "meeting" in record.summary()

    def test_esst_record(self):
        record = run(ScenarioSpec(problem="esst", family="ring", size=4))
        extra = record.extra_dict
        assert record.ok
        assert extra["final_phase"] <= extra["phase_bound"]
        assert record.decisions == 0

    @pytest.mark.sgl
    def test_teams_record(self):
        record = run(
            ScenarioSpec(problem="teams", family="ring", size=4, team_size=2,
                         max_traversals=4_000_000)
        )
        assert record.ok
        assert record.extra_dict["team_labels"] == (3, 5)
        assert record.extra_dict["leader"] == 3

    def test_unknown_problem_rejected(self):
        with pytest.raises(ReproError):
            run(ScenarioSpec(problem="sorting"))

    def test_team_larger_than_graph_rejected(self):
        with pytest.raises(ReproError):
            run(ScenarioSpec(problem="teams", family="ring", size=3, team_size=5))

    def test_build_graph_uses_family_and_seed(self):
        spec = ScenarioSpec(family="erdos_renyi", size=7, seed=2)
        graph_a = build_graph(spec)
        graph_b = build_graph(spec)
        assert graph_a.size == 7
        assert sorted(graph_a.edges()) == sorted(graph_b.edges())

    def test_build_scheduler_params_and_seed_override(self):
        avoider = build_scheduler(
            ScenarioSpec(scheduler="avoider", scheduler_params={"patience": 5})
        )
        assert isinstance(avoider, GreedyAvoidingScheduler)
        seeded = build_scheduler(
            ScenarioSpec(scheduler="random", seed=1, scheduler_params={"seed": 9})
        )
        assert isinstance(seeded, RandomScheduler)

    def test_record_json_round_trip(self):
        record = run(ScenarioSpec(family="ring", size=4, labels=(1, 2)))
        revived = RunRecord.from_dict(record.to_dict())
        assert revived.spec == record.spec
        assert (revived.ok, revived.cost, revived.reason) == (
            record.ok,
            record.cost,
            record.reason,
        )


class TestExecutors:
    def test_serial_progress_callback(self):
        seen = []
        result = run_sweep(
            SweepSpec(sizes=(4, 6), label_sets=((1, 2),)),
            executor=SerialExecutor(),
            progress=lambda done, total, record: seen.append((done, total, record.ok)),
        )
        assert len(result) == 2
        assert seen == [(1, 2, True), (2, 2, True)]

    def test_serial_and_process_pool_results_identical(self):
        serial = run_sweep(SMALL_GRID, executor=SerialExecutor())
        pooled = run_sweep(SMALL_GRID, executor=ProcessPoolExecutor(max_workers=2))
        assert len(serial) == len(pooled) == len(SMALL_GRID)
        assert serial.records == pooled.records
        assert serial.all_ok

    def test_make_executor_picks_backend(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(2), ProcessPoolExecutor)

    def test_run_sweep_accepts_explicit_cells(self):
        cells = [
            ScenarioSpec(family="ring", size=4, labels=(1, 2)),
            ScenarioSpec(family="ring", size=6, labels=(1, 2), scheduler="avoider"),
        ]
        result = run_sweep(cells)
        assert result.sweep is None
        assert [record.scheduler for record in result] == ["round_robin", "avoider"]

    def test_sweep_result_helpers(self):
        result = run_sweep(SweepSpec(sizes=(4, 6), label_sets=((1, 2),)))
        assert result.all_ok and result.ok_fraction == 1.0
        assert result.max_cost() >= result.mean_cost() > 0
        ring_only = result.filter(family="ring")
        assert len(ring_only) == 2
        ratios = result.bound_ratios()
        assert len(ratios) == 2 and all(ratio >= 1 for ratio in ratios)
        table = result.table()
        assert "round_robin" in table and "meeting" in table

    def test_sweep_result_json_round_trip_keeps_sweep(self):
        result = run_sweep(SweepSpec(sizes=(4,), label_sets=((1, 2),)))
        revived = SweepResult.from_dict(result.to_dict())
        assert revived.sweep == result.sweep
        assert len(revived) == len(result)
        assert revived[0].spec == result[0].spec


class TestBudgetClamp:
    def test_returned_cost_never_exceeds_budget(self):
        # Regression: the engine used to notice the budget only after the
        # count had already passed it, reporting cost = budget + 1.
        # On a 12-ring the agents need 5 traversals to meet under round
        # robin; a budget of 3 is exhausted first.  The old check reported
        # cost 4 (budget + 1) here.
        record = run(
            ScenarioSpec(family="ring", size=12, labels=(6, 11), max_traversals=3)
        )
        assert not record.ok
        assert record.reason == "cost_limit"
        assert record.cost == 3
