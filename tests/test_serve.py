"""Tests of the HTTP result service (routing, ETag/304, sweeps, safety)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis.experiment_spec import (
    EXPERIMENTS,
    ExperimentSpec,
    aggregate_from_store,
    experiment_spec,
    run_experiment,
)
from repro.distrib.worker import Worker
from repro.runtime.executors import run_sweep
from repro.runtime.spec import SweepSpec
from repro.serve import ResultService, SweepJobs, job_id, make_server
from repro.store import FileStore, MemoryStore, merge_stores

from .test_experiments import golden

#: A tiny registered experiment so service tests do not pay for E1-E6.
TINY = "TINY-SERVE"
TINY_SWEEP = SweepSpec(sizes=(4, 6), seeds=(0, 1), name="tiny-serve")


@pytest.fixture()
def tiny(request):
    if TINY not in EXPERIMENTS:
        EXPERIMENTS.register(
            TINY,
            lambda **params: ExperimentSpec(
                name=TINY,
                title="tiny serve-test experiment",
                sweep=TINY_SWEEP,
                columns=("problem", "family", "n", "seed", "cost"),
                **params,
            ),
        )
    request.addfinalizer(lambda: EXPERIMENTS._entries.pop(TINY, None))
    return TINY


def body_of(response):
    return json.loads(response.body)


class TestRouting:
    def test_healthz(self):
        service = ResultService(MemoryStore())
        response = service.handle("GET", "/healthz")
        assert response.status == 200 and body_of(response) == {"ok": True}

    def test_index_lists_endpoints(self):
        response = ResultService(MemoryStore()).handle("GET", "/")
        payload = body_of(response)
        assert "GET /experiments" in payload["endpoints"]
        assert payload["sweeps_enabled"] is False

    def test_unknown_path_is_json_404(self):
        response = ResultService(MemoryStore()).handle("GET", "/nope")
        assert response.status == 404 and "error" in body_of(response)

    def test_wrong_method_is_405(self):
        service = ResultService(MemoryStore())
        assert service.handle("POST", "/healthz").status == 405
        assert service.handle("GET", "/sweeps").status == 405

    def test_experiments_listing(self):
        payload = body_of(ResultService(MemoryStore()).handle("GET", "/experiments"))
        names = {entry["name"] for entry in payload["experiments"]}
        assert {"E1", "E3", "F1", "bounds"} <= names
        assert all(entry["cells"] > 0 for entry in payload["experiments"])

    def test_unknown_experiment_is_404(self):
        response = ResultService(MemoryStore()).handle("GET", "/experiments/nope")
        assert response.status == 404

    def test_bad_format_is_400(self):
        response = ResultService(MemoryStore()).handle(
            "GET", "/experiments/E3", params={"format": "yaml"}
        )
        assert response.status == 400

    def test_metrics_counts_requests(self):
        service = ResultService(MemoryStore())
        service.handle("GET", "/healthz")
        service.handle("GET", "/nope")
        payload = body_of(service.handle("GET", "/metrics"))
        assert payload["requests_total"] == 3
        assert payload["errors"] == 1
        assert payload["requests"]["healthz"] == 1


class TestExperimentETag:
    def test_cold_executes_then_304_without_execution(self, tiny):
        service = ResultService(MemoryStore())
        cold = service.handle("GET", f"/experiments/{tiny}")
        assert cold.status == 200
        assert cold.headers["X-Repro-Executed"] == str(len(TINY_SWEEP))
        etag = cold.headers["ETag"]

        warm = service.handle(
            "GET", f"/experiments/{tiny}", headers={"If-None-Match": etag}
        )
        assert warm.status == 304 and warm.body == b""
        metrics = body_of(service.handle("GET", "/metrics"))
        assert metrics["etag_not_modified"] == 1
        assert metrics["experiment_executions"] == len(TINY_SWEEP)

    def test_unconditional_warm_hit_serves_cache_with_zero_executed(self, tiny):
        service = ResultService(MemoryStore())
        cold = service.handle("GET", f"/experiments/{tiny}")
        warm = service.handle("GET", f"/experiments/{tiny}")
        assert warm.status == 200 and warm.body == cold.body
        assert warm.headers["X-Repro-Executed"] == "0"
        assert body_of(service.handle("GET", "/metrics"))["render_cache_hits"] == 1

    def test_etag_moves_when_the_store_grows(self, tiny):
        store = MemoryStore()
        service = ResultService(store)
        etag = service.handle("GET", f"/experiments/{tiny}").headers["ETag"]
        run_sweep(SweepSpec(sizes=(8,), name="more"), store=store)
        stale = service.handle(
            "GET", f"/experiments/{tiny}", headers={"If-None-Match": etag}
        )
        assert stale.status == 200
        assert stale.headers["ETag"] != etag

    def test_warm_store_cold_service_never_executes(self, tiny, tmp_path):
        with FileStore(tmp_path / "store") as store:
            run_sweep(TINY_SWEEP, store=store)
        with FileStore(tmp_path / "store") as store:
            service = ResultService(store)
            response = service.handle("GET", f"/experiments/{tiny}")
            assert response.status == 200
            assert response.headers["X-Repro-Executed"] == "0"
            assert (
                body_of(service.handle("GET", "/metrics"))["experiment_executions"]
                == 0
            )

    def test_markdown_bytes_match_golden_and_json_matches_cli_renderer(self):
        """The service serves byte-identical output to the offline pipeline."""
        store = MemoryStore()
        service = ResultService(store)
        response = service.handle("GET", "/experiments/E3")
        assert response.body.decode("utf-8") == golden("e3_full") + "\n"

        result = aggregate_from_store(experiment_spec("E3"), store)
        as_json = service.handle("GET", "/experiments/E3", params={"format": "json"})
        assert as_json.body.decode("utf-8") == result.render("json") + "\n"
        payload = json.loads(as_json.body)
        assert payload["experiment"] == "E3" and payload["rows"]


class TestRuns:
    @pytest.fixture(scope="class")
    def service(self):
        store = MemoryStore()
        run_sweep(SweepSpec(sizes=(4, 6, 8), seeds=(0, 1), name="r"), store=store)
        run_sweep(SweepSpec(problems=("esst",), sizes=(4, 5), name="r"), store=store)
        return ResultService(store)

    def test_listing_paginates_in_canonical_order(self, service):
        first = body_of(service.handle("GET", "/runs", params={"limit": "3"}))
        assert first["count"] == 3 and first["more"] is True
        rest = body_of(
            service.handle("GET", "/runs", params={"limit": "100", "offset": "3"})
        )
        assert rest["more"] is False
        keys = [r["key"] for r in first["runs"]] + [r["key"] for r in rest["runs"]]
        assert len(keys) == 8 == len(set(keys))
        everything = body_of(service.handle("GET", "/runs", params={"limit": "100"}))
        assert [r["key"] for r in everything["runs"]] == keys

    def test_filters(self, service):
        esst = body_of(service.handle("GET", "/runs", params={"problem": "esst"}))
        assert esst["count"] == 2
        sized = body_of(
            service.handle(
                "GET", "/runs", params={"n_min": "5", "n_max": "6", "problem": "rendezvous"}
            )
        )
        assert sized["count"] == 2
        assert all(5 <= r["n"] <= 6 for r in sized["runs"])

    def test_bad_paging_params_are_400(self, service):
        assert service.handle("GET", "/runs", params={"limit": "x"}).status == 400
        assert service.handle("GET", "/runs", params={"limit": "0"}).status == 400
        assert service.handle("GET", "/runs", params={"offset": "-1"}).status == 400

    def test_get_run_by_key_and_prefix(self, service):
        key = body_of(service.handle("GET", "/runs", params={"limit": "1"}))["runs"][0][
            "key"
        ]
        full = body_of(service.handle("GET", f"/runs/{key}"))
        assert full["key"] == key and full["spec"]["problem"] in ("esst", "rendezvous")
        assert body_of(service.handle("GET", f"/runs/{key[:12]}"))["key"] == key

    def test_missing_key_is_404(self, service):
        assert service.handle("GET", "/runs/feedfacefeedface").status == 404

    def test_ambiguous_prefix_is_400(self, service):
        keys = sorted(service.store.keys())
        prefix = next(
            (
                a[:length]
                for length in range(1, 64)
                for a, b in zip(keys, keys[1:])
                if a[:length] == b[:length]
            ),
            None,
        )
        if prefix is None:  # pragma: no cover - 8 hashes, no shared prefix
            pytest.skip("store keys share no prefix")
        response = service.handle("GET", f"/runs/{prefix}")
        assert response.status == 400 and "ambiguous" in body_of(response)["error"]


class TestSweepLifecycle:
    def test_post_drains_to_the_same_records_as_a_serial_sweep(self, tmp_path):
        store = FileStore(tmp_path / "store")
        service = ResultService(store, queue=str(tmp_path / "q"))
        sweep = {"sizes": [4, 6], "seeds": [0, 1]}

        accepted = service.handle(
            "POST", "/sweeps", body=json.dumps({"sweep": sweep, "unit_size": 2}).encode()
        )
        assert accepted.status == 202
        doc = body_of(accepted)
        jid = doc["job"]
        assert doc["units"] == 2 and doc["cells"] == 4
        assert accepted.headers["Location"] == f"/sweeps/{jid}/status"

        status = body_of(service.handle("GET", f"/sweeps/{jid}/status"))
        assert status["state"] == "pending"

        worker = Worker(str(tmp_path / "q"), worker_id="w0", poll=0.01)
        totals = worker.run()
        assert totals["units"] == 2

        status = body_of(service.handle("GET", f"/sweeps/{jid}/status"))
        assert status["state"] == "done"
        assert status["cells"]["executed"] == 4
        progress = body_of(service.handle("GET", f"/sweeps/{jid}/progress"))
        assert progress["fraction"] == 1.0

        merge_stores([str(worker.store_dir)], store)
        serial = run_sweep(SweepSpec.from_dict(sweep))
        for record in serial:
            assert store.get(record.spec.key()) == record
        store.close()

    def test_repost_is_idempotent(self, tmp_path):
        service = ResultService(MemoryStore(), queue=str(tmp_path / "q"))
        payload = json.dumps({"sweep": {"sizes": [5], "seeds": [0, 1]}}).encode()
        first = body_of(service.handle("POST", "/sweeps", body=payload))
        second = body_of(service.handle("POST", "/sweeps", body=payload))
        assert first["job"] == second["job"]

    def test_fully_cached_sweep_is_born_done(self, tmp_path):
        store = MemoryStore()
        sweep = SweepSpec(sizes=(4,), seeds=(0,), name="cached")
        run_sweep(sweep, store=store)
        service = ResultService(store, queue=str(tmp_path / "q"))
        doc = body_of(
            service.handle("POST", "/sweeps", body=json.dumps(sweep.to_dict()).encode())
        )
        assert doc["units"] == 0 and doc["skipped_cached"] == 1
        status = body_of(service.handle("GET", f"/sweeps/{doc['job']}/status"))
        assert status["state"] == "done"

    def test_cancel_tombstones_and_workers_skip(self, tmp_path):
        service = ResultService(MemoryStore(), queue=str(tmp_path / "q"))
        doc = body_of(
            service.handle(
                "POST",
                "/sweeps",
                body=json.dumps({"sweep": {"sizes": [4, 6], "seeds": [0]}}).encode(),
            )
        )
        jid = doc["job"]
        report = body_of(service.handle("POST", f"/sweeps/{jid}/cancel"))
        assert report["cancelled"] == doc["units"]
        assert (
            body_of(service.handle("GET", f"/sweeps/{jid}/status"))["state"]
            == "cancelled"
        )
        totals = Worker(str(tmp_path / "q"), worker_id="w0", poll=0.01).run()
        assert totals["units"] == 0 and totals["executed"] == 0
        again = body_of(service.handle("POST", f"/sweeps/{jid}/cancel"))
        assert again["already_cancelled"] == doc["units"]

    def test_errors(self, tmp_path):
        without_queue = ResultService(MemoryStore())
        assert without_queue.handle("POST", "/sweeps", body=b"{}").status == 503
        assert without_queue.handle("GET", "/sweeps/abc/status").status == 503

        service = ResultService(MemoryStore(), queue=str(tmp_path / "q"))
        assert service.handle("POST", "/sweeps", body=b"not json").status == 400
        assert service.handle("POST", "/sweeps", body=b"[1]").status == 400
        bogus = json.dumps({"sweep": {"bogus_field": 1}}).encode()
        assert service.handle("POST", "/sweeps", body=bogus).status == 400
        assert service.handle("GET", "/sweeps/missing/status").status == 404
        assert service.handle("POST", "/sweeps/missing/cancel").status == 404

    def test_job_id_is_content_addressed(self):
        assert job_id(["u1", "u2"]) == job_id(["u1", "u2"])
        assert job_id(["u1", "u2"]) != job_id(["u2", "u1"])


class TestOverHTTP:
    """A few requests through a real socket — the plumbing, not the logic."""

    @pytest.fixture()
    def served(self, tiny, tmp_path):
        store = FileStore(tmp_path / "store")
        run_sweep(TINY_SWEEP, store=store)
        service = ResultService(store, queue=str(tmp_path / "q"))
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        store.close()

    def test_get_and_conditional_get(self, served, tiny):
        with urllib.request.urlopen(f"{served}/experiments/{tiny}") as response:
            assert response.status == 200
            etag = response.headers["ETag"]
            assert response.headers["X-Repro-Executed"] == "0"
            assert b"tiny serve-test experiment" in response.read()
        conditional = urllib.request.Request(
            f"{served}/experiments/{tiny}", headers={"If-None-Match": etag}
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(conditional)
        assert err.value.code == 304

    def test_post_sweep_and_poll_status(self, served):
        request = urllib.request.Request(
            f"{served}/sweeps",
            data=json.dumps({"sweep": {"sizes": [9], "seeds": [7]}}).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 202
            doc = json.load(response)
        with urllib.request.urlopen(f"{served}{doc['status_url']}") as response:
            assert json.load(response)["state"] == "pending"

    def test_404_carries_json_body(self, served):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{served}/bogus")
        assert err.value.code == 404
        assert "error" in json.load(err.value)


class TestReadWhileWrite:
    def test_concurrent_reads_during_appends_never_error(self, tmp_path):
        """GETs racing a writer appending to the same FileStore stay clean:
        no torn records, no stale-index failures, monotonically growing
        listings."""
        root = tmp_path / "store"
        with FileStore(root, writer="seed") as seeder:
            run_sweep(SweepSpec(sizes=(4,), seeds=(0,), name="seed"), store=seeder)

        service = ResultService(FileStore(root, writer="reader"))
        records = list(run_sweep(SweepSpec(sizes=(5, 6, 7), seeds=(0, 1), name="w")))
        failures = []
        counts = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                listing = service.handle("GET", "/runs", params={"limit": "100"})
                metrics = service.handle("GET", "/metrics")
                if listing.status != 200 or metrics.status != 200:
                    failures.append((listing.status, metrics.status))
                    return
                counts.append(json.loads(listing.body)["count"])

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        with FileStore(root, writer="appender") as writer:
            for record in records:
                writer.put(record)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)

        assert not failures
        assert counts and max(counts) <= 1 + len(records)
        final = service.handle("GET", "/runs", params={"limit": "100"})
        assert json.loads(final.body)["count"] == 1 + len(records)
        for record in records:
            fetched = service.handle("GET", f"/runs/{record.spec.key()}")
            assert fetched.status == 200
        service.store.close()


class TestSweepJobsDirect:
    def test_load_missing_job_raises(self, tmp_path):
        jobs = SweepJobs(tmp_path / "q")
        from repro.exceptions import QueueError

        with pytest.raises(QueueError, match="no sweep job"):
            jobs.load("beef")

    def test_in_flight_gauge(self, tmp_path):
        jobs = SweepJobs(tmp_path / "q")
        assert jobs.in_flight() == 0
        jobs.submit(SweepSpec(sizes=(4,), seeds=(0,), name="g"))
        assert jobs.in_flight() == 1
        Worker(str(tmp_path / "q"), worker_id="w0", poll=0.01).run()
        assert jobs.in_flight() == 0


class TestEventsEndpoint:
    def _drained_service(self, tmp_path):
        store = MemoryStore()
        service = ResultService(store, queue=str(tmp_path / "q"))
        sweep = {"sizes": [4, 6], "seeds": [0, 1]}
        body = json.dumps({"sweep": sweep, "unit_size": 2}).encode()
        jid = body_of(service.handle("POST", "/sweeps", body=body))["job"]
        Worker(str(tmp_path / "q"), worker_id="w0", poll=0.01).run()
        return service, jid

    def test_events_page_filters_and_etag(self, tmp_path):
        service, jid = self._drained_service(tmp_path)
        response = service.handle("GET", "/events")
        assert response.status == 200
        payload = body_of(response)
        types = {event["type"] for event in payload["events"]}
        assert {"job.submit", "sweep.dispatch", "unit.claim", "cell.done",
                "unit.done", "worker.heartbeat"} <= types
        assert payload["count"] == payload["total"] and not payload["more"]
        assert payload["dropped"] == 0
        submits = [e for e in payload["events"] if e["type"] == "job.submit"]
        assert [e["job"] for e in submits] == [jid]

        etag = response.headers["ETag"]
        again = service.handle("GET", "/events", headers={"if-none-match": etag})
        assert again.status == 304

        page = body_of(service.handle("GET", "/events", params={"limit": "3"}))
        assert page["count"] == 3 and page["more"] is True
        rest = body_of(
            service.handle(
                "GET", "/events", params={"limit": "1000", "offset": "3"}
            )
        )
        assert rest["count"] == page["total"] - 3

        cells = body_of(
            service.handle("GET", "/events", params={"type": "cell.done"})
        )
        assert {e["type"] for e in cells["events"]} == {"cell.done"}
        assert cells["total"] == 4

    def test_events_validates_parameters(self, tmp_path):
        service, _jid = self._drained_service(tmp_path)
        assert service.handle("GET", "/events", params={"limit": "0"}).status == 400
        assert service.handle("GET", "/events", params={"offset": "-1"}).status == 400
        assert service.handle("GET", "/events", params={"since": "noon"}).status == 400
        late = body_of(
            service.handle("GET", "/events", params={"since": "9999999999"})
        )
        assert late["total"] == 0

    def test_events_and_fleet_require_a_queue(self):
        service = ResultService(MemoryStore())
        assert service.handle("GET", "/events").status == 503
        assert service.handle("GET", "/fleet").status == 503

    def test_fleet_snapshot(self, tmp_path):
        service, _jid = self._drained_service(tmp_path)
        payload = body_of(service.handle("GET", "/fleet"))
        assert payload["queue"]["done"] == 2
        assert payload["remaining_cells"] == 0
        (worker,) = payload["workers"]
        assert worker["worker"] == "w0" and worker["stale"] is False

    def test_index_lists_observability_endpoints(self, tmp_path):
        service = ResultService(MemoryStore(), queue=str(tmp_path / "q"))
        endpoints = body_of(service.handle("GET", "/"))["endpoints"]
        assert any("GET /events" in e for e in endpoints)
        assert any("GET /fleet" in e for e in endpoints)
