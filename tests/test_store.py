"""Tests of the content-addressed result store (spec keys, backends, resume)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import ReproError, StoreCorruptionError, StoreError
from repro.runtime import ScenarioSpec, SweepSpec, spec_key
from repro.runtime.executors import ProcessPoolExecutor, run_sweep
from repro.runtime.records import RunRecord
from repro.runtime.runner import run
from repro.store import CachingRunner, FileStore, MemoryStore, open_store

#: A small, fast grid reused by most sweep tests (4 cells, trivial scenarios).
GRID = SweepSpec(sizes=(4, 6), seeds=(0, 1), name="store-tests")


class TestSpecKey:
    def test_stable_for_equal_specs(self):
        assert ScenarioSpec(size=8).key() == ScenarioSpec(size=8).key()

    def test_key_order_permutations_hash_identically(self):
        spec = ScenarioSpec(
            problem="teams", size=7, seed=3, team_size=3, scheduler_params={"patience": 4}
        )
        shuffled = dict(reversed(list(spec.to_dict().items())))
        assert ScenarioSpec.from_dict(shuffled).key() == spec.key()

    def test_differing_content_differs(self):
        base = ScenarioSpec()
        assert base.replace(seed=1).key() != base.key()
        assert base.replace(max_traversals=7).key() != base.key()
        assert base.replace(scheduler_params={"patience": 4}).key() != base.key()

    def test_name_is_presentation_only(self):
        base = ScenarioSpec()
        assert base.replace(name="e1-cell").key() == base.key()

    def test_key_version_participates(self, monkeypatch):
        from repro.runtime import spec as spec_module

        base_key = ScenarioSpec().key()
        monkeypatch.setattr(spec_module, "SPEC_KEY_VERSION", spec_module.SPEC_KEY_VERSION + 1)
        assert ScenarioSpec().key() != base_key

    def test_stable_across_processes(self):
        spec = ScenarioSpec(size=9, seed=2, scheduler="avoider", scheduler_params={"patience": 8})
        code = (
            "from repro.runtime import ScenarioSpec;"
            f"print(ScenarioSpec.from_json({spec.to_json()!r}).key())"
        )
        # The child must find the package even on a clean checkout where
        # repro is not installed and PYTHONPATH is unset.
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (package_root, env.get("PYTHONPATH")) if part
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True, env=env
        )
        assert out.stdout.strip() == spec.key()

    def test_module_function_matches_method(self):
        spec = ScenarioSpec(size=5)
        assert spec_key(spec) == spec.key()


class TestMemoryStore:
    def test_put_get_roundtrip(self):
        store = MemoryStore()
        record = run(ScenarioSpec(size=4))
        key = store.put(record)
        assert key == record.spec.key()
        assert store.get(key) is record
        assert store.get(record.spec) is record
        assert record.spec in store and key in store
        assert len(store) == 1 and store.keys() == (key,)

    def test_put_is_idempotent(self):
        store = MemoryStore()
        record = run(ScenarioSpec(size=4))
        store.put(record)
        store.put(record)
        assert len(store) == 1

    def test_miss_returns_none(self):
        assert MemoryStore().get(ScenarioSpec()) is None


class TestFileStore:
    def test_cache_hit_equals_fresh_run(self, tmp_path):
        spec = ScenarioSpec(
            problem="teams",
            family="ring",
            size=5,
            labels=(9, 4, 17),
            starts=(0, 2, 4),
            values=("a", {"x": 1}, ("b", "c")),
            dormant=(2,),
        )
        fresh = run(spec)
        with FileStore(tmp_path / "store") as store:
            store.put(fresh)
        # A different process would reopen the store and reparse the JSON.
        with FileStore(tmp_path / "store") as store:
            assert store.get(spec) == fresh

    def test_refuses_an_alien_directory(self, tmp_path):
        (tmp_path / "junk.txt").write_text("hello")
        with pytest.raises(StoreError):
            FileStore(tmp_path)

    def test_create_false_requires_existing_store(self, tmp_path):
        with pytest.raises(StoreError):
            FileStore(tmp_path / "missing", create=False)
        FileStore(tmp_path / "made").close()
        FileStore(tmp_path / "made", create=False).close()

    def test_index_is_rebuilt_when_deleted(self, tmp_path):
        with FileStore(tmp_path / "store") as store:
            run_sweep(GRID, store=store)
            keys = set(store.keys())
        (tmp_path / "store" / "index.jsonl").unlink()
        with FileStore(tmp_path / "store") as store:
            assert set(store.keys()) == keys

    def test_truncated_final_line_is_dropped_not_fatal(self, tmp_path):
        with FileStore(tmp_path / "store") as store:
            run_sweep(GRID, store=store)
            total = len(store)
        # Simulate a sweep killed mid-append: chop the tail of one shard and
        # drop the index so the shard is re-scanned.
        shard = sorted((tmp_path / "store" / "shards").glob("*.jsonl"))[0]
        shard.write_bytes(shard.read_bytes()[:-10])
        (tmp_path / "store" / "index.jsonl").unlink()
        with FileStore(tmp_path / "store") as store:
            assert len(store) == total - 1
            assert store.stats()["truncated_dropped"] >= 1

    def test_corrupted_middle_line_raises(self, tmp_path):
        with FileStore(tmp_path / "store") as store:
            record = run(ScenarioSpec(size=4))
            store.put(record)
            shard_name = record.spec.key()[:2]
        shard = tmp_path / "store" / "shards" / f"{shard_name}.jsonl"
        shard.write_text("{not json}\n" + shard.read_text())
        (tmp_path / "store" / "index.jsonl").unlink()
        with pytest.raises(StoreCorruptionError):
            FileStore(tmp_path / "store")

    def test_content_address_mismatch_is_corruption(self, tmp_path):
        with FileStore(tmp_path / "store") as store:
            record = run(ScenarioSpec(size=4))
            key = store.put(record)
        shard = tmp_path / "store" / "shards" / f"{key[:2]}.jsonl"
        entry = json.loads(shard.read_text())
        # Tamper with the spec: the stored record no longer hashes to its key.
        entry["record"]["spec"]["seed"] = entry["record"]["spec"]["seed"] + 1
        shard.write_text(json.dumps(entry) + "\n")
        store = FileStore(tmp_path / "store")
        with pytest.raises(StoreCorruptionError):
            store.get(key)

    def test_gc_salvages_and_compacts(self, tmp_path):
        with FileStore(tmp_path / "store") as store:
            run_sweep(GRID, store=store)
            total = len(store)
            some_shard = sorted((tmp_path / "store" / "shards").glob("*.jsonl"))[0]
        # Corrupt one line and duplicate another.
        text = some_shard.read_text()
        some_shard.write_text("{broken\n" + text + text)
        (tmp_path / "store" / "index.jsonl").unlink()
        store = FileStore(tmp_path / "store", salvage=True)  # tolerant open for repair
        report = store.gc()
        assert report["kept"] == total
        assert report["dropped_corrupt"] == 1
        assert report["dropped_duplicate"] >= 1
        # After gc the store opens and parses cleanly again.
        with FileStore(tmp_path / "store") as reopened:
            assert len(reopened) == total
            reopened.verify()

    def test_spec_key_version_mismatch_refuses(self, tmp_path, monkeypatch):
        FileStore(tmp_path / "store").close()
        meta = tmp_path / "store" / "store.meta.json"
        data = json.loads(meta.read_text())
        data["spec_key_version"] = data["spec_key_version"] + 1
        meta.write_text(json.dumps(data))
        with pytest.raises(StoreError):
            FileStore(tmp_path / "store")

    def test_open_store_helper(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        store = open_store()
        assert store.root.name == ".repro-store"
        store.close()


class TestRunSweepWithStore:
    def test_second_run_executes_zero_cells(self, tmp_path):
        store = FileStore(tmp_path / "store")
        first = run_sweep(GRID, store=store)
        assert (first.cache_hits, first.executed) == (0, len(GRID))
        second = run_sweep(GRID, store=store)
        assert (second.cache_hits, second.executed) == (len(GRID), 0)
        assert second.records == first.records
        assert second.table() == first.table()
        assert second.to_json() == first.to_json()

    def test_resume_false_reexecutes(self, tmp_path):
        store = FileStore(tmp_path / "store")
        run_sweep(GRID, store=store)
        again = run_sweep(GRID, store=store, resume=False)
        assert again.cache_hits == 0 and again.executed == len(GRID)

    def test_interrupted_sweep_resumes_identically(self, tmp_path):
        # "Kill" a sweep by only running a subset of the grid, then chopping
        # the final shard line (the in-flight cell of the real kill).
        half = SweepSpec(sizes=(4,), seeds=(0, 1), name="store-tests")
        with FileStore(tmp_path / "store") as store:
            run_sweep(half, store=store)
        shard = max(
            (tmp_path / "store" / "shards").glob("*.jsonl"), key=lambda p: p.stat().st_mtime
        )
        shard.write_bytes(shard.read_bytes()[:-7])
        (tmp_path / "store" / "index.jsonl").unlink()
        with FileStore(tmp_path / "store") as store:
            done_before = len(store)
            assert 0 < done_before < len(GRID)
            resumed = run_sweep(GRID, store=store)
        uninterrupted = run_sweep(GRID)
        assert resumed.cache_hits == done_before
        assert resumed.executed == len(GRID) - done_before
        assert resumed.records == uninterrupted.records
        assert resumed.table() == uninterrupted.table()

    def test_progress_reports_hits_then_runs(self, tmp_path):
        store = FileStore(tmp_path / "store")
        run_sweep(SweepSpec(sizes=(4,), seeds=(0, 1), name="store-tests"), store=store)
        events = []

        def progress(done, total, record, cached):
            events.append((done, total, record.seed, cached))

        run_sweep(GRID, store=store, progress=progress)
        assert [e[0] for e in events] == [1, 2, 3, 4]
        assert all(e[1] == len(GRID) for e in events)
        assert [e[3] for e in events] == [True, True, False, False]

    def test_three_argument_progress_still_works(self, tmp_path):
        events = []
        run_sweep(GRID, store=MemoryStore(), progress=lambda done, total, record: events.append(done))
        assert events == [1, 2, 3, 4]

    def test_store_is_written_incrementally(self, tmp_path):
        """Every record is persisted as it completes, not at sweep end."""
        store = FileStore(tmp_path / "store")
        seen = []

        def progress(done, total, record, cached):
            seen.append(len(FileStore(tmp_path / "store")._index))

        run_sweep(GRID, store=store, progress=progress)
        assert seen == [1, 2, 3, 4]

    def test_process_pool_with_store_matches_serial(self, tmp_path):
        serial_store = FileStore(tmp_path / "serial")
        pool_store = FileStore(tmp_path / "pool")
        serial = run_sweep(GRID, store=serial_store)
        pooled = run_sweep(GRID, executor=ProcessPoolExecutor(max_workers=2), store=pool_store)
        assert serial.records == pooled.records
        assert sorted(serial_store.keys()) == sorted(pool_store.keys())
        # And a serial resume on the pool-written store is all hits.
        resumed = run_sweep(GRID, store=pool_store)
        assert resumed.cache_hits == len(GRID)
        assert resumed.records == serial.records


class TestCachingRunner:
    def test_counts_hits_and_executions(self):
        runner = CachingRunner(MemoryStore())
        spec = ScenarioSpec(size=4)
        first = runner.run(spec)
        second = runner(spec)
        assert first == second
        assert (runner.hits, runner.executed) == (1, 1)


class TestQueryLayer:
    @pytest.fixture(scope="class")
    def populated(self):
        store = MemoryStore()
        run_sweep(SweepSpec(sizes=(4, 6, 8), seeds=(0, 1), name="q"), store=store)
        run_sweep(SweepSpec(problems=("esst",), sizes=(4, 5), name="q"), store=store)
        return store

    def test_query_by_problem(self, populated):
        assert len(populated.query(problem="esst")) == 2
        assert len(populated.query(problem="rendezvous")) == 6

    def test_query_by_n_range(self, populated):
        result = populated.query(problem="rendezvous", n_range=(4, 6))
        assert len(result) == 4
        assert all(4 <= record.graph_size <= 6 for record in result)

    def test_query_with_predicate_and_ok(self, populated):
        assert len(populated.query(ok=True)) == len(populated)
        assert len(populated.query(lambda r: r.seed == 1)) == 3

    def test_query_order_is_canonical(self, populated):
        result = populated.query()
        order = [
            (r.spec.problem, r.spec.family, r.graph_size, r.spec.seed) for r in result
        ]
        assert order == sorted(order)

    def test_query_result_renders_as_table(self, populated):
        table = populated.query(problem="esst").table()
        assert "esst" in table and table.count("\n") >= 3


class TestSpecCoverage:
    """The per-problem spec extensions that make new scenarios cacheable."""

    def test_esst_mid_edge_token(self):
        spec = ScenarioSpec(
            problem="esst", family="ring", size=5, token_edge=(0, 1), token_fraction="1/3"
        )
        record = run(spec)
        assert record.ok
        extra = record.extra_dict
        assert extra["token_node"] is None
        assert extra["token_edge"] == (0, 1)
        assert extra["token_fraction"] == "1/3"

    def test_esst_token_fraction_normalised_to_endpoint(self):
        record = run(ScenarioSpec(problem="esst", family="ring", size=5, token_edge=(1, 2), token_fraction="1"))
        assert record.extra_dict["token_node"] == 2
        assert "token_edge" not in record.extra_dict

    def test_token_node_and_edge_are_exclusive(self):
        with pytest.raises(ReproError):
            ScenarioSpec(problem="esst", token_node=1, token_edge=(0, 1)).validate()
        with pytest.raises(ReproError):
            ScenarioSpec(problem="esst", token_fraction="1/2").validate()

    def test_teams_values_and_dormant(self):
        spec = ScenarioSpec(
            problem="teams",
            family="ring",
            size=5,
            labels=(9, 4, 17),
            starts=(0, 2, 4),
            values=("a", "b", "c"),
            dormant=(1,),
        )
        record = run(spec)
        assert record.ok
        extra = record.extra_dict
        assert extra["dormant"] == (1,)
        expected = {"9": "a", "4": "b", "17": "c"}
        assert all(mapping == expected for mapping in extra["value_maps"].values())

    def test_values_length_checked(self):
        with pytest.raises(ReproError):
            ScenarioSpec(problem="teams", labels=(3, 5), values=("x",)).validate()
        with pytest.raises(ReproError):
            run(ScenarioSpec(problem="teams", family="ring", size=5, team_size=3, values=("x",)))

    def test_dormant_index_out_of_range(self):
        with pytest.raises(ReproError):
            run(ScenarioSpec(problem="teams", family="ring", size=5, team_size=2, dormant=(5,)))

    def test_mapping_values_freeze_and_round_trip(self):
        spec = ScenarioSpec(
            problem="teams",
            labels=(3, 5),
            values=({"b": 2, "a": 1}, ["x", "y"]),
        )
        assert spec.values == ((("a", 1), ("b", 2)), ("x", "y"))
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_json(spec.to_json()).key() == spec.key()

    def test_bounds_problem(self):
        record = run(ScenarioSpec(problem="bounds", family="path", size=8, labels=(64, 65), cost_model="paper"))
        extra = record.extra_dict
        assert record.ok and record.cost == extra["rv_bound"]
        assert extra["baseline_bound"] > extra["rv_bound"]

    def test_figures_problem(self):
        record = run(
            ScenarioSpec(problem="figures", family="ring", size=4, problem_params={"kind": "Q", "k": 3})
        )
        assert record.ok and record.cost > 0
        assert record.extra_dict["kind"] == "Q"
        assert "composition" in record.extra_dict


class TestRecordCanonicalisation:
    def test_json_round_trip_preserves_equality(self):
        for spec in (
            ScenarioSpec(size=4),
            ScenarioSpec(problem="esst", family="ring", size=5),
            ScenarioSpec(problem="teams", family="ring", size=5, team_size=2),
        ):
            record = run(spec)
            assert RunRecord.from_dict(json.loads(record.to_json())) == record


class TestPagination:
    @pytest.fixture(scope="class")
    def populated(self):
        store = MemoryStore()
        run_sweep(SweepSpec(sizes=(4, 6, 8), seeds=(0, 1), name="p"), store=store)
        return store

    def test_limit_offset_slice_the_canonical_order(self, populated):
        everything = [r.spec.key() for r in populated.query()]
        paged = []
        for offset in range(0, len(everything), 2):
            page = populated.query(limit=2, offset=offset)
            paged.extend(record.spec.key() for record in page)
        assert paged == everything

    def test_pages_are_stable_across_calls(self, populated):
        first = [r.spec.key() for r in populated.query(limit=3)]
        again = [r.spec.key() for r in populated.query(limit=3)]
        assert first == again and len(first) == 3

    def test_offset_beyond_end_is_empty(self, populated):
        assert len(populated.query(offset=100)) == 0
        assert len(populated.query(limit=5, offset=100)) == 0

    def test_limit_composes_with_filters(self, populated):
        result = populated.query(problem="rendezvous", n_range=(6, 8), limit=2)
        assert len(result) == 2
        assert all(6 <= record.graph_size <= 8 for record in result)

    def test_negative_paging_rejected(self, populated):
        with pytest.raises(ValueError):
            populated.query(limit=-1)
        with pytest.raises(ValueError):
            populated.query(offset=-1)

    def test_filestore_pagination_matches_memory(self, tmp_path):
        with FileStore(tmp_path / "store") as store:
            run_sweep(GRID, store=store)
            assert [r.spec.key() for r in store.query(limit=2, offset=1)] == [
                r.spec.key() for r in store.query()
            ][1:3]


class TestGenerationAndRefresh:
    def test_generation_is_deterministic_and_content_addressed(self, tmp_path):
        with FileStore(tmp_path / "a") as a, FileStore(tmp_path / "b") as b:
            empty = a.generation()
            assert empty == b.generation()
            run_sweep(GRID, store=a)
            grown = a.generation()
            assert grown != empty
            # Same records, different directory / insertion order → same stamp.
            run_sweep(SweepSpec(sizes=(6, 4), seeds=(1, 0), name="other"), store=b)
            assert b.generation() == grown

    def test_refresh_sees_a_concurrent_writers_appends(self, tmp_path):
        with FileStore(tmp_path / "store", writer="w1") as one:
            two = FileStore(tmp_path / "store", writer="w2")
            run_sweep(GRID, store=one)
            assert len(two) == 0  # stale handle: opened before the writes
            assert two.refresh() is True
            assert len(two) == len(GRID)
            assert two.generation() == one.generation()
            assert two.refresh() is False  # nothing new: a cheap stat no-op
            two.close()

    def test_own_appends_do_not_dirty_the_fingerprint(self, tmp_path):
        with FileStore(tmp_path / "store") as store:
            run_sweep(GRID, store=store)
            assert store.refresh() is False

    def test_opening_an_indexed_store_reads_no_shard_bytes(self, tmp_path, monkeypatch):
        with FileStore(tmp_path / "store") as store:
            run_sweep(GRID, store=store)

        def boom(self, shard):
            raise AssertionError(f"opened shard {shard} despite an intact index")

        monkeypatch.setattr(FileStore, "_load_shard", boom)
        with FileStore(tmp_path / "store", create=False) as store:
            assert len(store) == len(GRID)

    def test_keyed_query_parses_only_the_needed_shards(self, tmp_path):
        with FileStore(tmp_path / "store") as store:
            run_sweep(GRID, store=store)
            target = store.query().records[0].spec.key()
        with FileStore(tmp_path / "store", create=False) as store:
            parsed = []
            original = FileStore._load_shard

            def spy(self, shard):
                parsed.append(shard)
                return original(self, shard)

            with pytest.MonkeyPatch.context() as patcher:
                patcher.setattr(FileStore, "_load_shard", spy)
                result = store.query(keys=[target])
            assert len(result) == 1
            assert parsed == [store._index[target]]
