"""Test helpers: a minimal single-agent driver for walk generators.

Several tests need to execute a walk generator (a trajectory construction,
Procedure ESST, an agent program) against a known graph without involving the
asynchronous engine or an adversary.  :func:`drive_walk` is that driver: it
feeds observations to the generator, records the walk, and returns what the
generator returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.graphs.port_graph import PortLabeledGraph, edge_key
from repro.sim.actions import Move, Observation, Stop


@dataclass
class DrivenWalk:
    """Everything that happened while driving a walk generator."""

    nodes: List[int] = field(default_factory=list)
    ports: List[int] = field(default_factory=list)
    entry_ports: List[int] = field(default_factory=list)
    return_value: Any = None
    stopped_explicitly: bool = False

    @property
    def length(self) -> int:
        """Number of edge traversals performed."""
        return len(self.ports)

    @property
    def start(self) -> int:
        return self.nodes[0]

    @property
    def end(self) -> int:
        return self.nodes[-1]

    @property
    def traversed_edges(self) -> frozenset:
        return frozenset(
            edge_key(self.nodes[i], self.nodes[i + 1]) for i in range(len(self.ports))
        )


def drive_walk(
    graph: PortLabeledGraph,
    start: int,
    factory: Callable[[Observation], Any],
    max_moves: Optional[int] = None,
) -> DrivenWalk:
    """Execute a walk generator against ``graph`` starting at ``start``.

    ``factory(initial_observation)`` must return a generator that yields
    :class:`Move` / :class:`Stop` actions and receives observations.  The walk
    runs until the generator returns, yields ``Stop``, or ``max_moves`` edge
    traversals have been made (in which case the walk is truncated and
    ``return_value`` stays ``None``).
    """
    record = DrivenWalk(nodes=[start])
    current = start
    entry: Optional[int] = None
    traversals = 0

    def observe() -> Observation:
        return Observation(
            degree=graph.degree(current), entry_port=entry, traversals=traversals
        )

    program = factory(observe())
    try:
        action = next(program)
        while True:
            if isinstance(action, Stop):
                record.stopped_explicitly = True
                break
            if not isinstance(action, Move):
                raise AssertionError(f"unexpected action {action!r}")
            target, entry_port = graph.traverse(current, action.port)
            record.ports.append(action.port)
            record.entry_ports.append(entry_port)
            record.nodes.append(target)
            current = target
            entry = entry_port
            traversals += 1
            if max_moves is not None and traversals >= max_moves:
                break
            action = program.send(observe())
    except StopIteration as stop:
        record.return_value = stop.value
    return record
