"""Tests of the graph families used in the experiments."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import families


class TestBasicFamilies:
    def test_ring(self):
        graph = families.ring(7)
        assert graph.size == 7
        assert graph.num_edges == 7
        assert graph.is_regular() and graph.max_degree() == 2

    def test_ring_too_small(self):
        with pytest.raises(GraphError):
            families.ring(2)

    def test_oriented_ring_ports_are_consistent(self):
        graph = families.oriented_ring(5)
        for node in graph.nodes():
            clockwise = graph.succ(node, 0)
            assert graph.succ(clockwise, 0) != node  # keeps going clockwise
        # Following port 0 repeatedly walks the whole ring.
        node, seen = 0, set()
        for _ in range(5):
            seen.add(node)
            node = graph.succ(node, 0)
        assert seen == set(range(5)) and node == 0

    def test_path(self):
        graph = families.path(6)
        assert graph.size == 6 and graph.num_edges == 5
        assert graph.diameter() == 5

    def test_star(self):
        graph = families.star(7)
        assert graph.degree(0) == 6
        assert all(graph.degree(v) == 1 for v in range(1, 7))

    def test_complete(self):
        graph = families.complete_graph(6)
        assert graph.num_edges == 15
        assert graph.is_regular() and graph.max_degree() == 5

    def test_binary_tree(self):
        graph = families.binary_tree(7)
        assert graph.size == 7 and graph.num_edges == 6
        assert graph.degree(0) == 2

    def test_grid(self):
        graph = families.grid(3, 4)
        assert graph.size == 12
        assert graph.num_edges == 3 * 3 + 4 * 2  # horizontal + vertical

    def test_torus(self):
        graph = families.torus(3, 3)
        assert graph.size == 9
        assert graph.is_regular() and graph.max_degree() == 4

    def test_torus_too_small(self):
        with pytest.raises(GraphError):
            families.torus(2, 5)

    def test_hypercube(self):
        graph = families.hypercube(3)
        assert graph.size == 8
        assert graph.is_regular() and graph.max_degree() == 3
        assert graph.diameter() == 3

    def test_lollipop(self):
        graph = families.lollipop(4, 3)
        assert graph.size == 7
        assert graph.degree(graph.size - 1) == 1  # tip of the tail

    def test_barbell(self):
        graph = families.barbell(3, 2)
        assert graph.size == 3 + 1 + 3
        assert graph.num_edges == 3 + 3 + 2

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            families.lollipop(2, 1)
        with pytest.raises(GraphError):
            families.barbell(3, 0)
        with pytest.raises(GraphError):
            families.star(1)
        with pytest.raises(GraphError):
            families.hypercube(0)


class TestRandomFamilies:
    def test_random_connected_is_deterministic(self):
        a = families.random_connected(9, 0.3, rng_seed=5)
        b = families.random_connected(9, 0.3, rng_seed=5)
        assert a == b

    def test_random_connected_different_seeds_differ(self):
        a = families.random_connected(9, 0.3, rng_seed=5)
        b = families.random_connected(9, 0.3, rng_seed=6)
        assert a != b

    def test_random_connected_is_connected_for_zero_probability(self):
        graph = families.random_connected(8, 0.0, rng_seed=1)
        assert graph.num_edges == 7  # exactly a spanning tree

    def test_random_connected_probability_validation(self):
        with pytest.raises(GraphError):
            families.random_connected(5, 1.5)

    def test_random_regular(self):
        graph = families.random_regular(8, 3, rng_seed=0)
        assert graph.is_regular() and graph.max_degree() == 3

    def test_random_regular_parity_validation(self):
        with pytest.raises(GraphError):
            families.random_regular(7, 3, rng_seed=0)

    def test_random_regular_degree_validation(self):
        with pytest.raises(GraphError):
            families.random_regular(5, 5)

    def test_random_tree(self):
        graph = families.random_tree(10, rng_seed=3)
        assert graph.size == 10 and graph.num_edges == 9


class TestRegistry:
    @pytest.mark.parametrize("family", sorted(families.FAMILY_BUILDERS))
    def test_every_registered_family_builds(self, family):
        graph = families.named_family(family, 8, rng_seed=1)
        assert graph.size >= 2

    def test_unknown_family(self):
        with pytest.raises(GraphError):
            families.named_family("moebius", 8)
