"""Tests of the growth-rate fitting helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.fitting import classify_growth, fit_exponential, fit_power_law


class TestPowerLawFit:
    def test_exact_power_law_is_recovered(self):
        xs = [1, 2, 4, 8, 16]
        ys = [5 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.kind == "power"
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(5.0)
        assert fit.residual == pytest.approx(0.0, abs=1e-12)

    @given(
        degree=st.integers(min_value=1, max_value=6),
        constant=st.floats(min_value=0.5, max_value=100),
    )
    def test_recovers_any_polynomial_degree(self, degree, constant):
        xs = [2, 3, 5, 9, 17]
        ys = [constant * x**degree for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.slope == pytest.approx(degree, rel=1e-6)


class TestExponentialFit:
    def test_exact_exponential_is_recovered(self):
        xs = [1, 2, 3, 4, 5]
        ys = [3 * 2**x for x in xs]
        fit = fit_exponential(xs, ys)
        assert fit.kind == "exponential"
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(3.0)
        assert fit.residual == pytest.approx(0.0, abs=1e-12)


class TestClassification:
    def test_polynomial_data(self):
        xs = [2, 4, 8, 16, 32]
        assert classify_growth(xs, [x**4 for x in xs]) == "polynomial"

    def test_exponential_data(self):
        xs = [1, 2, 4, 8, 16]
        assert classify_growth(xs, [3**x for x in xs]) == "exponential"

    def test_flat_data_counts_as_polynomial(self):
        xs = [1, 2, 3, 4, 5]
        assert classify_growth(xs, [7, 8, 7, 8, 7]) == "polynomial"

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [1, -2, 3])
        with pytest.raises(ValueError):
            fit_exponential([0, 1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [1, 2])
