"""Tests of the port-labeled graph substrate."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, InvalidPortError
from repro.graphs import PortGraphBuilder, PortLabeledGraph, edge_key
from repro.graphs import families


def triangle() -> PortLabeledGraph:
    return PortGraphBuilder("triangle").add_edges([(0, 1), (1, 2), (2, 0)]).build()


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(3, 1) == (1, 3)
        assert edge_key(1, 3) == (1, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            edge_key(2, 2)


class TestBuilder:
    def test_builds_triangle(self):
        graph = triangle()
        assert graph.size == 3
        assert graph.num_edges == 3
        assert sorted(graph.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_ports_assigned_in_insertion_order(self):
        graph = triangle()
        # node 0: first edge (0,1) -> port 0, then (2,0) -> port 1.
        assert graph.succ(0, 0) == 1
        assert graph.succ(0, 1) == 2

    def test_chaining_returns_builder(self):
        builder = PortGraphBuilder()
        assert builder.add_node(0) is builder
        assert builder.add_edge(0, 1) is builder

    def test_duplicate_edge_rejected(self):
        builder = PortGraphBuilder().add_edge(0, 1)
        with pytest.raises(GraphError):
            builder.add_edge(1, 0)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            PortGraphBuilder().add_edge(4, 4)

    def test_disconnected_graph_rejected(self):
        builder = PortGraphBuilder().add_edge(0, 1).add_edge(2, 3)
        with pytest.raises(GraphError):
            builder.build()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            PortLabeledGraph({})


class TestValidation:
    def test_asymmetric_port_labels_rejected(self):
        # Edge {0,1}: port 0 at 0 says it enters 1 by port 0, but port 0 at 1
        # points back to 0 by port 1 -> inconsistent.
        adjacency = {0: [(1, 0)], 1: [(0, 1)]}
        with pytest.raises(GraphError):
            PortLabeledGraph(adjacency)

    def test_unknown_neighbour_rejected(self):
        adjacency = {0: [(7, 0)]}
        with pytest.raises(GraphError):
            PortLabeledGraph(adjacency)

    def test_port_out_of_range_rejected(self):
        adjacency = {0: [(1, 5)], 1: [(0, 0)]}
        with pytest.raises((GraphError, InvalidPortError)):
            PortLabeledGraph(adjacency)

    def test_multi_edge_rejected(self):
        adjacency = {0: [(1, 0), (1, 1)], 1: [(0, 0), (0, 1)]}
        with pytest.raises(GraphError):
            PortLabeledGraph(adjacency)


class TestNavigation:
    def test_succ_and_traverse_agree(self, ring6):
        for node in ring6.nodes():
            for port in range(ring6.degree(node)):
                target = ring6.succ(node, port)
                traversed, entry = ring6.traverse(node, port)
                assert traversed == target
                # Symmetry: going back through the entry port returns here.
                assert ring6.succ(target, entry) == node

    def test_traverse_invalid_port(self, ring6):
        with pytest.raises(InvalidPortError):
            ring6.traverse(0, 5)

    def test_unknown_node(self, ring6):
        with pytest.raises(GraphError):
            ring6.degree(99)
        with pytest.raises(GraphError):
            ring6.succ(99, 0)

    def test_port_towards(self, ring6):
        for key in ring6.edges():
            u, v = key
            assert ring6.succ(u, ring6.port_towards(u, v)) == v
            assert ring6.succ(v, ring6.port_towards(v, u)) == u

    def test_port_towards_non_neighbour(self, ring6):
        with pytest.raises(GraphError):
            ring6.port_towards(0, 3)

    def test_ports_of_edge(self, ring6):
        for key in ring6.edges():
            port_u, port_v = ring6.ports_of_edge(key)
            assert ring6.edge_endpoints_of_port(key[0], port_u) == key
            assert ring6.edge_endpoints_of_port(key[1], port_v) == key

    def test_neighbours_in_port_order(self):
        graph = triangle()
        assert graph.neighbours(0) == [graph.succ(0, 0), graph.succ(0, 1)]


class TestStructure:
    def test_len_and_contains(self, ring6):
        assert len(ring6) == 6
        assert 0 in ring6
        assert 17 not in ring6

    def test_degrees(self, ring6, path5):
        assert ring6.max_degree() == 2 and ring6.min_degree() == 2
        assert path5.max_degree() == 2 and path5.min_degree() == 1
        assert ring6.is_regular()
        assert not path5.is_regular()

    def test_shortest_paths_and_diameter(self, ring6, path5):
        distances = ring6.shortest_path_lengths(0)
        assert distances[3] == 3
        assert ring6.diameter() == 3
        assert path5.diameter() == 4

    def test_equality_and_hash(self):
        a = triangle()
        b = triangle()
        assert a == b
        assert hash(a) == hash(b)
        assert a != families.ring(4)

    def test_relabeled_preserves_structure(self, ring6):
        mapping = {v: v + 100 for v in ring6.nodes()}
        relabeled = ring6.relabeled(mapping)
        assert relabeled.size == ring6.size
        assert relabeled.num_edges == ring6.num_edges
        for v in ring6.nodes():
            for port in range(ring6.degree(v)):
                assert relabeled.succ(mapping[v], port) == mapping[ring6.succ(v, port)]

    def test_relabeled_requires_bijection(self, ring6):
        with pytest.raises(GraphError):
            ring6.relabeled({v: 0 for v in ring6.nodes()})
        with pytest.raises(GraphError):
            ring6.relabeled({0: 1})
