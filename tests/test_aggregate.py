"""Unit tests for the aggregation layer (rows, reducers, pipeline, footers)."""

from __future__ import annotations

import pytest

from repro.analysis.aggregate import (
    REDUCERS,
    apply_pipeline,
    evaluate_footers,
    group_by,
    pivot,
    reduce_values,
    resolve_field,
    rows_from_records,
)
from repro.exceptions import ReproError
from repro.runtime.records import RunRecord
from repro.runtime.spec import ScenarioSpec


def record(problem="rendezvous", family="ring", size=6, cost=10, ok=True, seed=0,
           scheduler="round_robin", extra=(), **spec_kwargs) -> RunRecord:
    """A synthetic record (no simulation involved)."""
    spec = ScenarioSpec(
        problem=problem, family=family, size=size, seed=seed, scheduler=scheduler,
        **spec_kwargs,
    )
    return RunRecord(
        spec=spec, ok=ok, cost=cost, reason="test", decisions=0,
        graph_name=f"{family}-{size}", graph_size=size, graph_edges=size, extra=extra,
    )


class TestReducers:
    def test_all_reducers(self):
        values = [4, 1, 3, 2]
        assert reduce_values("mean", values) == 2.5
        assert reduce_values("max", values) == 4
        assert reduce_values("min", values) == 1
        assert reduce_values("sum", values) == 10
        assert reduce_values("count", values) == 4
        assert reduce_values("first", values) == 4
        assert reduce_values("last", values) == 2

    def test_p95_nearest_rank(self):
        assert reduce_values("p95", list(range(1, 101))) == 95
        assert reduce_values("p95", [7]) == 7
        assert reduce_values("p95", [1, 2]) == 2

    def test_unknown_reducer_and_empty_group(self):
        with pytest.raises(ReproError, match="unknown reducer"):
            reduce_values("median", [1])
        with pytest.raises(ReproError, match="empty group"):
            reduce_values("mean", [])

    def test_registry_is_complete(self):
        assert {"mean", "max", "min", "sum", "count", "p95"} <= set(REDUCERS)


class TestRowsFromRecords:
    def test_resolution_order(self):
        rec = record(
            extra={"final_phase": 7},
            scheduler="avoider",
            scheduler_params={"patience": 64},
            team_size=3,
        )
        assert resolve_field(rec, "cost") == 10          # record attribute
        assert resolve_field(rec, "final_phase") == 7    # extra bag
        assert resolve_field(rec, "team_size") == 3      # spec field
        assert resolve_field(rec, "patience") == 64      # scheduler params
        assert resolve_field(rec, "nonexistent") is None

    def test_rename_pairs(self):
        rows = rows_from_records([record(cost=5)], ["family", ("measured", "cost")])
        assert rows == [{"family": "ring", "measured": 5}]

    def test_false_and_zero_values_survive(self):
        rows = rows_from_records([record(ok=False, cost=0)], [("met", "ok"), "cost"])
        assert rows == [{"met": False, "cost": 0}]


class TestGroupBy:
    ROWS = [
        {"family": "ring", "n": 4, "cost": 10},
        {"family": "ring", "n": 4, "cost": 30},
        {"family": "ring", "n": 6, "cost": 50},
        {"family": "path", "n": 4, "cost": 70},
    ]

    def test_mean_and_count(self):
        out = group_by(
            self.ROWS,
            ["family", "n"],
            {"mean_cost": ("mean", "cost"), "runs": ("count", None)},
        )
        assert out == [
            {"family": "ring", "n": 4, "mean_cost": 20.0, "runs": 2},
            {"family": "ring", "n": 6, "mean_cost": 50.0, "runs": 1},
            {"family": "path", "n": 4, "mean_cost": 70.0, "runs": 1},
        ]

    def test_mapping_style_aggregate(self):
        out = group_by(self.ROWS, ["family"], {"worst": {"reducer": "max", "column": "cost"}})
        assert out == [{"family": "ring", "worst": 50}, {"family": "path", "worst": 70}]


class TestPivot:
    def test_pivot_with_reducer(self):
        rows = [
            {"n": 4, "scheduler": "rr", "cost": 10},
            {"n": 4, "scheduler": "av", "cost": 20},
            {"n": 6, "scheduler": "rr", "cost": 30},
            {"n": 4, "scheduler": "rr", "cost": 50},
        ]
        out = pivot(rows, "n", "scheduler", "cost", reducer="mean")
        assert out == [
            {"n": 4, "av": 20.0, "rr": 30.0},
            {"n": 6, "av": None, "rr": 30.0},
        ]


class TestPipeline:
    def test_implicit_extract(self):
        rows = apply_pipeline([record(cost=3)], [])
        assert rows[0]["problem"] == "rendezvous" and rows[0]["cost"] == 3

    def test_derive_bit_length_item_map_const_when(self):
        records = [
            record(labels=(5, 6), scheduler="avoider", scheduler_params={"patience": 8}),
            record(labels=(16, 17)),
        ]
        pipeline = [
            {"op": "extract", "columns": ["labels", "scheduler", "patience", ["alg", "problem"]]},
            {"op": "derive", "kind": "item", "column": "label", "source": "labels", "index": 0},
            {"op": "derive", "kind": "bit_length", "column": "length", "source": "label"},
            {"op": "derive", "kind": "map", "column": "alg", "source": "alg",
             "mapping": {"rendezvous": "rv"}},
            {"op": "derive", "kind": "const", "column": "suite", "value": "podc"},
            {"op": "derive", "kind": "when", "column": "patience", "source": "patience",
             "equals": ["scheduler", "avoider"], "default": 0},
        ]
        rows = apply_pipeline(records, pipeline)
        assert [row["label"] for row in rows] == [5, 16]
        assert [row["length"] for row in rows] == [3, 5]
        assert all(row["alg"] == "rv" and row["suite"] == "podc" for row in rows)
        assert [row["patience"] for row in rows] == [8, 0]

    def test_derive_map_survives_json_stringified_keys(self):
        # A spec's ops are JSON-normalised, which stringifies mapping keys;
        # the lookup must still hit for non-string row values.
        import json

        op = json.loads(json.dumps(
            {"op": "derive", "kind": "map", "column": "size_class", "source": "n",
             "mapping": {4: "small", 6: "large"}}
        ))
        rows = apply_pipeline(
            [record(size=4), record(size=6)],
            [{"op": "extract", "columns": ["n"]}, op],
        )
        assert [row["size_class"] for row in rows] == ["small", "large"]

    def test_derive_ratio_against_baseline_row(self):
        records = [
            record(problem="rendezvous", size=4, cost=30),
            record(problem="baseline", size=4, cost=10),
            record(problem="rendezvous", size=6, cost=90),
            record(problem="baseline", size=6, cost=30),
        ]
        pipeline = [
            {"op": "extract", "columns": ["problem", "n", "cost"]},
            {"op": "derive", "kind": "ratio", "column": "vs_baseline", "source": "cost",
             "keys": ["n"], "baseline": ["problem", "baseline"]},
        ]
        rows = apply_pipeline(records, pipeline)
        assert [row["vs_baseline"] for row in rows] == [3.0, 1.0, 3.0, 1.0]

    def test_derive_fit_power_law_per_group(self):
        records = [
            record(family="ring", size=n, cost=n ** 3) for n in (2, 4, 8, 16)
        ] + [record(family="path", size=4, cost=1)]
        pipeline = [
            {"op": "extract", "columns": ["family", "n", "cost"]},
            {"op": "derive", "kind": "fit_power_law", "column": "exponent",
             "x": "n", "y": "cost", "group": ["family"]},
        ]
        rows = apply_pipeline(records, pipeline)
        ring = [row for row in rows if row["family"] == "ring"]
        assert all(abs(row["exponent"] - 3.0) < 1e-9 for row in ring)
        # Too few points in the path group: no exponent.
        assert [row["exponent"] for row in rows if row["family"] == "path"] == [None]

    def test_filter_sort_group_pivot_chain(self):
        records = [
            record(family=family, size=n, cost=cost, ok=ok)
            for family, n, cost, ok in [
                ("ring", 6, 30, True),
                ("ring", 4, 10, True),
                ("path", 4, 99, False),
                ("ring", 4, 20, True),
            ]
        ]
        pipeline = [
            {"op": "extract", "columns": ["family", "n", "cost", "ok"]},
            {"op": "filter", "where": {"ok": True}},
            {"op": "sort", "keys": ["n", "cost"]},
            {"op": "group_by", "keys": ["family", "n"],
             "aggregates": {"mean_cost": ["mean", "cost"]}},
            {"op": "pivot", "index": "family", "columns": "n", "values": "mean_cost"},
        ]
        rows = apply_pipeline(records, pipeline)
        assert rows == [{"family": "ring", "4": 15.0, "6": 30.0}]

    def test_unknown_op_and_unknown_derivation(self):
        with pytest.raises(ReproError, match="unknown pipeline op"):
            apply_pipeline([record()], [{"op": "transmogrify"}])
        # The error lists every kind, including the whole-list ones.
        with pytest.raises(ReproError, match="ratio") as error:
            apply_pipeline([record()], [{"op": "derive", "kind": "nope", "column": "x"}])
        assert "fit_power_law" in str(error.value)

    def test_pinned_bound_model_wins_over_live_override(self, sim_model):
        from repro.exploration.cost_model import PaperCostModel

        records = [record(problem="rendezvous", size=4, labels=(3, 4))]
        pipeline = [
            {"op": "extract", "columns": ["problem", "n", "labels"]},
            {"op": "derive", "kind": "item", "column": "label", "source": "labels"},
            {"op": "derive", "kind": "guaranteed_bound", "column": "bound",
             "problem": "problem", "size": "n", "label": "label", "model": "paper"},
        ]
        rows = apply_pipeline(records, pipeline, model=sim_model)
        assert rows[0]["bound"] == PaperCostModel().pi_bound(4, 2)

    def test_guaranteed_bound_uses_live_model_override(self, sim_model):
        records = [
            record(problem="rendezvous", size=4, labels=(3, 4)),
            record(problem="baseline", size=4, labels=(3, 4)),
        ]
        pipeline = [
            {"op": "extract", "columns": ["problem", "n", "labels"]},
            {"op": "derive", "kind": "item", "column": "label", "source": "labels"},
            {"op": "derive", "kind": "guaranteed_bound", "column": "bound",
             "problem": "problem", "size": "n", "label": "label"},
        ]
        rows = apply_pipeline(records, pipeline, model=sim_model)
        assert rows[0]["bound"] == sim_model.pi_bound(4, 2)
        assert rows[1]["bound"] == sim_model.baseline_trajectory_length(4, 3)


class TestFooters:
    ROWS = [
        {"n": n, "label": label, "poly": n * label ** 2, "expo": n * 3 ** label}
        for n in (2, 4, 8)
        for label in (1, 2, 4, 8, 16)
    ]

    def test_classify_growth_at_max(self):
        lines = evaluate_footers(
            self.ROWS,
            [{
                "kind": "classify_growth",
                "x": "label",
                "series": [["poly", "poly"], ["expo", "expo"]],
                "where": {"column": "n", "at": "max"},
                "template": "at n={where}: {growth}",
            }],
        )
        assert lines == ["at n=8: poly -> polynomial, expo -> exponential"]

    def test_power_law_at_first(self):
        lines = evaluate_footers(
            self.ROWS,
            [{
                "kind": "power_law",
                "x": "n",
                "y": "poly",
                "where": {"column": "label", "at": "first"},
                "template": "L={where}: ~ n^{slope:.1f}",
            }],
        )
        assert lines == ["L=1: ~ n^1.0"]

    def test_where_equals_and_too_few_points(self):
        lines = evaluate_footers(
            self.ROWS[:2],
            [{
                "kind": "power_law", "x": "n", "y": "poly",
                "where": {"column": "label", "equals": 1},
                "template": "never emitted",
            }],
        )
        assert lines == []  # a 1-point series declines instead of failing
