"""Shared fixtures and configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.exploration.cost_model import SimulationCostModel
from repro.exploration.uxs import PseudoRandomUXS
from repro.exploration.cost_model import CostModel
from repro.graphs import families

# Hypothesis: no deadline (the walks are CPU-bound and timing-sensitive on CI
# machines), a moderate number of examples, and no health-check noise for
# function-scoped fixtures.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--perfgate",
        action="store_true",
        default=False,
        help="run the perf-regression gate (tests marked 'perfgate'), which "
        "compares the newest BENCH_results.json session against the stored "
        "history and fails on a >1.5x cells/sec slowdown",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    # The perf gate compares wall-clock throughput across benchmark sessions,
    # so it only means something on a machine that has run the benchmarks —
    # opt in explicitly rather than flaking every plain `pytest` invocation.
    if config.getoption("--perfgate"):
        return
    skip = pytest.mark.skip(reason="perf-regression gate is opt-in: pass --perfgate")
    for item in items:
        if "perfgate" in item.keywords:
            item.add_marker(skip)


class TinyCostModel(CostModel):
    """A cost model with a very short exploration sequence (``P(k) = k + 2``).

    Used by structural tests that must *execute* nested trajectories end to
    end; the default simulation model's sequences would make that needlessly
    slow.  The tiny sequences are generally *not* integral, which is fine for
    structural (length / anchoring) assertions.
    """

    def __init__(self) -> None:
        super().__init__(
            PseudoRandomUXS(
                length_coefficient=1, length_exponent=1, length_offset=2, seed=7
            ),
            name="tiny",
        )


@pytest.fixture(scope="session")
def sim_model() -> SimulationCostModel:
    """The default simulation cost model (shared across the whole session)."""
    return SimulationCostModel()


@pytest.fixture(scope="session")
def tiny_model() -> TinyCostModel:
    """A cost model with very short exploration sequences (structural tests)."""
    return TinyCostModel()


@pytest.fixture(scope="session")
def ring6():
    """A 6-node ring."""
    return families.ring(6)


@pytest.fixture(scope="session")
def ring4():
    """A 4-node ring."""
    return families.ring(4)


@pytest.fixture(scope="session")
def oring6():
    """A consistently oriented 6-node ring (port 0 is clockwise everywhere)."""
    return families.oriented_ring(6)


@pytest.fixture(scope="session")
def path5():
    """A 5-node path."""
    return families.path(5)


@pytest.fixture(scope="session")
def small_er():
    """A small connected Erdős–Rényi graph (deterministic seed)."""
    return families.random_connected(7, 0.4, rng_seed=2)
