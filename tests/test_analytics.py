"""Tests of cross-run trace analytics: components, diffs, rollups, top."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.obs.analytics import (
    format_rollup,
    format_trace_diff,
    format_trace_top,
    load_traces,
    rollup,
    span_components,
    span_parent,
    trace_diff,
    trace_of,
    trace_top,
)
from repro.runtime import ScenarioSpec
from repro.runtime.runner import run
from repro.store import FileStore, MemoryStore


def _trace(spans):
    """A trace payload with the given {name: seconds} spans."""
    return {"spans": {name: {"seconds": s} for name, s in spans.items()}}


#: A realistic shape: run > engine.run > {bootstrap, decide, apply > ...}.
NESTED = _trace(
    {
        "run": 10.0,
        "engine.run": 8.0,
        "engine.bootstrap": 1.0,
        "scheduler.decide": 2.0,
        "engine.apply": 4.0,
        "engine.apply.sweep": 3.0,
        "engine.apply.index": 0.5,
    }
)


class TestSpanTree:
    def test_explicit_hierarchy_wins(self):
        present = NESTED["spans"]
        assert span_parent("engine.run", present) == "run"
        assert span_parent("engine.apply", present) == "engine.run"
        assert span_parent("engine.apply.sweep", present) == "engine.apply"
        assert span_parent("run", present) is None

    def test_dotted_prefix_fallback_then_root(self):
        present = {"run", "custom", "custom.inner"}
        assert span_parent("custom.inner", present) == "custom"
        assert span_parent("custom", present) == "run"
        assert span_parent("orphan", {"orphan"}) is None

    def test_components_partition_the_root_exactly(self):
        components = span_components(NESTED)
        # Leaves carry their seconds; internal spans their (self) residual.
        assert components["engine.bootstrap"] == 1.0
        assert components["engine.apply.sweep"] == 3.0
        assert components["engine.apply (self)"] == pytest.approx(0.5)
        assert components["engine.run (self)"] == pytest.approx(1.0)
        assert components["run (self)"] == pytest.approx(2.0)
        assert sum(components.values()) == pytest.approx(10.0)

    def test_negative_residuals_are_clamped(self):
        trace = _trace({"run": 1.0, "engine.run": 1.2})  # jittered child
        components = span_components(trace)
        assert components["run (self)"] == 0.0

    def test_rootless_trace_becomes_a_forest(self):
        trace = _trace({"engine.run": 2.0, "io": 1.0})
        components = span_components(trace)
        assert components == {"engine.run": 2.0, "io": 1.0}
        assert span_components({"spans": {}}) == {}


class TestTraceDiff:
    def test_attribution_is_complete_by_construction(self):
        slower = _trace(
            {
                "run": 14.0,
                "engine.run": 12.0,
                "engine.bootstrap": 1.0,
                "scheduler.decide": 2.0,
                "engine.apply": 8.0,
                "engine.apply.sweep": 7.0,
                "engine.apply.index": 0.5,
            }
        )
        diff = trace_diff(NESTED, slower)
        assert diff["delta"] == pytest.approx(4.0)
        # Acceptance: >= 90% of the wall-time delta lands on named spans.
        assert diff["attribution"] >= 0.9
        top = diff["components"][0]
        assert top["span"] == "engine.apply.sweep"
        assert top["delta"] == pytest.approx(4.0)
        assert top["share"] == pytest.approx(1.0)

    def test_zero_delta_is_not_a_division(self):
        diff = trace_diff(NESTED, NESTED)
        assert diff["delta"] == 0.0 and diff["attribution"] == 1.0
        rendered = format_trace_diff(diff)
        assert "run" in rendered and "100.0% attributed" in rendered

    def test_format_respects_limit(self):
        slower = _trace({"run": 12.0, "engine.run": 11.0})
        rendered = format_trace_diff(trace_diff(NESTED, slower), limit=2)
        body = [line for line in rendered.splitlines() if line and "->" not in line]
        assert len(body) == 4  # header + rule + 2 rows

    def test_diff_on_real_engine_traces(self):
        """Two genuinely traced runs: the diff attributes the measured delta."""
        records = [run(ScenarioSpec(size=size), trace=True) for size in (4, 16)]
        traces = [trace_of(record) for record in records]
        assert all(trace is not None for trace in traces)
        diff = trace_diff(*traces)
        assert abs(diff["attribution"] - 1.0) < 0.1


class TestRollup:
    def _store(self):
        store = MemoryStore()
        for size in (4, 4, 6):
            store.put(run(ScenarioSpec(size=size, seed=size), trace=True))
        return store

    def test_groups_by_problem_family_n(self):
        store = self._store()
        traced = load_traces(store)
        assert len(traced) == 2  # same spec twice dedups in the store
        rows = rollup(traced)
        assert [row["group"]["n"] for row in rows] == [4, 6]
        for row in rows:
            assert row["runs"] == 1
            assert row["seconds_mean"] > 0
            assert "engine.run" in row["spans"]
            assert row["outliers"] == []

    def test_outliers_flagged_against_the_group_median(self):
        traced = [
            ("k1", None, _trace({"run": 1.0})),
            ("k2", None, _trace({"run": 1.1})),
            ("k3", None, _trace({"run": 0.9})),
            ("k4", None, _trace({"run": 50.0})),
        ]
        rows = rollup(traced, group_by=())
        assert rows[0]["outliers"] == ["k4"]

    def test_events_dropped_totalled(self):
        traced = [
            ("k1", None, {**_trace({"run": 1.0}), "events_dropped": 3}),
            ("k2", None, {**_trace({"run": 1.0}), "events_dropped": 2}),
        ]
        rows = rollup(traced, group_by=())
        assert rows[0]["events_dropped"] == 5
        rendered = format_rollup(rows)
        assert "5 events dropped" in rendered

    def test_untraced_records_are_skipped(self):
        store = MemoryStore()
        store.put(run(ScenarioSpec(size=4)))
        assert load_traces(store) == []
        assert trace_of(run(ScenarioSpec(size=4))) is None


class TestTraceTop:
    def test_aggregates_components_without_double_counting(self):
        traced = [("k1", None, NESTED), ("k2", None, NESTED)]
        top = trace_top(traced)
        assert top["runs"] == 2
        assert top["total_seconds"] == pytest.approx(20.0)
        spans = {row["span"]: row for row in top["spans"]}
        # Components, not raw spans: engine.apply appears only as (self).
        assert "engine.apply" not in spans
        assert spans["engine.apply.sweep"]["seconds"] == pytest.approx(6.0)
        assert sum(row["seconds"] for row in top["spans"]) == pytest.approx(20.0)
        assert sum(row["share"] for row in top["spans"]) == pytest.approx(1.0)
        rendered = format_trace_top(top)
        assert "2 traced run(s)" in rendered

    def test_limit_keeps_the_heaviest(self):
        top = trace_top([("k", None, NESTED)], limit=1)
        assert [row["span"] for row in top["spans"]] == ["engine.apply.sweep"]


class TestTraceCli:
    def _traced_store(self, tmp_path) -> str:
        store_dir = str(tmp_path / "store")
        assert main(["sweep", "--sizes", "4", "6", "--seeds", "1", "--quiet",
                     "--trace", "--store", store_dir]) == 0
        return store_dir

    def test_trace_top_renders_the_store(self, tmp_path, capsys):
        store_dir = self._traced_store(tmp_path)
        capsys.readouterr()
        assert main(["trace", "top", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "traced run(s)" in out and "% of total" in out

    def test_trace_top_on_untraced_store_fails_cleanly(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["sweep", "--sizes", "4", "--seeds", "1", "--quiet",
                     "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(["trace", "top", "--store", store_dir]) == 1
        assert "no traced records" in capsys.readouterr().out

    def test_trace_diff_accepts_key_prefixes(self, tmp_path, capsys):
        store_dir = self._traced_store(tmp_path)
        with FileStore(store_dir, create=False) as store:
            keys = sorted(store.keys())
        capsys.readouterr()
        assert main(["trace", "diff", keys[0][:12], keys[1][:12],
                     "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "% of delta" in out and "attributed" in out

    def test_trace_diff_rejects_unknown_and_ambiguous_keys(self, tmp_path, capsys):
        store_dir = self._traced_store(tmp_path)
        with FileStore(store_dir, create=False) as store:
            keys = sorted(store.keys())
        shared = ""  # the longest common prefix is ambiguous by construction
        for a, b in zip(*keys[:2]):
            if a != b:
                break
            shared += a
        capsys.readouterr()
        assert main(["trace", "diff", "ffff", keys[0][:12],
                     "--store", store_dir]) == 2
        assert "no stored record" in capsys.readouterr().err
        if shared:
            assert main(["trace", "diff", shared, keys[1][:12],
                         "--store", store_dir]) == 2
            assert "ambiguous" in capsys.readouterr().err

    def test_trace_diff_requires_traced_records(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["sweep", "--sizes", "4", "6", "--seeds", "1", "--quiet",
                     "--store", store_dir]) == 0
        with FileStore(store_dir, create=False) as store:
            keys = sorted(store.keys())
        capsys.readouterr()
        assert main(["trace", "diff", keys[0], keys[1],
                     "--store", store_dir]) == 2
        assert "no trace" in capsys.readouterr().err
