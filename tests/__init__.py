"""Test package marker so ``tests.helpers`` resolves under top-level collection."""
