"""Tests of the distributed sweep fabric: queue, claims, worker, executor."""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.distrib import Dispatcher, QueueExecutor, Worker, WorkQueue, unit_id
from repro.exceptions import QueueError, ReproError
from repro.runtime import ScenarioSpec, SweepSpec
from repro.runtime.executors import make_executor, run_sweep
from repro.runtime.runner import run
from repro.store import FileStore, MemoryStore, merge_stores

#: Four trivial cells; the serial reference for every convergence assertion.
GRID = SweepSpec(sizes=(4, 6), seeds=(0, 1), name="distrib-tests")


def _queue(tmp_path, unit_size=2, sweep=GRID, store=None) -> WorkQueue:
    queue = WorkQueue(tmp_path / "queue", create=True)
    Dispatcher(queue, unit_size=unit_size).dispatch(sweep, store=store)
    return queue


def _shard_record_count(queue: WorkQueue) -> int:
    """Total records across all worker shards == total executions performed."""
    total = 0
    for shard_dir in queue.result_store_dirs():
        with FileStore(shard_dir, create=False, salvage=True) as store:
            total += len(store)
    return total


class TestUnitId:
    def test_content_keyed_and_order_sensitive(self):
        assert unit_id(["a", "b"]) == unit_id(["a", "b"])
        assert unit_id(["a", "b"]) != unit_id(["b", "a"])
        assert unit_id(["a"]) != unit_id(["a", "b"])


class TestDispatcher:
    def test_dispatch_partitions_and_is_idempotent(self, tmp_path):
        queue = _queue(tmp_path, unit_size=3)
        report = Dispatcher(queue, unit_size=3).dispatch(GRID)
        assert report["cells"] == 4 and report["skipped_cached"] == 0
        assert report["units"] == 2
        assert (report["new_units"], report["existing_units"]) == (0, 2)
        assert sorted(report["unit_ids"]) == queue.units()
        assert len(queue.units()) == 2
        sizes = sorted(len(queue.load_unit(uid)) for uid in queue.units())
        assert sizes == [1, 3]

    def test_dispatch_skips_cells_already_stored(self, tmp_path):
        store = MemoryStore()
        cells = list(GRID.cells())
        store.put(run(cells[0]))
        queue = WorkQueue(tmp_path / "queue", create=True)
        report = Dispatcher(queue, unit_size=1).dispatch(GRID, store=store)
        assert report["skipped_cached"] == 1
        assert report["new_units"] == 3

    def test_unit_round_trip_validates_content(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        unit = queue.load_unit(uid)
        assert unit.unit == uid
        assert tuple(spec.key() for spec in unit.specs) == unit.keys
        # Tampering with a cell breaks the content key, loudly.
        path = queue.unit_path(uid)
        path.write_text(path.read_text().replace('"seed":0', '"seed":9'))
        with pytest.raises(QueueError):
            queue.load_unit(uid)

    def test_queue_refuses_non_queue_directory(self, tmp_path):
        (tmp_path / "junk").mkdir()
        with pytest.raises(QueueError):
            WorkQueue(tmp_path / "junk")
        with pytest.raises(QueueError):
            WorkQueue(tmp_path / "missing")


class TestClaims:
    def test_fresh_claim_has_one_winner(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.try_claim(uid, "w1", ttl=60)
        assert not queue.try_claim(uid, "w2", ttl=60)

    def test_expired_claim_is_stolen(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.try_claim(uid, "dead", ttl=-1)  # already expired
        assert queue.try_claim(uid, "w2", ttl=60)
        assert queue.read_claim(uid)["worker"] == "w2"

    def test_own_claim_is_reclaimed_after_restart(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.try_claim(uid, "w1", ttl=3600)
        # Same worker id, new life: no need to wait out the old lease.
        assert queue.try_claim(uid, "w1", ttl=3600)
        assert not queue.try_claim(uid, "w2", ttl=60)

    def test_release_only_by_holder(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        queue.try_claim(uid, "w1", ttl=60)
        queue.release_claim(uid, "w2")
        assert queue.read_claim(uid)["worker"] == "w1"
        queue.release_claim(uid, "w1")
        assert queue.read_claim(uid) is None


class TestWorker:
    def test_single_worker_drains_to_the_serial_record_set(self, tmp_path):
        queue = _queue(tmp_path)
        totals = Worker(queue, worker_id="w1", lease_ttl=60).run()
        assert totals == {"units": 2, "total": 4, "cached": 0, "salvaged": 0, "executed": 4}
        assert all(queue.is_done(uid) for uid in queue.units())
        with FileStore(tmp_path / "merged") as merged:
            merge_stores(queue.result_store_dirs(), merged)
            serial = run_sweep(GRID)
            assert {r.spec.key() for r in serial.records} == set(merged.keys())
            for record in serial.records:
                assert merged.get(record.spec) == record

    def test_killed_worker_lease_expires_and_partial_shard_is_salvaged(self, tmp_path):
        """The crash-convergence story: steal the lease, salvage, converge."""
        queue = _queue(tmp_path)
        uids = queue.units()
        unit = queue.load_unit(uids[0])
        # Simulate a worker killed mid-unit: one cell executed and persisted
        # in its shard, the lease still on file but expired, no done marker.
        with FileStore(queue.results_root / "dead", create=True) as dead_store:
            dead_store.put(run(unit.specs[0]))
        assert queue.try_claim(uids[0], "dead", ttl=-1)

        totals = Worker(queue, worker_id="w2", lease_ttl=60, poll=0.05).run()
        assert totals["salvaged"] == 1
        assert totals["executed"] == 3
        done = queue.read_done(uids[0])
        assert done["worker"] == "w2" and done["salvaged"] == 1

        # Every cell executed exactly once across the whole fleet history.
        assert _shard_record_count(queue) == len(GRID)
        with FileStore(tmp_path / "merged") as merged:
            report = merge_stores(queue.result_store_dirs(), merged)
            assert report["duplicates"] == 0 and report["conflicts"] == []
            serial = run_sweep(GRID)
            assert {r.spec.key() for r in serial.records} == set(merged.keys())
            for record in serial.records:
                assert merged.get(record.spec) == record

    def test_worker_restart_reuses_its_own_partial_shard(self, tmp_path):
        queue = _queue(tmp_path)
        first = Worker(queue, worker_id="w1", lease_ttl=60, max_units=1).run()
        assert first["units"] == 1 and first["executed"] == 2
        # "Restart": same id drains the rest; its earlier records stay cached.
        second = Worker(queue, worker_id="w1", lease_ttl=60).run()
        assert second["executed"] == 2 and second["cached"] == 0
        assert _shard_record_count(queue) == len(GRID)

    def test_unit_done_between_scan_and_claim_is_not_rerun(self, tmp_path):
        queue = _queue(tmp_path)
        Worker(queue, worker_id="w1", lease_ttl=60).run()
        # A late worker arrives at a fully drained queue: nothing to do.
        totals = Worker(queue, worker_id="w2", lease_ttl=60).run()
        assert totals == {"units": 0, "total": 0, "cached": 0, "salvaged": 0, "executed": 0}

    def test_status_accounts_every_cell(self, tmp_path):
        queue = _queue(tmp_path)
        Worker(queue, worker_id="w1", lease_ttl=60).run()
        status = queue.status()
        assert status["units"] == status["done"] == 2
        assert status["cells"] == status["executed"] == 4
        assert status["salvaged"] == status["cached"] == 0
        assert status["steals"] == status["expired"] == 0


class TestLeaseObservability:
    """Steal/expiry provenance salvaged from claim and done files alone."""

    def test_expired_then_stolen_lease_is_counted(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.try_claim(uid, "dead", ttl=-1)
        # Expired but not yet stolen: the stale claim file is the evidence.
        status = queue.status()
        assert status["expired"] == 1 and status["steals"] == 0
        states = {entry["unit"]: entry for entry in queue.unit_states()}
        assert states[uid]["state"] == "pending"
        assert states[uid]["lease_expired"] is True

        assert queue.try_claim(uid, "w2", ttl=60)  # the steal
        claim = queue.read_claim(uid)
        assert claim["steals"] == 1 and claim["stolen_from"] == "dead"
        status = queue.status()
        assert status["steals"] == 1 and status["expired"] == 0
        states = {entry["unit"]: entry for entry in queue.unit_states()}
        assert states[uid]["state"] == "claimed" and states[uid]["steals"] == 1

    def test_steal_count_survives_into_the_done_marker(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.try_claim(uid, "dead", ttl=-1)
        Worker(queue, worker_id="w2", lease_ttl=60, poll=0.05).run()
        # The claim file is gone with the release; the done marker carries
        # the provenance, so status() totals it from durable files alone.
        assert queue.read_claim(uid) is None
        assert queue.read_done(uid)["steals"] == 1
        status = queue.status()
        assert status["done"] == 2 and status["steals"] == 1
        assert status["expired"] == 0
        states = {entry["unit"]: entry for entry in queue.unit_states()}
        assert states[uid]["steals"] == 1

    def test_reclaim_preserves_accumulated_steals(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.try_claim(uid, "dead", ttl=-1)
        assert queue.try_claim(uid, "w2", ttl=-1)  # steal #1, also expired
        assert queue.try_claim(uid, "w2", ttl=60)  # own reclaim: not a steal
        claim = queue.read_claim(uid)
        assert claim["steals"] == 1 and claim["stolen_from"] == "dead"
        # w2's reclaim installed a live 60s lease, so w3 cannot win it.
        assert not queue.try_claim(uid, "w3", ttl=60)

    def test_cli_status_prints_lease_counters(self, tmp_path, capsys):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.try_claim(uid, "dead", ttl=-1)
        Worker(queue, worker_id="w2", lease_ttl=60, poll=0.05).run()
        assert main(["queue", "status", "--queue", str(queue.root)]) == 0
        out = capsys.readouterr().out
        assert "leases: 1 stolen, 0 expired" in out
        assert main(["queue", "status", "--queue", str(queue.root), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["steals"] == 1 and status["expired"] == 0


class TestLeaseRenewal:
    """ROADMAP item 4 (long-unit half): heartbeats renew the live lease."""

    def test_holder_renews_and_extends_the_lease(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.try_claim(uid, "w1", ttl=5, now=100.0)
        assert queue.renew_claim(uid, "w1", ttl=5, now=104.0) is True
        claim = queue.read_claim(uid)
        assert claim["expires"] == 109.0
        assert claim["created"] == 100.0  # provenance, not a fresh claim
        # The renewed lease outlives the original TTL: no steal at t=107.
        assert not queue.try_claim(uid, "thief", ttl=5, now=107.0)
        assert queue.try_claim(uid, "thief", ttl=5, now=110.0)

    def test_non_holder_cannot_renew(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.renew_claim(uid, "w1", ttl=5) is False  # no claim at all
        assert queue.try_claim(uid, "w1", ttl=5, now=100.0)
        assert queue.renew_claim(uid, "w2", ttl=5, now=101.0) is False
        assert queue.read_claim(uid)["worker"] == "w1"

    def test_renewal_after_a_steal_is_refused(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.try_claim(uid, "w1", ttl=-1)  # expired immediately
        assert queue.try_claim(uid, "thief", ttl=60)  # the steal
        assert queue.renew_claim(uid, "w1", ttl=60) is False
        assert queue.read_claim(uid)["worker"] == "thief"

    def test_renewal_preserves_steal_provenance(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.try_claim(uid, "dead", ttl=-1)
        assert queue.try_claim(uid, "w2", ttl=60)
        assert queue.renew_claim(uid, "w2", ttl=60) is True
        claim = queue.read_claim(uid)
        assert claim["steals"] == 1 and claim["stolen_from"] == "dead"

    def test_worker_heartbeat_renews_mid_unit(self, tmp_path):
        """A unit longer than the lease TTL finishes under its first owner
        because every heartbeat renews; heartbeat_interval=0 renews on
        every cell."""
        queue = _queue(tmp_path, unit_size=4)
        worker = Worker(
            queue, worker_id="w1", lease_ttl=60, heartbeat_interval=0.0
        )
        totals = worker.run()
        assert totals["executed"] == 4
        renews = queue.journal().events(type="lease.renew")
        assert len(renews) >= 2  # unit start + at least one per-cell renewal
        assert all(e["worker"] == "w1" for e in renews)

    def test_renewal_does_not_depend_on_the_journal(self, tmp_path):
        queue = _queue(tmp_path, unit_size=4)
        renewed = []
        original = queue.renew_claim
        queue.renew_claim = lambda *a, **kw: (  # type: ignore[method-assign]
            renewed.append(a), original(*a, **kw)
        )[1]
        Worker(
            queue, worker_id="w1", lease_ttl=60,
            heartbeat_interval=0.0, journal=False,
        ).run()
        assert renewed  # liveness is not an observability option


class TestQueueExecutor:
    def test_matches_serial_run(self, tmp_path):
        serial = run_sweep(GRID)
        queued = run_sweep(
            GRID,
            executor=QueueExecutor(workers=2, queue_dir=tmp_path / "q", unit_size=1),
        )
        assert queued.records == serial.records
        # The explicit queue directory is kept for inspection.
        assert WorkQueue(tmp_path / "q").status()["done"] == 4

    def test_integrates_with_the_store(self, tmp_path):
        with FileStore(tmp_path / "store") as store:
            queued = run_sweep(GRID, executor=QueueExecutor(workers=2), store=store)
            assert queued.executed == 4 and queued.cache_hits == 0
            warm = run_sweep(GRID, store=store)
            assert warm.cache_hits == 4 and warm.executed == 0
            assert warm.records == queued.records

    def test_reused_queue_dir_ignores_previous_sweeps(self, tmp_path):
        """A kept queue directory accumulates sweeps; each run watches only
        its own units and returns only its own records."""
        first_sweep = SweepSpec(sizes=(4,), seeds=(0, 1), name="distrib-tests")
        second_sweep = SweepSpec(sizes=(6,), seeds=(0, 1), name="distrib-tests")
        executor = QueueExecutor(workers=1, queue_dir=tmp_path / "q", unit_size=2)
        run_sweep(first_sweep, executor=executor)
        events = []
        second = run_sweep(
            second_sweep,
            executor=executor,
            progress=lambda done, total, record: events.append((done, total)),
        )
        assert events == [(1, 2), (2, 2)]  # not inflated by the first sweep
        assert second.records == run_sweep(second_sweep).records

    def test_rejects_live_model_override(self):
        from repro.exploration.cost_model import SimulationCostModel

        with pytest.raises(ReproError):
            QueueExecutor(workers=1).map_specs(
                [ScenarioSpec(size=4)], model=SimulationCostModel()
            )

    def test_make_executor_kinds(self):
        from repro.runtime.executors import ProcessPoolExecutor, SerialExecutor

        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(3), ProcessPoolExecutor)
        assert isinstance(make_executor(2, kind="serial"), SerialExecutor)
        assert isinstance(make_executor(None, kind="pool"), ProcessPoolExecutor)
        queue_executor = make_executor(3, kind="queue", unit_size=2)
        assert isinstance(queue_executor, QueueExecutor)
        assert queue_executor.workers == 3 and queue_executor.unit_size == 2
        with pytest.raises(ReproError):
            make_executor(2, kind="warp")
        with pytest.raises(ReproError):
            make_executor(2, kind="pool", unit_size=2)


class TestCliSurface:
    def test_dispatch_worker_status_merge_lifecycle(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        serial_dir = str(tmp_path / "serial")
        merged_dir = str(tmp_path / "merged")

        assert main(["queue", "dispatch", "--sizes", "4", "6", "--seeds", "2",
                     "--queue", queue_dir, "--unit-size", "2"]) == 0
        assert "dispatched 4 cells" in capsys.readouterr().out
        # Queue not drained yet: status exits non-zero.
        assert main(["queue", "status", "--queue", queue_dir]) == 1
        capsys.readouterr()

        assert main(["worker", "--queue", queue_dir, "--worker-id", "w1",
                     "--lease-ttl", "60"]) == 0
        out = capsys.readouterr().out
        assert "worker w1: 2 units" in out and "4 executed" in out

        assert main(["queue", "status", "--queue", queue_dir]) == 0
        out = capsys.readouterr().out
        assert "2/2 units done" in out and "executed 4/4" in out

        assert main(["store", "merge", str(tmp_path / "q" / "results" / "w1"),
                     "--into", merged_dir]) == 0
        capsys.readouterr()
        assert main(["sweep", "--sizes", "4", "6", "--seeds", "2", "--quiet",
                     "--store", serial_dir]) == 0
        capsys.readouterr()

        assert main(["store", "ls", "--store", merged_dir, "--keys"]) == 0
        merged_keys = capsys.readouterr().out
        assert main(["store", "ls", "--store", serial_dir, "--keys"]) == 0
        serial_keys = capsys.readouterr().out
        assert merged_keys == serial_keys and len(merged_keys.splitlines()) == 4

    def test_sweep_executor_queue_flag(self, tmp_path, capsys):
        assert main(["sweep", "--sizes", "4", "--seeds", "2", "--quiet",
                     "--jobs", "2", "--executor", "queue",
                     "--queue", str(tmp_path / "q"), "--unit-size", "1",
                     "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "cached 0/2, executed 2" in out

    def test_worker_on_missing_queue_errors(self, tmp_path, capsys):
        assert main(["worker", "--queue", str(tmp_path / "missing")]) == 2
        assert "no work queue" in capsys.readouterr().err

    def test_dispatch_store_skip(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["sweep", "--sizes", "4", "--seeds", "2", "--quiet",
                     "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(["queue", "dispatch", "--sizes", "4", "6", "--seeds", "2",
                     "--queue", str(tmp_path / "q"), "--store", store_dir]) == 0
        assert "2 cells already stored" in capsys.readouterr().out


class TestCancellation:
    def test_cancel_unit_tombstones_pending_work(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.cancel_unit(uid) == "cancelled"
        assert queue.cancel_unit(uid) == "already_cancelled"
        status = queue.status()
        assert status["cancelled"] == 1 and status["done"] == 0

    def test_cancelled_units_are_skipped_by_workers(self, tmp_path):
        queue = _queue(tmp_path)
        for uid in queue.units():
            assert queue.cancel_unit(uid) == "cancelled"
        totals = Worker(queue, worker_id="w1", lease_ttl=60).run()
        assert totals["units"] == 0 and totals["executed"] == 0

    def test_finished_unit_reports_already_done(self, tmp_path):
        queue = _queue(tmp_path)
        Worker(queue, worker_id="w1", lease_ttl=60).run()
        for uid in queue.units():
            assert queue.cancel_unit(uid) == "already_done"
        status = queue.status()
        assert status["cancelled"] == 0 and status["done"] == 2

    def test_actively_claimed_unit_is_left_alone(self, tmp_path):
        queue = _queue(tmp_path)
        uid = queue.units()[0]
        assert queue.try_claim(uid, "w1", ttl=60) is True
        assert queue.cancel_unit(uid) == "claimed"
        states = {s["unit"]: s["state"] for s in queue.unit_states()}
        assert states[uid] == "claimed"

    def test_unit_states_reports_the_full_lifecycle(self, tmp_path):
        queue = _queue(tmp_path, unit_size=1)
        uids = queue.units()
        queue.try_claim(uids[0], "w1", ttl=60)
        queue.cancel_unit(uids[1])
        states = {s["unit"]: s for s in queue.unit_states()}
        assert states[uids[0]]["state"] == "claimed"
        assert states[uids[0]]["worker"] == "w1"
        assert states[uids[0]]["lease_remaining"] > 0
        assert states[uids[1]]["state"] == "cancelled"
        assert all(s["cells"] == 1 for s in states.values())
        pending = [s for s in states.values() if s["state"] == "pending"]
        assert len(pending) == len(uids) - 2


class TestQueueStatusJson:
    def test_json_output_and_drained_flag(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "queue")
        assert main(["queue", "dispatch", "--sizes", "4", "6", "--seeds", "2",
                     "--queue", queue_dir, "--unit-size", "2"]) == 0
        capsys.readouterr()

        assert main(["queue", "status", "--queue", queue_dir, "--json"]) == 1
        status = json.loads(capsys.readouterr().out)
        assert status["units"] == 2 and status["pending"] == 2
        assert status["drained"] is False

        assert main(["worker", "--queue", queue_dir, "--worker-id", "w1",
                     "--lease-ttl", "60", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["queue", "status", "--queue", queue_dir, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["done"] == 2 and status["drained"] is True

    def test_cancelled_units_count_as_drained(self, tmp_path, capsys):
        queue = _queue(tmp_path)
        for uid in queue.units():
            queue.cancel_unit(uid)
        queue_dir = str(tmp_path / "queue")
        assert main(["queue", "status", "--queue", queue_dir, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["cancelled"] == 2 and status["drained"] is True
        capsys.readouterr()
        assert main(["queue", "status", "--queue", queue_dir]) == 0
        assert "2 cancelled" in capsys.readouterr().out


class TestStatusHeartbeats:
    """Satellite: queue status reports per-worker heartbeat age and flags
    workers whose heartbeat is older than the lease TTL as stale."""

    def test_status_lists_heartbeats_and_flags_stale_workers(
        self, tmp_path, capsys
    ):
        queue = _queue(tmp_path)
        Worker(queue, worker_id="w1", lease_ttl=60).run()
        queue_dir = str(tmp_path / "queue")

        assert main(["queue", "status", "--queue", queue_dir]) == 0
        out = capsys.readouterr().out
        assert "worker w1: heartbeat" in out and "STALE" not in out

        assert main(["queue", "status", "--queue", queue_dir, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        (entry,) = status["heartbeats"]
        assert entry["worker"] == "w1" and entry["stale"] is False
        assert entry["heartbeat_age"] >= 0.0
        assert entry["last_event_ts"] >= entry["heartbeat_ts"]

        # Shrink the TTL below the heartbeat's age: the worker goes stale.
        time.sleep(0.05)
        assert main(["queue", "status", "--queue", queue_dir,
                     "--lease-ttl", "0.01"]) == 0
        assert "STALE" in capsys.readouterr().out

    def test_status_without_journal_stays_quiet(self, tmp_path, capsys):
        queue = _queue(tmp_path)
        Worker(queue, worker_id="w1", lease_ttl=60, journal=False).run()
        # Only dispatch journalled; no worker heartbeats to report.
        assert main(["queue", "status", "--queue", str(queue.root)]) == 0
        assert "heartbeat" not in capsys.readouterr().out
