"""Tests of agent labels and the modified-label transformation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import LabelError
from repro.core.labels import (
    binary_bits,
    first_difference,
    label_length,
    modified_label,
    modified_label_length,
    validate_label,
)


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -3, 2.5, "7", None, True])
    def test_rejects_non_positive_or_non_int(self, bad):
        with pytest.raises(LabelError):
            validate_label(bad)

    def test_accepts_positive_integers(self):
        assert validate_label(1) == 1
        assert validate_label(10**12) == 10**12


class TestBinaryBits:
    @pytest.mark.parametrize(
        "label, bits",
        [(1, (1,)), (2, (1, 0)), (5, (1, 0, 1)), (12, (1, 1, 0, 0))],
    )
    def test_examples(self, label, bits):
        assert binary_bits(label) == bits

    def test_length_matches(self):
        assert label_length(1) == 1
        assert label_length(255) == 8
        assert label_length(256) == 9

    @given(st.integers(min_value=1, max_value=10**9))
    def test_roundtrip(self, label):
        bits = binary_bits(label)
        assert bits[0] == 1  # no leading zeros
        assert int("".join(map(str, bits)), 2) == label


class TestModifiedLabel:
    @pytest.mark.parametrize(
        "label, code",
        [
            (1, (1, 1, 0, 1)),
            (2, (1, 1, 0, 0, 0, 1)),
            (5, (1, 1, 0, 0, 1, 1, 0, 1)),
        ],
    )
    def test_examples(self, label, code):
        assert modified_label(label) == code

    @given(st.integers(min_value=1, max_value=10**9))
    def test_length_is_2m_plus_2(self, label):
        assert len(modified_label(label)) == 2 * label_length(label) + 2
        assert modified_label_length(label) == len(modified_label(label))

    @given(st.integers(min_value=1, max_value=10**6))
    def test_ends_with_delimiter(self, label):
        assert modified_label(label)[-2:] == (0, 1)

    @given(
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=1, max_value=5000),
    )
    def test_never_a_prefix_of_another(self, a, b):
        """M(x) is never a prefix of M(y) for x != y (the key property of §3.1)."""
        code_a, code_b = modified_label(a), modified_label(b)
        if a == b:
            assert code_a == code_b
        else:
            assert code_a != code_b
            shorter, longer = sorted((code_a, code_b), key=len)
            assert longer[: len(shorter)] != shorter

    @given(
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=1, max_value=5000),
    )
    def test_first_difference_is_a_real_difference(self, a, b):
        if a == b:
            with pytest.raises(LabelError):
                first_difference(a, b)
            return
        position = first_difference(a, b)
        code_a, code_b = modified_label(a), modified_label(b)
        shorter = min(len(code_a), len(code_b))
        assert 1 < position <= shorter
        assert code_a[position - 1] != code_b[position - 1]
        assert code_a[: position - 1] == code_b[: position - 1]
