"""Tests of exact positions inside the embedding."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import SimulationError
from repro.sim.position import ONE, ZERO, Position


class TestConstruction:
    def test_at_node(self):
        position = Position.at_node(4)
        assert position.is_at_node and not position.is_inside_edge
        assert position.node == 4 and position.edge is None

    def test_on_edge_interior(self):
        position = Position.on_edge((1, 5), Fraction(1, 3))
        assert position.is_inside_edge and not position.is_at_node
        assert position.edge == (1, 5) and position.fraction == Fraction(1, 3)

    def test_endpoints_normalise_to_nodes(self):
        assert Position.on_edge((1, 5), Fraction(0)) == Position.at_node(1)
        assert Position.on_edge((1, 5), Fraction(1)) == Position.at_node(5)

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(SimulationError):
            Position.on_edge((1, 5), Fraction(3, 2))
        with pytest.raises(SimulationError):
            Position.on_edge((1, 5), Fraction(-1, 2))

    def test_equality_is_point_equality(self):
        a = Position.on_edge((0, 2), Fraction(1, 2))
        b = Position.on_edge((0, 2), Fraction(2, 4))
        assert a == b
        assert hash(a) == hash(b)


class TestFractionOn:
    def test_interior_point(self):
        position = Position.on_edge((1, 5), Fraction(1, 4))
        assert position.fraction_on((1, 5)) == Fraction(1, 4)
        assert position.fraction_on((0, 1)) is None

    def test_node_as_endpoint(self):
        position = Position.at_node(5)
        assert position.fraction_on((1, 5)) == ONE
        assert position.fraction_on((5, 9)) == ZERO
        assert position.fraction_on((0, 1)) is None

    def test_describe(self):
        assert "node 3" in Position.at_node(3).describe()
        assert "edge" in Position.on_edge((0, 1), Fraction(1, 2)).describe()
