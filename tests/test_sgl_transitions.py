"""Unit tests of the SGL state-transition rules, driven by hand-built meetings.

These tests exercise the §4 transition table of Algorithm SGL directly on the
controller (no engine, no graph), so every branch of the rule

* "heard of a smaller label → ghost",
* "met a non-explorer and heard of nothing smaller → explorer, token = the
  smallest-labelled non-explorer",
* "met only explorers → stay a traveller",

is covered deterministically, including the symmetric behaviour of two
travellers meeting each other.
"""

from __future__ import annotations

import pytest

from repro.sim.actions import AgentSnapshot, MeetingEvent
from repro.teams import EXPLORER, GHOST, SGLController, TRAVELLER


def snapshot(label: int, state: str, bag=None, bag_complete: bool = False,
             has_output: bool = False) -> AgentSnapshot:
    """Build the meeting snapshot of a fictitious SGL agent."""
    bag = bag if bag is not None else ((label, None),)
    return AgentSnapshot(
        name=f"sgl-{label}",
        label=label,
        status="active",
        public={
            "label": label,
            "state": state,
            "bag": tuple(sorted(bag)),
            "bag_complete": bag_complete,
            "has_output": has_output,
        },
    )


def meet(controller: SGLController, *others: AgentSnapshot, node=7) -> MeetingEvent:
    """Deliver a meeting between ``controller`` and the given snapshots."""
    own = AgentSnapshot(
        name=controller.name,
        label=controller.label,
        status="active",
        public=controller.public_snapshot(),
    )
    event = MeetingEvent(
        participants=(own,) + others,
        node=node,
        edge=None if node is not None else (0, 1),
        decision_index=1,
        total_traversals=1,
    )
    controller.on_meeting(event)
    return event


class TestTravellerTransitions:
    def test_smaller_label_in_a_bag_sends_to_ghost(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        meet(agent, snapshot(20, TRAVELLER, bag=((4, None), (20, None))))
        assert agent._pending_transition == GHOST

    def test_meeting_a_smaller_traveller_sends_to_ghost(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        meet(agent, snapshot(4, TRAVELLER))
        assert agent._pending_transition == GHOST

    def test_meeting_a_larger_traveller_makes_an_explorer(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        meet(agent, snapshot(15, TRAVELLER))
        assert agent._pending_transition == EXPLORER
        assert agent.token_label == 15

    def test_meeting_a_ghost_makes_an_explorer(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        meet(agent, snapshot(30, GHOST, bag=((30, None), (44, None))))
        assert agent._pending_transition == EXPLORER
        assert agent.token_label == 30

    def test_meeting_only_explorers_keeps_travelling(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        meet(agent, snapshot(15, EXPLORER), snapshot(22, EXPLORER))
        assert agent._pending_transition is None
        assert agent.state == TRAVELLER

    def test_token_is_the_smallest_non_explorer(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        meet(
            agent,
            snapshot(40, EXPLORER),
            snapshot(25, GHOST),
            snapshot(12, TRAVELLER),
        )
        assert agent._pending_transition == EXPLORER
        assert agent.token_label == 12

    def test_two_travellers_decide_symmetrically(self, sim_model):
        small = SGLController("sgl-4", 4, model=sim_model)
        big = SGLController("sgl-9", 9, model=sim_model)
        meet(small, snapshot(9, TRAVELLER))
        meet(big, snapshot(4, TRAVELLER))
        # The smaller label becomes the explorer and adopts the larger as its
        # token; the larger becomes a ghost (it heard of a smaller label).
        assert small._pending_transition == EXPLORER and small.token_label == 9
        assert big._pending_transition == GHOST

    def test_first_decision_is_not_overwritten_by_later_meetings(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        meet(agent, snapshot(15, TRAVELLER))
        assert agent._pending_transition == EXPLORER
        meet(agent, snapshot(2, TRAVELLER))
        # The transition decided at the first qualifying meeting stands...
        assert agent._pending_transition == EXPLORER
        # ...but the bag still grows.
        assert 2 in agent.bag


class TestBagsAndFlags:
    def test_bags_merge_at_every_meeting(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model, value="mine")
        meet(agent, snapshot(15, EXPLORER, bag=((15, "x"), (33, "y"))))
        assert agent.bag.labels() == (9, 15, 33)
        assert agent.public["bag"] == ((9, "mine"), (15, "x"), (33, "y"))

    def test_complete_flag_makes_a_ghost_output(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        meet(agent, snapshot(4, TRAVELLER))          # will become a ghost
        agent._become_ghost()
        assert agent.output is None
        meet(agent, snapshot(4, EXPLORER, bag=((4, None), (9, None)), bag_complete=True))
        assert agent.output == ((4, None), (9, None))
        assert agent.public["has_output"] is True

    def test_flag_without_ghost_state_does_not_output(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        meet(agent, snapshot(4, EXPLORER, bag=((4, None), (9, None)), bag_complete=True))
        # Still a traveller (pending ghost transition): no output yet — the
        # output happens once it has actually become a ghost.
        assert agent.output is None
        assert agent._flagged is True

    def test_token_sightings_are_counted(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        meet(agent, snapshot(15, TRAVELLER))
        assert agent.token_label == 15
        tracker = agent._token_tracker
        assert tracker.sightings == 0
        meet(agent, snapshot(15, GHOST))
        assert tracker.sightings == 1
        assert tracker.last_was_at_node is True
        meet(agent, snapshot(15, GHOST), node=None)
        assert tracker.sightings == 2
        assert tracker.last_was_at_node is False

    def test_meeting_the_token_with_output_is_remembered(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        meet(agent, snapshot(15, TRAVELLER))
        assert agent._token_has_output is False
        meet(agent, snapshot(15, GHOST, has_output=True))
        assert agent._token_has_output is True

    def test_meetings_with_no_other_participants_are_ignored(self, sim_model):
        agent = SGLController("sgl-9", 9, model=sim_model)
        own = AgentSnapshot(
            name=agent.name, label=9, status="active", public=agent.public_snapshot()
        )
        event = MeetingEvent(
            participants=(own,), node=3, edge=None, decision_index=0, total_traversals=0
        )
        agent.on_meeting(event)
        assert agent._pending_transition is None
        assert agent.bag.labels() == (9,)
