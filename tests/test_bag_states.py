"""Tests of the SGL bags and state constants."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import LabelError
from repro.teams.bag import Bag
from repro.teams.states import ALL_STATES, EXPLORER, GHOST, TRAVELLER


class TestStates:
    def test_constants_are_distinct(self):
        assert len({TRAVELLER, EXPLORER, GHOST}) == 3
        assert set(ALL_STATES) == {TRAVELLER, EXPLORER, GHOST}


class TestBag:
    def test_initialisation_and_contains(self):
        bag = Bag({5: "v"})
        assert 5 in bag and 7 not in bag
        assert len(bag) == 1
        assert bag.min_label() == 5
        assert bag.values() == {5: "v"}

    def test_add_and_merge_grow_monotonically(self):
        bag = Bag({5: None})
        grew = bag.merge([(7, "x"), (9, None)])
        assert grew
        assert bag.labels() == (5, 7, 9)
        grew_again = bag.merge([(7, "x")])
        assert not grew_again

    def test_merge_keeps_existing_values_but_fills_none(self):
        bag = Bag({5: None})
        bag.merge([(5, "late value")])
        assert bag.values()[5] == "late value"
        bag.merge([(5, "other")])
        assert bag.values()[5] == "late value"

    def test_snapshot_is_sorted_and_immutable(self):
        bag = Bag({9: "b", 5: "a"})
        snapshot = bag.snapshot()
        assert snapshot == ((5, "a"), (9, "b"))
        assert isinstance(snapshot, tuple)

    def test_invalid_labels_rejected(self):
        with pytest.raises(LabelError):
            Bag({0: None})
        bag = Bag({1: None})
        with pytest.raises(LabelError):
            bag.add(-2)
        with pytest.raises(LabelError):
            bag.add(True)

    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=20))
    def test_merge_is_idempotent_and_order_insensitive(self, labels):
        one = Bag({labels[0]: None})
        two = Bag({labels[0]: None})
        one.merge((label, None) for label in labels)
        for label in reversed(labels):
            two.merge([(label, None)])
        assert one.labels() == two.labels() == tuple(sorted(set(labels)))
        assert one.min_label() == min(labels)

    @given(
        st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=10),
        st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=10),
    )
    def test_merging_snapshots_is_a_union(self, first, second):
        a = Bag({label: None for label in first})
        b = Bag({label: None for label in second})
        a.merge(b.snapshot())
        assert set(a.labels()) == set(first) | set(second)
