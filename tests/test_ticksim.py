"""Tests of the tick-asynchronous subsystem: interleavers, faults, engine,
problem kinds, the sweep grid dimension, and cross-executor determinism."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.runtime import INTERLEAVERS, ScenarioSpec, SweepSpec
from repro.runtime.executors import (
    ProcessPoolExecutor,
    SerialExecutor,
    run_sweep,
)
from repro.runtime.runner import build_graph, run
from repro.store import MemoryStore
from repro.ticksim import (
    DataCollector,
    FaultPlan,
    TickAgent,
    TickEngine,
    TICKS_SCHEMA_VERSION,
)


def _spec(problem="tick_leader", **overrides):
    overrides.setdefault("family", "ring")
    overrides.setdefault("size", 6)
    return ScenarioSpec(problem=problem, **overrides)


# ----------------------------------------------------------------------
# interleavers
# ----------------------------------------------------------------------
class TestInterleavers:
    def test_synchronous_activates_everyone_in_id_order(self):
        model = INTERLEAVERS.create("synchronous")
        assert model.order(1, [0, 1, 2]) == [0, 1, 2]
        assert model.order(2, [0, 2]) == [0, 2]

    def test_round_robin_activates_one_per_tick(self):
        model = INTERLEAVERS.create("round_robin")
        assert [model.order(t, [0, 1, 2]) for t in (1, 2, 3, 4)] == (
            [[0], [1], [2], [0]]
        )

    def test_random_is_deterministic_in_the_seed(self):
        orders = [
            [INTERLEAVERS.create("random", seed=7).order(t, list(range(5))) for t in (1, 2)]
            for _ in range(2)
        ]
        assert orders[0] == orders[1]
        assert INTERLEAVERS.create("random", seed=8).order(1, list(range(5))) != orders[
            0
        ][0] or INTERLEAVERS.create("random", seed=8).order(2, list(range(5))) != orders[
            0
        ][1]

    def test_lag_starves_the_victim_for_patience_ticks(self):
        model = INTERLEAVERS.create("lag", patience=2)
        assert model.order(1, [0, 1, 2]) == [1, 2]
        assert model.order(2, [0, 1, 2]) == [1, 2]
        # Released last after the starvation window; then the victim rotates.
        assert model.order(3, [0, 1, 2]) == [1, 2, 0]
        assert model.order(4, [0, 1, 2]) == [0, 2]


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_fault_rate_draws_are_deterministic(self):
        plans = [
            FaultPlan.from_params(
                {"fault_rate": 0.5}, n_agents=8, seed=3, max_ticks=100
            )
            for _ in range(2)
        ]
        assert plans[0].crash_tick_of == plans[1].crash_tick_of
        assert plans[0].crash_tick_of  # 8 agents at 0.5: astronomically unlikely empty

    def test_crash_window_bounds_the_drawn_ticks(self):
        plan = FaultPlan.from_params(
            {"fault_rate": 1.0, "crash_window": 5}, n_agents=20, seed=0, max_ticks=1000
        )
        assert set(plan.crash_tick_of) == set(range(20))
        assert all(1 <= tick <= 5 for tick in plan.crash_tick_of.values())

    def test_crash_at_requires_string_keys(self):
        with pytest.raises(ReproError, match="string"):
            FaultPlan.from_params(
                {"crash_at": {2: 5}}, n_agents=4, seed=0, max_ticks=10
            )

    def test_crash_at_overrides_fault_rate_draws(self):
        plan = FaultPlan.from_params(
            {"fault_rate": 1.0, "crash_at": {"0": 99}},
            n_agents=2,
            seed=0,
            max_ticks=100,
        )
        assert plan.crash_tick_of[0] == 99
        assert plan.crashes_at_tick(0, 99) and not plan.crashes_at_tick(0, 98)

    def test_activation_limit_and_rate_validation(self):
        plan = FaultPlan.from_params(
            {"crash_after_activations": {"1": 3}}, n_agents=2, seed=0, max_ticks=10
        )
        assert not plan.crashes_on_activation(1, 2)
        assert plan.crashes_on_activation(1, 3)
        assert plan.faulty_agents == (1,)
        with pytest.raises(ReproError, match="fault_rate"):
            FaultPlan.from_params({"fault_rate": 1.5}, n_agents=2, seed=0, max_ticks=10)
        with pytest.raises(ReproError, match="crash_window"):
            FaultPlan.from_params(
                {"crash_window": 0}, n_agents=2, seed=0, max_ticks=10
            )

    def test_unknown_agent_in_crash_at_is_rejected(self):
        with pytest.raises(ReproError, match="names agent 9"):
            FaultPlan.from_params(
                {"crash_at": {"9": 1}}, n_agents=4, seed=0, max_ticks=10
            )


# ----------------------------------------------------------------------
# data collector
# ----------------------------------------------------------------------
class TestDataCollector:
    def test_payload_shape_and_cadence(self):
        collector = DataCollector(max_records=10, every=2)
        for tick in (1, 2, 3, 4):
            collector.collect(tick, [0], {0: {"node": tick}})
        payload = collector.payload()
        assert payload["schema"] == TICKS_SCHEMA_VERSION
        assert payload["every"] == 2
        assert [entry["tick"] for entry in payload["ticks"]] == [2, 4]
        assert payload["ticks"][0]["agents"] == {"0": {"node": 2}}
        assert payload["ticks_dropped"] == 0

    def test_cap_counts_dropped_snapshots(self):
        collector = DataCollector(max_records=2)
        for tick in (1, 2, 3, 4, 5):
            collector.collect(tick, [], {})
        payload = collector.payload()
        assert len(payload["ticks"]) == 2 and payload["ticks_dropped"] == 3


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class _Echo(TickAgent):
    """Broadcast once, then collect everything it hears."""

    def __init__(self, agent_id, node):
        super().__init__(agent_id, node)
        self.heard = []
        self.sent = False

    def on_activate(self, ctx):
        self.heard.extend(ctx.receive())
        if not self.sent:
            ctx.broadcast(("hello", self.id))
            self.sent = True


class TestTickEngine:
    def _engine(self, agents, interleaving="synchronous", max_ticks=50, **params):
        spec = _spec()
        graph = build_graph(spec)
        return TickEngine(
            graph,
            agents,
            interleaver=INTERLEAVERS.create(interleaving, seed=0, **params),
            faults=FaultPlan.from_params({}, n_agents=len(agents), seed=0, max_ticks=max_ticks),
            max_ticks=max_ticks,
        )

    def test_mail_accumulates_for_starved_agents(self):
        # Under "lag" agent 0 is starved for 10 ticks while its neighbours
        # broadcast; once released it must see *all* the mail at once.
        agents = [_Echo(index, index) for index in range(3)]
        engine = self._engine(agents, interleaving="lag", patience=10)
        engine.run()
        # Agents 1 and 2 each broadcast once; agent 0 sits between nodes
        # 1 and 5 on a 6-ring, so only agent 1's greeting reaches node 0.
        assert ("hello", 1) in agents[0].heard

    def test_halted_agents_quiesce_the_run(self):
        class Halter(TickAgent):
            def on_activate(self, ctx):
                ctx.halt()

        result = self._engine([Halter(0, 0), Halter(1, 1)]).run()
        assert result.reason == "quiescent"
        assert result.activations == 2

    def test_tick_limit_is_the_fallback_reason(self):
        class Spinner(TickAgent):
            def on_activate(self, ctx):
                pass

        result = self._engine([Spinner(0, 0)], max_ticks=7).run()
        assert result.reason == "tick_limit" and result.ticks == 7

    def test_crash_clears_the_inbox_and_stops_activation(self):
        agents = [_Echo(index, index) for index in range(2)]
        spec = _spec()
        graph = build_graph(spec)
        engine = TickEngine(
            graph,
            agents,
            interleaver=INTERLEAVERS.create("synchronous"),
            faults=FaultPlan.from_params(
                {"crash_at": {"1": 2}}, n_agents=2, seed=0, max_ticks=10
            ),
            max_ticks=10,
        )
        result = engine.run()
        assert result.crashed == (1,)
        assert not agents[1].alive and agents[1].inbox == []
        assert agents[1].heard == []  # crashed before it could drain tick-2 mail

    def test_duplicate_ids_and_empty_teams_are_rejected(self):
        spec = _spec()
        graph = build_graph(spec)
        with pytest.raises(ReproError, match="duplicate"):
            TickEngine(
                graph,
                [_Echo(0, 0), _Echo(0, 1)],
                interleaver=INTERLEAVERS.create("synchronous"),
                faults=FaultPlan.from_params({}, n_agents=2, seed=0, max_ticks=10),
            )
        with pytest.raises(ReproError, match="at least one"):
            TickEngine(
                graph,
                [],
                interleaver=INTERLEAVERS.create("synchronous"),
                faults=FaultPlan.from_params({}, n_agents=0, seed=0, max_ticks=10),
            )


# ----------------------------------------------------------------------
# problem kinds
# ----------------------------------------------------------------------
class TestTickProblems:
    def test_leader_election_reaches_consensus(self):
        record = run(_spec("tick_leader"))
        extra = record.extra_dict
        assert record.ok and extra["consensus"]
        # Highest default label on a 6-ring: 3 + 2*5.
        assert extra["leader"] == 13 and extra["leaders"] == 1
        assert extra["ticks"]["schema"] == TICKS_SCHEMA_VERSION
        assert len(extra["ticks"]["ticks"]) == record.cost

    def test_leader_crash_of_the_top_label_breaks_consensus(self):
        # Agent 5 holds the maximum label.  Crashed at tick 2 — after its
        # label started flooding — the survivors all agree on 13, but the
        # agent claiming it is dead: zero leaders, no consensus.
        record = run(
            _spec("tick_leader", problem_params={"crash_at": {"5": 2}})
        )
        extra = record.extra_dict
        assert not record.ok and not extra["consensus"]
        assert extra["leaders"] == 0 and extra["crashed"] == (5,)
        assert extra["agreed"]  # everyone alive agrees on the ghost's label

    def test_leader_crash_before_speaking_elects_the_runner_up(self):
        # Crashed at tick 1 the top label never enters the network; the
        # survivors elect the next-highest label instead.
        record = run(
            _spec("tick_leader", problem_params={"crash_at": {"5": 1}})
        )
        extra = record.extra_dict
        assert record.ok and extra["consensus"]
        assert extra["leader"] == 11 and extra["crashed"] == (5,)

    def test_gossip_covers_a_clean_ring(self):
        record = run(_spec("tick_gossip"))
        extra = record.extra_dict
        assert record.ok and extra["covered"]
        assert extra["informed"] == extra["alive"] == 6

    def test_gathering_tolerates_a_crash(self):
        record = run(
            _spec(
                "tick_gathering",
                seed=1,
                team_size=3,
                problem_params={"fault_rate": 0.25, "crash_window": 20, "max_ticks": 2000},
            )
        )
        extra = record.extra_dict
        assert extra["team_size"] == 3
        assert extra["alive"] + len(extra["crashed"]) == 3
        assert record.ok and extra["gathered"]

    def test_record_ticks_false_omits_the_payload(self):
        record = run(_spec("tick_leader", problem_params={"record_ticks": False}))
        assert record.extra_dict["ticks"] is None

    def test_fault_params_change_the_spec_key(self):
        # Fault injection is declarative, so faulty runs are separately
        # content-addressable: same scenario, different fault spec, new key.
        clean = _spec("tick_leader")
        faulty = _spec("tick_leader", problem_params={"fault_rate": 0.25})
        assert clean.key() != faulty.key()
        assert faulty.key() == _spec(
            "tick_leader", problem_params={"fault_rate": 0.25}
        ).key()

    def test_leader_label_validation(self):
        with pytest.raises(ReproError, match="one label per node"):
            run(_spec("tick_leader", labels=(1, 2)))
        with pytest.raises(ReproError, match="distinct"):
            run(_spec("tick_leader", labels=(1, 1, 2, 3, 4, 5)))


# ----------------------------------------------------------------------
# the sweep grid dimension
# ----------------------------------------------------------------------
class TestProblemParamSets:
    def test_grid_multiplies_and_round_trips(self):
        sweep = SweepSpec(
            problems=("tick_leader",),
            sizes=(4, 6),
            seeds=(0,),
            problem_param_sets=({}, {"fault_rate": 0.25}),
        )
        assert len(sweep) == 4
        cells = list(sweep.cells())
        assert len(cells) == 4
        assert {cell.problem_kwargs.get("fault_rate", 0.0) for cell in cells} == {
            0.0,
            0.25,
        }
        rebuilt = SweepSpec.from_json(sweep.to_json())
        assert [cell.key() for cell in rebuilt.cells()] == [
            cell.key() for cell in cells
        ]

    def test_default_param_set_changes_nothing(self):
        plain = SweepSpec(sizes=(4,), seeds=(0, 1))
        explicit = SweepSpec(sizes=(4,), seeds=(0, 1), problem_param_sets=((),))
        assert [cell.key() for cell in plain.cells()] == [
            cell.key() for cell in explicit.cells()
        ]

    def test_store_query_problem_is_a_prefix_match(self):
        store = MemoryStore()
        store.put(run(_spec("tick_leader", size=4)))
        store.put(run(_spec("tick_gossip", size=4)))
        store.put(run(ScenarioSpec(problem="esst", family="ring", size=4)))
        assert len(store.query(problem="tick")) == 2
        assert len(store.query(problem="tick_gossip")) == 1
        assert len(store.query(problem="esst")) == 1
        assert len(store.query(problem="es")) == 1


# ----------------------------------------------------------------------
# the T-series experiments
# ----------------------------------------------------------------------
class TestTickExperiments:
    def test_t_series_is_registered_and_valid(self):
        from repro.analysis.experiment_spec import experiment_spec

        for name, cells in (("T1", 20), ("T2", 30), ("T3", 20)):
            spec = experiment_spec(name)
            spec.validate()
            assert len(spec.cell_specs()) == cells

    def test_t1_renders_warm_from_the_store_without_executing(self):
        from repro.analysis.experiment_spec import (
            aggregate_from_store,
            run_experiment,
        )

        store = MemoryStore()
        cold = run_experiment("T1", store=store)
        warm = aggregate_from_store("T1", store)
        assert warm.render("json") == cold.render("json")
        fault_free = [row for row in warm.rows if row["fault_rate"] == 0.0]
        assert fault_free and all(row["consensus"] for row in fault_free)


# ----------------------------------------------------------------------
# satellite: cross-executor determinism
# ----------------------------------------------------------------------
class TestDeterminismAcrossExecutors:
    #: A grid that exercises interleaving, crashes and message drops at once.
    SWEEP = SweepSpec(
        problems=("tick_leader",),
        sizes=(4, 6),
        seeds=(0, 1),
        problem_param_sets=(
            {"interleaving": "random", "fault_rate": 0.25, "crash_window": 8, "max_ticks": 200},
        ),
        name="ticksim-determinism",
    )

    def _run(self, executor):
        return [record.to_json() for record in run_sweep(self.SWEEP, executor=executor)]

    def test_serial_pool_and_queue_records_are_byte_identical(self):
        serial = self._run(SerialExecutor())
        assert self._run(ProcessPoolExecutor(max_workers=2)) == serial
        from repro.distrib import QueueExecutor

        assert self._run(QueueExecutor(workers=2)) == serial
        # The payload includes the per-tick snapshots, not just the summary,
        # and the records come back in cell order under every executor.
        payloads = [json.loads(text) for text in serial]
        assert all(body["extra"]["ticks"]["ticks"] for body in payloads)
        assert [body["spec"] for body in payloads] == [
            cell.to_dict() for cell in self.SWEEP.cells()
        ]


# ----------------------------------------------------------------------
# satellite: trace degradation on the queue executor
# ----------------------------------------------------------------------
class TestTraceDegradation:
    def test_run_sweep_warns_and_runs_untraced(self):
        from repro.distrib import QueueExecutor

        with pytest.warns(RuntimeWarning, match="cannot trace"):
            result = run_sweep(
                SweepSpec(sizes=(4,), name="trace-degrade"),
                executor=QueueExecutor(workers=1),
                trace=True,
            )
        assert len(result) == 1
        assert all("trace" not in record.extra_dict for record in result)

    def test_direct_map_specs_trace_still_raises(self):
        from repro.distrib import QueueExecutor

        with pytest.raises(ReproError, match="cannot trace"):
            QueueExecutor(workers=1).map_specs(
                [ScenarioSpec(family="ring", size=4)], trace=True
            )
