"""Package-level tests: public API surface, exceptions, results."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    CostLimitExceeded,
    ExplorationError,
    GraphError,
    InvalidPortError,
    LabelError,
    ProtocolError,
    ReproError,
    SchedulerError,
    SimulationError,
)
from repro.sim.results import RunResult, StopReason


class TestPublicAPI:
    def test_version_and_subpackages(self):
        assert repro.__version__
        for name in ("graphs", "exploration", "core", "sim", "teams", "analysis"):
            assert hasattr(repro, name)

    def test_quickstart_from_the_package_docstring(self):
        from repro.graphs import families
        from repro.core import run_rendezvous

        result = run_rendezvous(families.ring(8), [(6, 0), (11, 4)])
        assert result.met

    @pytest.mark.parametrize(
        "module, names",
        [
            ("repro.graphs", ["PortLabeledGraph", "PortGraphBuilder", "families"]),
            ("repro.exploration", ["SimulationCostModel", "run_esst", "Tape"]),
            ("repro.core", ["run_rendezvous", "run_baseline_rendezvous", "modified_label"]),
            ("repro.sim", ["AsyncEngine", "AgentSpec", "RoundRobinScheduler"]),
            ("repro.teams", ["run_sgl", "solve_leader_election", "SGLController"]),
            ("repro.analysis", ["fit_power_law", "format_table", "experiments"]),
        ],
    )
    def test_documented_exports_exist(self, module, names):
        imported = __import__(module, fromlist=names)
        for name in names:
            assert hasattr(imported, name), f"{module}.{name} missing"


class TestExceptions:
    def test_hierarchy(self):
        for exc in (
            GraphError,
            InvalidPortError,
            LabelError,
            SimulationError,
            SchedulerError,
            CostLimitExceeded,
            ExplorationError,
            ProtocolError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(InvalidPortError, GraphError)
        assert issubclass(SchedulerError, SimulationError)
        assert issubclass(CostLimitExceeded, SimulationError)

    def test_cost_limit_carries_partial_result(self):
        exc = CostLimitExceeded("too long", partial_result="partial")
        assert exc.partial_result == "partial"


class TestRunResult:
    def _result(self, **overrides):
        base = dict(
            reason=StopReason.MEETING,
            met=True,
            meeting=None,
            meetings=[],
            total_traversals=10,
            traversals_by_agent={"a": 4, "b": 6},
            decisions=12,
        )
        base.update(overrides)
        return RunResult(**base)

    def test_cost_defaults_to_total_traversals(self):
        assert self._result().cost() == 10

    def test_cost_uses_output_cost_when_all_output(self):
        result = self._result(
            reason=StopReason.ALL_OUTPUT, met=False, output_cost=7
        )
        assert result.cost() == 7

    def test_succeeded_flag(self):
        assert self._result().succeeded
        assert not self._result(reason=StopReason.COST_LIMIT, met=False).succeeded

    def test_summary_contains_cost(self):
        assert "cost=10" in self._result().summary()
