"""Tests of the agent-controller abstractions."""

from __future__ import annotations

import pytest

from repro.sim.actions import Move, Observation, Stop
from repro.sim.agent import AgentController, FunctionController, StationaryController


class TestAgentController:
    def test_base_start_is_abstract(self):
        controller = AgentController("a", 5)
        with pytest.raises(NotImplementedError):
            controller.start(Observation(degree=2, entry_port=None))

    def test_defaults(self):
        controller = AgentController("a", 5)
        assert controller.name == "a"
        assert controller.label == 5
        assert controller.output is None
        assert not controller.has_output()
        assert controller.public_snapshot() == {}

    def test_public_snapshot_is_a_copy(self):
        controller = AgentController("a")
        controller.public["x"] = 1
        snapshot = controller.public_snapshot()
        snapshot["x"] = 2
        assert controller.public["x"] == 1

    def test_has_output_after_setting(self):
        controller = AgentController("a")
        controller.output = [1, 2]
        assert controller.has_output()


class TestFunctionController:
    def test_wraps_program_and_exposes_label(self):
        def program_factory(obs):
            def program(obs):
                yield Move(0)
                yield Stop()

            return program(obs)

        controller = FunctionController("walker", program_factory, label=9)
        assert controller.public["label"] == 9
        program = controller.start(Observation(degree=2, entry_port=None))
        assert next(program) == Move(0)


class TestStationaryController:
    def test_program_stops_immediately(self):
        controller = StationaryController("token", label=3)
        program = controller.start(Observation(degree=1, entry_port=None))
        with pytest.raises(StopIteration):
            next(program)
        assert controller.public["label"] == 3
