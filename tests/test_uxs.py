"""Tests of the exploration sequences and the walk ``R(k, v)``."""

from __future__ import annotations

import pytest

from repro.exceptions import ExplorationError
from repro.exploration.uxs import (
    ExplicitUXS,
    PseudoRandomUXS,
    first_covering_prefix,
    is_integral,
    next_port,
    walk_trajectory,
)
from repro.graphs import families


class TestNextPort:
    def test_basic_rule(self):
        assert next_port(1, 3, 4) == 0
        assert next_port(0, 0, 3) == 0
        assert next_port(2, 7, 5) == 4

    def test_none_entry_acts_as_zero(self):
        assert next_port(None, 5, 4) == 1

    def test_zero_degree_rejected(self):
        with pytest.raises(ExplorationError):
            next_port(0, 1, 0)


class TestPseudoRandomUXS:
    def test_length_polynomial(self):
        provider = PseudoRandomUXS(length_coefficient=3, length_exponent=2, length_offset=5)
        assert provider.length(1) == 8
        assert provider.length(4) == 53

    def test_terms_have_declared_length(self):
        provider = PseudoRandomUXS()
        for k in (1, 2, 5, 9):
            assert len(provider.terms(k)) == provider.length(k)

    def test_terms_are_deterministic_and_cached(self):
        provider = PseudoRandomUXS(seed=11)
        again = PseudoRandomUXS(seed=11)
        assert provider.terms(6) == again.terms(6)
        assert provider.terms(6) is provider.terms(6)  # cache returns same tuple

    def test_different_seeds_differ(self):
        assert PseudoRandomUXS(seed=1).terms(6) != PseudoRandomUXS(seed=2).terms(6)

    def test_terms_are_non_negative(self):
        provider = PseudoRandomUXS()
        assert all(x >= 0 for x in provider.terms(7))

    def test_invalid_parameters(self):
        with pytest.raises(ExplorationError):
            PseudoRandomUXS(length_coefficient=0)
        provider = PseudoRandomUXS()
        with pytest.raises(ExplorationError):
            provider.length(0)

    def test_describe_mentions_polynomial(self):
        assert "P(k)" in PseudoRandomUXS().describe()


class TestExplicitUXS:
    def test_returns_stored_sequences(self):
        provider = ExplicitUXS({2: [1, 0, 1]})
        assert provider.terms(2) == (1, 0, 1)
        assert provider.length(2) == 3

    def test_missing_parameter(self):
        provider = ExplicitUXS({2: [1]})
        with pytest.raises(ExplorationError):
            provider.terms(3)


class TestWalks:
    def test_walk_records_consistent_trajectory(self, ring6):
        provider = PseudoRandomUXS()
        result = walk_trajectory(ring6, 0, provider.terms(6))
        assert result.nodes[0] == 0
        assert result.length == provider.length(6)
        assert len(result.nodes) == result.length + 1
        # Every consecutive pair really is an edge of the graph.
        for a, b in zip(result.nodes, result.nodes[1:]):
            assert ring6.has_edge(a, b)
        # Entry ports let you walk back: spot-check the first step.
        first_target = result.nodes[1]
        assert ring6.succ(first_target, result.entry_ports[0]) == 0

    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: families.ring(8),
            lambda: families.path(8),
            lambda: families.complete_graph(6),
            lambda: families.lollipop(4, 4),
            lambda: families.random_connected(8, 0.3, rng_seed=3),
            lambda: families.binary_tree(7),
        ],
    )
    def test_simulation_model_sequences_are_integral(self, graph_builder, sim_model):
        """R(n, v) covers every edge on the families/sizes used in experiments."""
        graph = graph_builder()
        for start in (0, graph.size // 2):
            assert is_integral(graph, start, sim_model.uxs_terms(graph.size))
            assert is_integral(graph, start, sim_model.uxs_terms(2 * graph.size))

    def test_first_covering_prefix(self, ring6, sim_model):
        terms = sim_model.uxs_terms(6)
        prefix = first_covering_prefix(ring6, 0, terms)
        assert prefix is not None
        assert prefix <= len(terms)
        # The prefix really covers, one step less does not.
        assert is_integral(ring6, 0, terms[:prefix])
        assert not is_integral(ring6, 0, terms[: prefix - 1])

    def test_first_covering_prefix_can_fail(self, ring6):
        assert first_covering_prefix(ring6, 0, [0, 0]) is None

    def test_walk_respects_initial_entry_port(self, ring6):
        with_zero = walk_trajectory(ring6, 0, [0, 0, 0], initial_entry_port=None)
        with_one = walk_trajectory(ring6, 0, [0, 0, 0], initial_entry_port=1)
        assert with_zero.nodes != with_one.nodes
