"""Tests of the plain-text table renderer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_records, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [["alpha", 1], ["b", 23456]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[2] and "value" in lines[2]
        assert "alpha" in text and "23456" in text
        # All data lines have the same width structure (aligned columns).
        assert lines[3].startswith("-")

    def test_float_and_bool_rendering(self):
        text = format_table(["a", "b", "c"], [[1.23456, True, 0.000001]])
        assert "1.235" in text
        assert "yes" in text
        assert "1e-06" in text

    def test_rows_wider_than_headers(self):
        text = format_table(["x"], [["only", "extra"]])
        assert "extra" in text


class TestFormatRecords:
    def test_dataclass_records(self):
        @dataclass
        class Row:
            name: str
            cost: int

        text = format_records([Row("a", 10), Row("b", 20)], ["name", "cost"])
        assert "a" in text and "20" in text

    def test_dict_records_and_missing_fields(self):
        text = format_records([{"name": "a"}], ["name", "cost"])
        assert "a" in text
