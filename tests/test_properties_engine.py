"""Property-based tests of the execution engine and the graph substrate.

Hypothesis generates random connected graphs, random placements and random
walk scripts; the properties are the model invariants the rest of the library
relies on:

* the builder only ever produces valid port-labeled graphs;
* cost accounting is exact (total = sum over agents = number of completed
  traversals), whatever the interleaving;
* a meeting reported by the engine always involves agents whose positions
  coincide, and rendezvous runs stop at the first goal meeting;
* relabeling nodes (which agents cannot observe) never changes an execution.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import families
from repro.graphs.port_graph import PortGraphBuilder
from repro.sim import (
    AgentSpec,
    AsyncEngine,
    FunctionController,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.sim.actions import Move


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def random_connected_graph(draw):
    """A random connected simple graph built through the public builder."""
    n = draw(st.integers(min_value=3, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    probability = draw(st.sampled_from([0.0, 0.2, 0.5, 0.9]))
    return families.random_connected(n, probability, rng_seed=seed)


@st.composite
def walk_script(draw, max_length=12):
    """A list of port *choices* (taken modulo the degree when executed)."""
    return draw(
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=max_length)
    )


def scripted(name, script, label=None):
    """A controller that follows ``script`` (each entry modulo the degree)."""

    def factory(obs):
        def program(obs):
            for choice in script:
                obs = yield Move(choice % obs.degree)
            return obs

        return program(obs)

    return FunctionController(name, factory, label=label)


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
class TestGraphProperties:
    @given(graph=random_connected_graph())
    def test_generated_graphs_satisfy_the_port_model(self, graph):
        degree_sum = 0
        for node in graph.nodes():
            degree = graph.degree(node)
            degree_sum += degree
            neighbours = set()
            for port in range(degree):
                target, back = graph.traverse(node, port)
                # port symmetry: coming back through `back` returns here
                assert graph.traverse(target, back) == (node, port)
                neighbours.add(target)
            # simple graph: all neighbours distinct, no self-loop
            assert len(neighbours) == degree
            assert node not in neighbours
        assert degree_sum == 2 * graph.num_edges

    @given(graph=random_connected_graph(), data=st.data())
    def test_walks_stay_inside_the_graph(self, graph, data):
        start = data.draw(st.sampled_from(sorted(graph.nodes())))
        script = data.draw(walk_script())
        controller = scripted("w", script)
        engine = AsyncEngine(graph, [AgentSpec(controller, start)], RoundRobinScheduler())
        result = engine.run()
        assert result.total_traversals == len(script)


class TestCostAccounting:
    @given(
        graph=random_connected_graph(),
        data=st.data(),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30)
    def test_totals_match_per_agent_counts_under_any_interleaving(self, graph, data, seed):
        nodes = sorted(graph.nodes())
        start_a = data.draw(st.sampled_from(nodes))
        start_b = data.draw(st.sampled_from(nodes))
        script_a = data.draw(walk_script())
        script_b = data.draw(walk_script())
        engine = AsyncEngine(
            graph,
            [
                AgentSpec(scripted("a", script_a, label=1), start_a),
                AgentSpec(scripted("b", script_b, label=2), start_b),
            ],
            RandomScheduler(seed=seed),
        )
        result = engine.run()
        assert result.total_traversals == sum(result.traversals_by_agent.values())
        assert result.total_traversals == len(script_a) + len(script_b)
        assert result.traversals_by_agent == {"a": len(script_a), "b": len(script_b)}


class TestMeetingProperties:
    @given(
        graph=random_connected_graph(),
        data=st.data(),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30)
    def test_goal_meetings_end_the_run_and_are_sound(self, graph, data, seed):
        nodes = sorted(graph.nodes())
        start_a = data.draw(st.sampled_from(nodes))
        start_b = data.draw(st.sampled_from(nodes))
        script_a = data.draw(walk_script(max_length=20))
        script_b = data.draw(walk_script(max_length=20))
        engine = AsyncEngine(
            graph,
            [
                AgentSpec(scripted("a", script_a, label=1), start_a),
                AgentSpec(scripted("b", script_b, label=2), start_b),
            ],
            RandomScheduler(seed=seed),
            rendezvous=("a", "b"),
        )
        result = engine.run()
        if result.met:
            meeting = result.meeting
            # The meeting is the last event of the run and involves both agents.
            assert result.meetings[-1] is meeting
            assert set(meeting.names()) >= {"a", "b"}
            assert (meeting.node is None) != (meeting.edge is None)
            assert meeting.total_traversals <= len(script_a) + len(script_b)
        else:
            # No goal meeting: the run only ends once both scripts are exhausted.
            assert result.total_traversals == len(script_a) + len(script_b)
        # Starting at the same node must always be an immediate meeting.
        if start_a == start_b:
            assert result.met and result.total_traversals == 0

    @given(graph=random_connected_graph(), data=st.data(), offset=st.integers(1, 1000))
    @settings(max_examples=25)
    def test_executions_are_oblivious_to_node_identities(self, graph, data, offset):
        nodes = sorted(graph.nodes())
        start_a = data.draw(st.sampled_from(nodes))
        start_b = data.draw(st.sampled_from(nodes))
        script_a = data.draw(walk_script())
        script_b = data.draw(walk_script())

        def run(g, sa, sb):
            engine = AsyncEngine(
                g,
                [
                    AgentSpec(scripted("a", script_a, label=1), sa),
                    AgentSpec(scripted("b", script_b, label=2), sb),
                ],
                RoundRobinScheduler(),
                rendezvous=("a", "b"),
            )
            return engine.run()

        mapping = {v: v + offset for v in nodes}
        original = run(graph, start_a, start_b)
        relabeled = run(graph.relabeled(mapping), mapping[start_a], mapping[start_b])
        assert original.met == relabeled.met
        assert original.total_traversals == relabeled.total_traversals
        assert original.decisions == relabeled.decisions
