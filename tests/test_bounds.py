"""Tests of the analytic bound comparisons (core.bounds)."""

from __future__ import annotations

import pytest

from repro.core.bounds import BoundComparison, compare_bounds, growth_exponent_estimate
from repro.exploration.cost_model import PaperCostModel, SimulationCostModel


class TestCompareBounds:
    def test_grid_is_complete(self):
        comparisons = compare_bounds([2, 4], [1, 3], model=SimulationCostModel())
        assert len(comparisons) == 4
        assert {(c.n, c.label) for c in comparisons} == {(2, 1), (2, 3), (4, 1), (4, 3)}

    def test_bounds_are_positive_and_typed(self):
        comparisons = compare_bounds([3], [2], model=SimulationCostModel())
        comparison = comparisons[0]
        assert isinstance(comparison, BoundComparison)
        assert comparison.rv_bound > 0 and comparison.baseline_bound > 0
        assert comparison.label_length == 2
        assert comparison.improvement_factor == pytest.approx(
            comparison.baseline_bound / comparison.rv_bound
        )

    def test_default_model_is_the_paper_model(self):
        comparisons = compare_bounds([2], [1])
        paper = PaperCostModel()
        assert comparisons[0].rv_bound == paper.pi_bound(2, 1)

    def test_rv_bound_depends_only_on_label_length(self):
        """Π depends on |L|, not on L: labels 4..7 share the same guarantee."""
        comparisons = compare_bounds([3], [4, 5, 6, 7], model=SimulationCostModel())
        assert len({c.rv_bound for c in comparisons}) == 1

    def test_baseline_bound_explodes_with_the_label(self):
        comparisons = compare_bounds([3], [1, 2, 4, 8, 16], model=SimulationCostModel())
        baseline = [c.baseline_bound for c in comparisons]
        assert baseline == sorted(baseline)
        assert baseline[-1] > baseline[0] ** 4

    def test_for_large_labels_the_polynomial_bound_wins(self):
        """The crossover of Theorem 3.1: for long labels Π is (much) smaller."""
        model = SimulationCostModel()
        comparisons = compare_bounds([4], [256], model=model)
        assert comparisons[0].baseline_bound > comparisons[0].rv_bound


class TestGrowthExponent:
    def test_recovers_polynomial_degree(self):
        xs = [2, 4, 8, 16, 32]
        ys = [x**3 for x in xs]
        assert growth_exponent_estimate(xs, ys) == pytest.approx(3.0)

    def test_exponential_data_gives_growing_estimate(self):
        xs = [2, 4, 8, 16]
        ys = [2**x for x in xs]
        estimate = growth_exponent_estimate(xs, ys)
        assert estimate > 3  # far above any fixed small degree on this range

    def test_validation(self):
        with pytest.raises(ValueError):
            growth_exponent_estimate([1], [1])
        with pytest.raises(ValueError):
            growth_exponent_estimate([1, 2], [1])
        with pytest.raises(ValueError):
            growth_exponent_estimate([3, 3, 3], [1, 2, 3])
