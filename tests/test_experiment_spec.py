"""Tests of ExperimentSpec: round trips, execution, store-backed re-rendering."""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiment_spec import (
    EXPERIMENTS,
    ExperimentSpec,
    aggregate_from_store,
    experiment_spec,
    run_experiment,
)
from repro.analysis.render import TableData, render
from repro.exceptions import ReproError
from repro.runtime.spec import ScenarioSpec, SweepSpec
from repro.store import FileStore, MemoryStore


def quick_e3() -> ExperimentSpec:
    return experiment_spec("E3", sizes=(2, 4, 8), labels=(1, 2, 4))


class TestSpecRoundTrip:
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS.names()))
    def test_every_registered_spec_round_trips_through_json(self, name):
        spec = experiment_spec(name)
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_cells_survive_as_scenario_specs(self):
        spec = ExperimentSpec.from_json(quick_e3().to_json())
        cells = spec.cell_specs()
        assert all(isinstance(cell, ScenarioSpec) for cell in cells)
        assert len(cells) == 9

    def test_sweep_survives_as_sweep_spec(self):
        spec = ExperimentSpec.from_json(experiment_spec("E1", sizes=(4,)).to_json())
        assert isinstance(spec.sweep, SweepSpec)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ReproError, match="unknown ExperimentSpec fields"):
            ExperimentSpec.from_dict({"name": "x", "bogus": 1})

    def test_non_object_json_rejected(self):
        with pytest.raises(ReproError):
            ExperimentSpec.from_json("[1, 2]")


class TestValidation:
    def test_needs_exactly_one_of_sweep_and_cells(self):
        with pytest.raises(ReproError, match="exactly one"):
            ExperimentSpec(name="x", columns=("a",)).validate()
        with pytest.raises(ReproError, match="exactly one"):
            ExperimentSpec(
                name="x",
                columns=("a",),
                sweep=SweepSpec(),
                cells=(ScenarioSpec(),),
            ).validate()

    def test_needs_columns(self):
        with pytest.raises(ReproError, match="columns"):
            ExperimentSpec(name="x", sweep=SweepSpec()).validate()


class TestRunExperiment:
    def test_cold_then_warm_is_byte_identical_with_zero_executions(self):
        store = MemoryStore()
        spec = quick_e3()
        cold = run_experiment(spec, store=store)
        warm = run_experiment(spec, store=store)
        assert cold.executed == 9 and cold.cache_hits == 0
        assert warm.executed == 0 and warm.cache_hits == 9
        for format in ("markdown", "csv", "json"):
            assert cold.render(format) == warm.render(format)

    def test_by_registered_name(self):
        result = run_experiment("F1")
        assert len(result.rows) == 16
        assert result.render().startswith("F1-F4:")

    def test_aggregate_from_store_never_executes(self, tmp_path):
        spec = quick_e3()
        with FileStore(tmp_path / "store") as store:
            executed = run_experiment(spec, store=store)
            pure = aggregate_from_store(spec, store)
            assert pure.executed == 0
            assert pure.render() == executed.render()

    def test_aggregate_from_store_reports_missing_cells(self):
        with pytest.raises(ReproError, match="missing from the store"):
            aggregate_from_store(quick_e3(), MemoryStore())

    def test_store_query_by_keys_returns_the_experiment_cells(self):
        store = MemoryStore()
        spec = quick_e3()
        run_experiment(spec, store=store)
        # Unrelated record in the same store is filtered out by keys=.
        other = experiment_spec("F1", ks=(1,))
        run_experiment(other, store=store)
        result = store.query(keys=spec.keys())
        assert len(result) == 9
        assert {record.problem for record in result} == {"bounds"}

    def test_get_many_preserves_argument_order(self):
        store = MemoryStore()
        spec = quick_e3()
        run_experiment(spec, store=store)
        keys = spec.keys()
        records = store.get_many(reversed(keys))
        assert [record.spec.key() for record in records] == list(reversed(keys))


class TestRendering:
    def test_csv_has_header_and_rows(self):
        result = run_experiment("F1")
        lines = result.render("csv").splitlines()
        assert lines[0] == "figure,kind,k,length,composition"
        assert len(lines) == 1 + 16

    def test_json_document_shape(self):
        result = run_experiment(quick_e3())
        document = json.loads(result.render("json"))
        assert document["columns"] == ["n", "label", "label_length", "rv_bound", "baseline_bound"]
        assert len(document["rows"]) == 9
        assert len(document["footers"]) == 2
        assert document["title"].startswith("E3:")

    def test_unknown_format_rejected(self):
        with pytest.raises(ReproError, match="unknown table format"):
            render(TableData(columns=("a",)), format="xml")

    def test_missing_cells_render_blank_in_markdown_and_csv(self):
        table = TableData(columns=("a", "b"), rows=({"a": 1, "b": None}, {"a": 2}))
        markdown = render(table)
        assert "None" not in markdown
        assert render(table, "csv").splitlines()[1:] == ["1,", "2,"]

    def test_markdown_footers_render_after_a_blank_line(self):
        text = run_experiment(quick_e3()).render()
        body, _, footer_block = text.partition("\n\n")
        assert "growth in the label" in footer_block
        assert "rv_bound" in body
