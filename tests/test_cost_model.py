"""Tests of the cost model: trajectory lengths, bounds, budgets."""

from __future__ import annotations

import pytest

from repro.exceptions import ExplorationError
from repro.exploration.cost_model import (
    PaperCostModel,
    SimulationCostModel,
    default_cost_model,
)
from repro.core.labels import modified_label


class TestLengthRecurrences:
    """The closed forms must satisfy the defining recurrences exactly."""

    @pytest.fixture(scope="class")
    def model(self):
        return SimulationCostModel()

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_x_is_twice_r(self, model, k):
        assert model.len_X(k) == 2 * model.P(k)

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_q_is_sum_of_x(self, model, k):
        assert model.len_Q(k) == sum(model.len_X(i) for i in range(1, k + 1))

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_y_prime_counts_trunk_and_insertions(self, model, k):
        expected = (model.P(k) + 1) * model.len_Q(k) + model.P(k)
        assert model.len_Y_prime(k) == expected

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_y_is_twice_y_prime(self, model, k):
        assert model.len_Y(k) == 2 * model.len_Y_prime(k)

    @pytest.mark.parametrize("k", [1, 3])
    def test_z_is_sum_of_y(self, model, k):
        assert model.len_Z(k) == sum(model.len_Y(i) for i in range(1, k + 1))

    @pytest.mark.parametrize("k", [1, 2])
    def test_a_prime_counts_trunk_and_insertions(self, model, k):
        expected = (model.P(k) + 1) * model.len_Z(k) + model.P(k)
        assert model.len_A_prime(k) == expected

    @pytest.mark.parametrize("k", [1, 2])
    def test_a_is_twice_a_prime(self, model, k):
        assert model.len_A(k) == 2 * model.len_A_prime(k)

    @pytest.mark.parametrize("k", [1, 2])
    def test_b_definition(self, model, k):
        assert model.repetitions_B(k) == 2 * model.len_A(4 * k)
        assert model.len_B(k) == model.repetitions_B(k) * model.len_Y(k)

    @pytest.mark.parametrize("k", [1, 2])
    def test_k_definition(self, model, k):
        assert model.repetitions_K(k) == 2 * (model.len_B(4 * k) + model.len_A(8 * k))
        assert model.len_K(k) == model.repetitions_K(k) * model.len_X(k)

    @pytest.mark.parametrize("k", [1, 2])
    def test_omega_definition(self, model, k):
        assert model.repetitions_Omega(k) == (2 * k - 1) * model.len_K(k)
        assert model.len_Omega(k) == model.repetitions_Omega(k) * model.len_X(k)

    def test_lengths_are_monotone_in_k(self, model):
        for length in (model.len_X, model.len_Q, model.len_Y, model.len_Z, model.len_A):
            values = [length(k) for k in range(1, 6)]
            assert values == sorted(values)
            assert all(v > 0 for v in values)

    def test_caching_returns_same_value(self, model):
        assert model.len_A(3) == model.len_A(3)
        assert model.len_Omega(2) == model.len_Omega(2)


class TestAlgorithmStructureLengths:
    @pytest.fixture(scope="class")
    def model(self):
        return SimulationCostModel()

    def test_segment_length_by_bit(self, model):
        assert model.segment_length(2, 1) == 2 * model.len_B(4)
        assert model.segment_length(2, 0) == 2 * model.len_A(8)
        with pytest.raises(ExplorationError):
            model.segment_length(2, 2)

    def test_piece_length_small_cases(self, model):
        bits = modified_label(1)  # (1, 1, 0, 1)
        # Piece 1 processes only bit 1 (min(k, s) = 1): one segment, no border.
        assert model.piece_length(1, bits) == model.segment_length(1, bits[0])
        # Piece 2 processes bits 1..2 with one border in between.
        expected = (
            model.segment_length(2, bits[0])
            + model.len_K(2)
            + model.segment_length(2, bits[1])
        )
        assert model.piece_length(2, bits) == expected

    def test_piece_length_saturates_at_label_length(self, model):
        bits = modified_label(1)
        s = len(bits)
        # For k >= s the piece processes exactly s bits.
        per_piece_segments = s
        length = model.piece_length(s + 3, bits)
        minimum = per_piece_segments * min(
            model.segment_length(s + 3, 0), model.segment_length(s + 3, 1)
        )
        assert length >= minimum

    def test_rv_length_through_piece_accumulates(self, model):
        bits = modified_label(2)
        one = model.rv_length_through_piece(bits, 1)
        two = model.rv_length_through_piece(bits, 2)
        assert two == one + model.len_Omega(1) + model.piece_length(2, bits)


class TestBounds:
    def test_modified_label_length(self):
        model = SimulationCostModel()
        assert model.modified_label_length(3) == 8
        with pytest.raises(ExplorationError):
            model.modified_label_length(0)

    def test_final_piece_index(self):
        model = SimulationCostModel()
        # l = 2m + 2, N = 2(n + l) + 1.
        assert model.final_piece_index(4, 3) == 2 * (4 + 8) + 1

    def test_pi_bound_positive_and_monotone(self):
        model = PaperCostModel()
        values_n = [model.pi_bound(n, 2) for n in (2, 3, 4)]
        assert values_n == sorted(values_n) and values_n[0] > 0
        values_m = [model.pi_bound(3, m) for m in (1, 2, 3)]
        assert values_m == sorted(values_m)

    def test_pi_bound_rejects_bad_size(self):
        with pytest.raises(ExplorationError):
            PaperCostModel().pi_bound(0, 1)

    def test_esst_bound(self):
        model = SimulationCostModel()
        bound = model.esst_bound(3)
        assert bound > 0
        assert model.esst_bound(4) > bound
        with pytest.raises(ExplorationError):
            model.esst_bound(0)

    def test_esst_phase_cost_validation(self):
        model = SimulationCostModel()
        assert model.esst_phase_cost(3) > 0
        with pytest.raises(ExplorationError):
            model.esst_phase_cost(4)
        with pytest.raises(ExplorationError):
            model.esst_phase_cost(2)

    def test_baseline_lengths_are_exponential_in_label(self):
        model = SimulationCostModel()
        n = 4
        lengths = [model.baseline_trajectory_length(n, label) for label in (1, 2, 3)]
        base = 2 * model.P(n) + 1
        assert lengths[1] / lengths[0] == pytest.approx(base)
        assert lengths[2] / lengths[1] == pytest.approx(base)
        assert model.baseline_repetitions(n, 2) == base**2
        with pytest.raises(ExplorationError):
            model.baseline_trajectory_length(n, 0)

    def test_rendezvous_budget_paper_vs_simulation(self):
        paper = PaperCostModel()
        sim = SimulationCostModel()
        assert paper.rendezvous_budget(3, 2) == paper.pi_bound(3, 2)
        assert sim.rendezvous_budget(3, 2) < paper.pi_bound(3, 2)
        assert sim.rendezvous_budget(3, 2) > 0
        with pytest.raises(ExplorationError):
            sim.rendezvous_budget(0, 2)

    def test_default_cost_model_is_simulation(self):
        assert isinstance(default_cost_model(), SimulationCostModel)

    def test_model_names(self):
        assert "simulation" in SimulationCostModel().name
        assert "paper" in PaperCostModel().name
