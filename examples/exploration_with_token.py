#!/usr/bin/env python3
"""Procedure ESST: exploring an unknown anonymous network with a token.

A single agent cannot explore an anonymous network of unknown size and *know*
when it is done (the paper recalls that even rings defeat it).  Procedure ESST
(§2) fixes this with the weakest possible help: a single token that sits
somewhere on one edge of the network.  The agent works in phases, probing the
graph with exploration walks of growing parameter, until one phase proves that
it has seen everything; the final phase index is then a certified upper bound
on the size of the network — the fact Algorithm SGL later relies on.

The example runs ESST on three different networks and shows the cost, the
certified size bound, and the coverage check of Theorem 2.1.

Run with::

    python examples/exploration_with_token.py
"""

from __future__ import annotations

from fractions import Fraction

from repro.exploration.cost_model import SimulationCostModel
from repro.exploration.esst import run_esst
from repro.graphs import families
from repro.sim.position import Position


def explore(graph, start, token, model):
    result = run_esst(graph, start, token, model)
    print(f"{graph.name:>22}:  "
          f"cost = {result.traversals:>8,} traversals,  "
          f"final phase = {result.final_phase:>3} "
          f"(so size <= {result.final_phase - 1}, bound 9n+3 = {9 * graph.size + 3}),  "
          f"all {graph.num_edges} edges traversed: {result.all_edges_traversed}")


def main() -> None:
    model = SimulationCostModel()
    print("Procedure ESST — exploration with a semi-stationary token (Theorem 2.1)\n")
    explore(families.ring(6), 0, Position.at_node(3), model)
    explore(families.binary_tree(7), 0, Position.at_node(6), model)
    # The token may sit strictly inside an edge; the agent spots it while
    # traversing that edge.
    graph = families.random_connected(6, 0.4, rng_seed=7)
    edge = sorted(graph.edges())[0]
    explore(graph, max(graph.nodes()), Position.on_edge(edge, Fraction(1, 3)), model)
    print("\nThe certified size bound (final phase) is what an SGL explorer uses to")
    print("size its remaining work without ever being told how big the network is.")


if __name__ == "__main__":
    main()
