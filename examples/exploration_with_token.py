#!/usr/bin/env python3
"""Procedure ESST: exploring an unknown anonymous network with a token.

A single agent cannot explore an anonymous network of unknown size and *know*
when it is done (the paper recalls that even rings defeat it).  Procedure ESST
(§2) fixes this with the weakest possible help: a single token that sits
somewhere on one edge of the network.  The agent works in phases, probing the
graph with exploration walks of growing parameter, until one phase proves that
it has seen everything; the final phase index is then a certified upper bound
on the size of the network — the fact Algorithm SGL later relies on.

Each run is one declarative :class:`~repro.runtime.spec.ScenarioSpec` — note
the third one, whose token sits strictly *inside* an edge (``token_edge`` +
``token_fraction``); the agent spots it while traversing that edge.  Being
specs, all three scenarios could be saved as JSON, replayed with ``repro run
--spec``, or cached in a result store.

Run with::

    python examples/exploration_with_token.py
"""

from __future__ import annotations

from repro.runtime import ScenarioSpec
from repro.runtime.runner import run

SCENARIOS = [
    ScenarioSpec(problem="esst", family="ring", size=6, token_node=3),
    ScenarioSpec(problem="esst", family="binary_tree", size=7, token_node=6),
    # The token may sit strictly inside an edge of this random network.
    ScenarioSpec(
        problem="esst",
        family="erdos_renyi",
        size=6,
        seed=7,
        token_edge=(0, 2),
        token_fraction="1/3",
    ),
]


def explore(spec: ScenarioSpec) -> None:
    record = run(spec)
    extra = record.extra_dict
    token = (
        f"node {extra['token_node']}"
        if extra["token_node"] is not None
        else f"edge {tuple(extra['token_edge'])} at {extra['token_fraction']}"
    )
    print(
        f"{record.graph_name:>22}:  "
        f"cost = {record.cost:>8,} traversals,  "
        f"final phase = {extra['final_phase']:>3} "
        f"(so size <= {extra['final_phase'] - 1}, bound 9n+3 = {extra['phase_bound']}),  "
        f"all {record.graph_edges} edges traversed: {record.ok},  token at {token}"
    )


def main() -> None:
    print("Procedure ESST — exploration with a semi-stationary token (Theorem 2.1)\n")
    for spec in SCENARIOS:
        explore(spec)
    print("\nThe certified size bound (final phase) is what an SGL explorer uses to")
    print("size its remaining work without ever being told how big the network is.")


if __name__ == "__main__":
    main()
