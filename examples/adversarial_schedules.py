#!/usr/bin/env python3
"""How much can the adversary hurt?  Rendezvous under different schedules.

The asynchronous adversary controls the speed of both agents.  This example
runs the same rendezvous instance (same graph, same labels, same start nodes)
under every adversary strategy shipped with the engine — fair round-robin,
random interleaving, starvation, delay-until-stop, and the greedy
meeting-avoiding adversary with increasing patience — and compares the
measured cost-to-meeting with the worst-case guarantee of Theorem 3.1, which
holds against *all* of them.

It also shows the contrast with the naive exponential baseline: the baseline
still meets (on this small instance) but its worst-case guarantee is
astronomically larger and it needs to know the size of the network.

Every run is a declarative :class:`~repro.runtime.spec.ScenarioSpec`; the
batch goes through :func:`~repro.runtime.executors.run_sweep`, the same
facade used by ``repro sweep`` and the experiment drivers.

Run with::

    python examples/adversarial_schedules.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.exploration.cost_model import SimulationCostModel
from repro.runtime import ScenarioSpec
from repro.runtime.executors import run_sweep

ADVERSARIES = [
    ("round robin (fair)", "round_robin", {}),
    ("random interleaving", "random", {"seed": 2}),
    ("starve agent 1 for 200 moves", "lazy", {"starved": "agent-1", "release_after": 200}),
    ("delay agent 2 until agent 1 stops", "delay_until_stop", {}),
    ("greedy avoider, patience 16", "avoider", {"patience": 16}),
    ("greedy avoider, patience 256", "avoider", {"patience": 256}),
]


def main() -> None:
    labels = (6, 11)
    # The registered erdos_renyi family fixes the edge probability at 0.4,
    # so this instance is denser than the historical example's p=0.3 graph;
    # the adversary ranking it illustrates is the same.
    base = ScenarioSpec(
        family="erdos_renyi",
        size=9,
        seed=4,
        labels=labels,
        starts=(0, 5),
        max_traversals=1_000_000,
    )
    model = SimulationCostModel()

    cells = [
        base.replace(problem=problem, scheduler=scheduler, scheduler_params=params)
        for _, scheduler, params in ADVERSARIES
        for problem in ("rendezvous", "baseline")
    ]
    result = run_sweep(cells, model=model)

    rows = []
    names = [name for name, _, _ in ADVERSARIES for _ in ("rv", "baseline")]
    for name, record in zip(names, result):
        algorithm = "RV-asynch-poly" if record.problem == "rendezvous" else "baseline (knows n)"
        rows.append([name, algorithm, record.ok, record.cost, record.decisions])

    graph_name = result[0].graph_name
    print(f"instance: {graph_name}, labels {labels}, start nodes 0 and 5\n")
    print(format_table(["adversary", "algorithm", "met", "cost", "decisions"], rows))

    n = result[0].graph_size
    smaller = min(labels)
    print()
    print("worst-case guarantees for this instance (hold against ANY adversary):")
    print(f"  RV-asynch-poly:  Π(n, |{smaller}|) = {model.pi_bound(n, smaller.bit_length()):,}")
    print(f"  baseline:        (2P(n)+1)^{smaller} · 2P(n) = "
          f"{model.baseline_trajectory_length(n, smaller):,}")


if __name__ == "__main__":
    main()
