#!/usr/bin/env python3
"""How much can the adversary hurt?  Rendezvous under different schedules.

The asynchronous adversary controls the speed of both agents.  This example
runs the same rendezvous instance (same graph, same labels, same start nodes)
under every adversary strategy shipped with the engine — fair round-robin,
random interleaving, starvation, delay-until-stop, and the greedy
meeting-avoiding adversary with increasing patience — and compares the
measured cost-to-meeting with the worst-case guarantee of Theorem 3.1, which
holds against *all* of them.

It also shows the contrast with the naive exponential baseline: the baseline
still meets (on this small instance) but its worst-case guarantee is
astronomically larger and it needs to know the size of the network.

Run with::

    python examples/adversarial_schedules.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core import run_baseline_rendezvous, run_rendezvous
from repro.exploration.cost_model import SimulationCostModel
from repro.graphs import families
from repro.sim import (
    GreedyAvoidingScheduler,
    LazyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


def main() -> None:
    graph = families.random_connected(9, 0.3, rng_seed=4)
    model = SimulationCostModel()
    labels = (6, 11)
    placements = [(labels[0], 0), (labels[1], 5)]

    adversaries = [
        ("round robin (fair)", lambda: RoundRobinScheduler()),
        ("random interleaving", lambda: RandomScheduler(seed=2)),
        ("starve agent 1 for 200 moves", lambda: LazyScheduler("agent-1", release_after=200)),
        ("delay agent 2 until agent 1 stops", lambda: LazyScheduler("agent-2", release_after=None)),
        ("greedy avoider, patience 16", lambda: GreedyAvoidingScheduler(patience=16)),
        ("greedy avoider, patience 256", lambda: GreedyAvoidingScheduler(patience=256)),
    ]

    rows = []
    for name, make in adversaries:
        result = run_rendezvous(
            graph, placements, scheduler=make(), model=model, max_traversals=1_000_000
        )
        rows.append([name, "RV-asynch-poly", result.met, result.cost(), result.decisions])
        baseline = run_baseline_rendezvous(
            graph, placements, scheduler=make(), model=model, max_traversals=1_000_000
        )
        rows.append([name, "baseline (knows n)", baseline.met, baseline.cost(), baseline.decisions])

    print(f"instance: {graph.name}, labels {labels}, start nodes 0 and 5\n")
    print(format_table(["adversary", "algorithm", "met", "cost", "decisions"], rows))

    smaller = min(labels)
    print()
    print("worst-case guarantees for this instance (hold against ANY adversary):")
    print(f"  RV-asynch-poly:  Π(n, |{smaller}|) = {model.pi_bound(graph.size, smaller.bit_length()):,}")
    print(f"  baseline:        (2P(n)+1)^{smaller} · 2P(n) = "
          f"{model.baseline_trajectory_length(graph.size, smaller):,}")


if __name__ == "__main__":
    main()
