#!/usr/bin/env python3
"""The headline result, in one table: polynomial versus exponential guarantees.

Prior to this paper, the best deterministic asynchronous rendezvous algorithm
had cost exponential in the size of the graph and in the (larger) label.  The
paper's Algorithm RV-asynch-poly guarantees a meeting within ``Π(n, |L_min|)``
edge traversals — polynomial in the size and in the *length* of the smaller
label.

This example runs the registered E3 experiment — a frozen
:class:`~repro.analysis.experiment_spec.ExperimentSpec` bundling the bounds
sweep, its aggregation pipeline and its render config — over a custom
size/label grid, against an in-memory result store.  The spec's own table
(with its growth-classification footers) prints first; the example then
re-aggregates the same rows into a compact order-of-magnitude view, and
finally re-runs the experiment to show that a warm store re-renders the
table with **zero** scenario executions.

Run with::

    python examples/polynomial_vs_exponential.py
"""

from __future__ import annotations

from repro.analysis.experiment_spec import experiment_spec, run_experiment
from repro.analysis.tables import format_table
from repro.store import MemoryStore

SIZES = (4, 8, 16)
LABELS = (1, 4, 16, 64, 256)

SPEC = experiment_spec("E3", sizes=SIZES, labels=LABELS)


def _magnitude(value: int) -> str:
    """Render a (possibly astronomically large) integer as a power of ten."""
    if value < 10**300:
        return f"{float(value):.3e}"
    return f"~10^{len(str(value)) - 1}"


def main() -> None:
    store = MemoryStore()
    result = run_experiment(SPEC, store=store)
    print(result.render())

    print()
    rows = [
        [
            row["n"],
            row["label"],
            row["label_length"],
            _magnitude(row["rv_bound"]),
            _magnitude(row["baseline_bound"]),
            "RV" if row["rv_bound"] < row["baseline_bound"] else "baseline",
        ]
        for row in result.rows
    ]
    print(format_table(
        ["n", "label L", "|L|", "Pi(n, |L|)", "baseline bound", "smaller guarantee"],
        rows,
        title="The same rows, re-aggregated as orders of magnitude",
    ))

    again = run_experiment(SPEC, store=store)
    assert again.render() == result.render()
    print(
        f"\n(re-rendering through the result store: "
        f"{again.cache_hits}/{len(again.records)} cells served from cache, "
        f"{again.executed} executed — the table is byte-identical)"
    )


if __name__ == "__main__":
    main()
