#!/usr/bin/env python3
"""The headline result, in one table: polynomial versus exponential guarantees.

Prior to this paper, the best deterministic asynchronous rendezvous algorithm
had cost exponential in the size of the graph and in the (larger) label.  The
paper's Algorithm RV-asynch-poly guarantees a meeting within ``Π(n, |L_min|)``
edge traversals — polynomial in the size and in the *length* of the smaller
label.

This example evaluates both guarantees on a grid of sizes and labels, fits
their growth, and prints where the crossover lies.  Everything here is exact
arithmetic on the bound recurrences of §3.2 — no simulation involved — yet
the grid runs through the scenario runtime like everything else: each
(n, L) pair is a cell of the ``"bounds"`` problem kind, executed with
``run_sweep`` against an in-memory result store, so re-aggregating the grid
a second time executes zero cells.

Run with::

    python examples/polynomial_vs_exponential.py
"""

from __future__ import annotations

from repro.analysis.fitting import classify_growth, fit_power_law
from repro.analysis.tables import format_table
from repro.runtime import ScenarioSpec
from repro.runtime.executors import run_sweep
from repro.store import MemoryStore

SIZES = (4, 8, 16)
LABELS = (1, 4, 16, 64, 256)

CELLS = [
    ScenarioSpec(
        problem="bounds",
        family="path",  # any family of exactly n nodes; only the size matters
        size=n,
        labels=(label, label + 1),
        cost_model="paper",
        name="polynomial-vs-exponential",
    )
    for n in SIZES
    for label in LABELS
]


def _magnitude(value: int) -> str:
    """Render a (possibly astronomically large) integer as a power of ten."""
    if value < 10**300:
        return f"{float(value):.3e}"
    return f"~10^{len(str(value)) - 1}"


def main() -> None:
    store = MemoryStore()
    result = run_sweep(CELLS, store=store)

    rows = []
    for record in result:
        extra = record.extra_dict
        rows.append(
            [
                record.graph_size,
                extra["label_small"],
                extra["label_length"],
                _magnitude(extra["rv_bound"]),
                _magnitude(extra["baseline_bound"]),
                "RV" if extra["rv_bound"] < extra["baseline_bound"] else "baseline",
            ]
        )
    print(format_table(
        ["n", "label L", "|L|", "Pi(n, |L|)", "baseline bound", "smaller guarantee"],
        rows,
        title="Worst-case rendezvous guarantees (Theorem 3.1 vs the exponential baseline)",
    ))

    at_largest_n = [r for r in result if r.graph_size == max(SIZES)]
    label_values = [r.extra_dict["label_small"] for r in at_largest_n]
    print()
    print("growth in the label at n = %d:" % max(SIZES))
    print("  RV-asynch-poly: %s"
          % classify_growth(label_values, [r.extra_dict["rv_bound"] for r in at_largest_n]))
    print("  baseline:       %s"
          % classify_growth(label_values, [r.extra_dict["baseline_bound"] for r in at_largest_n]))

    at_smallest_label = sorted(
        (r for r in result if r.extra_dict["label_small"] == LABELS[0]),
        key=lambda r: r.graph_size,
    )
    fit = fit_power_law(
        [r.graph_size for r in at_smallest_label],
        [r.extra_dict["rv_bound"] for r in at_smallest_label],
    )
    print(f"\ngrowth of Π in the size (L = {LABELS[0]}): ~ n^{fit.slope:.1f} — a fixed-degree polynomial,")
    print("whereas the baseline guarantee is multiplied by (2P(n)+1) for every extra unit of L.")

    again = run_sweep(CELLS, store=store)
    print(
        f"\n(re-aggregating through the result store: "
        f"{again.cache_hits}/{len(again)} cells served from cache, "
        f"{again.executed} executed)"
    )


if __name__ == "__main__":
    main()
