#!/usr/bin/env python3
"""The headline result, in one table: polynomial versus exponential guarantees.

Prior to this paper, the best deterministic asynchronous rendezvous algorithm
had cost exponential in the size of the graph and in the (larger) label.  The
paper's Algorithm RV-asynch-poly guarantees a meeting within ``Π(n, |L_min|)``
edge traversals — polynomial in the size and in the *length* of the smaller
label.

This example evaluates both guarantees on a grid of sizes and labels, fits
their growth, and prints where the crossover lies.  Everything here is exact
arithmetic on the bound recurrences of §3.2 — no simulation involved.

Run with::

    python examples/polynomial_vs_exponential.py
"""

from __future__ import annotations

from repro.analysis.fitting import classify_growth, fit_power_law
from repro.analysis.tables import format_table
from repro.core.bounds import compare_bounds
from repro.exploration.cost_model import PaperCostModel


def _magnitude(value: int) -> str:
    """Render a (possibly astronomically large) integer as a power of ten."""
    if value < 10**300:
        return f"{float(value):.3e}"
    return f"~10^{len(str(value)) - 1}"


def main() -> None:
    model = PaperCostModel()
    sizes = (4, 8, 16)
    labels = (1, 4, 16, 64, 256)
    comparisons = compare_bounds(sizes, labels, model)

    rows = [
        [c.n, c.label, c.label_length, _magnitude(c.rv_bound), _magnitude(c.baseline_bound),
         "RV" if c.rv_bound < c.baseline_bound else "baseline"]
        for c in comparisons
    ]
    print(format_table(
        ["n", "label L", "|L|", "Pi(n, |L|)", "baseline bound", "smaller guarantee"],
        rows,
        title="Worst-case rendezvous guarantees (Theorem 3.1 vs the exponential baseline)",
    ))

    at_largest_n = [c for c in comparisons if c.n == max(sizes)]
    label_values = [c.label for c in at_largest_n]
    print()
    print("growth in the label at n = %d:" % max(sizes))
    print("  RV-asynch-poly: %s" % classify_growth(label_values, [c.rv_bound for c in at_largest_n]))
    print("  baseline:       %s" % classify_growth(label_values, [c.baseline_bound for c in at_largest_n]))

    at_smallest_label = sorted(
        (c for c in comparisons if c.label == labels[0]), key=lambda c: c.n
    )
    fit = fit_power_law([c.n for c in at_smallest_label], [c.rv_bound for c in at_smallest_label])
    print(f"\ngrowth of Π in the size (L = {labels[0]}): ~ n^{fit.slope:.1f} — a fixed-degree polynomial,")
    print("whereas the baseline guarantee is multiplied by (2P(n)+1) for every extra unit of L.")


if __name__ == "__main__":
    main()
