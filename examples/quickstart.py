#!/usr/bin/env python3
"""Quickstart: two agents meet asynchronously in an unknown network.

Two mobile agents with labels 6 and 11 are dropped at different nodes of an
8-node ring they know nothing about — not even its size.  An adversary
controls how fast each of them moves.  Both run Algorithm RV-asynch-poly (the
paper's main contribution); the scenario runtime reports where they met and
how many edge traversals it cost, and compares that with the worst-case
guarantee Π(n, |L_min|) of Theorem 3.1.

The whole scenario is one declarative spec — the same object could be saved
as JSON and replayed with ``repro run --spec``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.exploration.cost_model import SimulationCostModel
from repro.runtime import ScenarioSpec
from repro.runtime.runner import run


def main() -> None:
    spec = ScenarioSpec(
        problem="rendezvous",
        family="ring",
        size=8,
        labels=(6, 11),
        starts=(0, 4),
        scheduler="avoider",
        scheduler_params={"patience": 64},
    )
    model = SimulationCostModel()
    record = run(spec, model=model)

    print(f"network: {record.graph_name} with {record.graph_size} nodes and {record.graph_edges} edges")
    print(f"agents:  label {spec.labels[0]} at node {spec.starts[0]}, label {spec.labels[1]} at node {spec.starts[1]}")
    print("adversary: greedy meeting-avoiding scheduler (patience 64)")
    print()

    extra = record.extra_dict
    where = (
        f"node {extra['meeting_node']}"
        if extra["meeting_node"] is not None
        else f"inside edge {tuple(extra['meeting_edge'])}"
    )
    smaller_length = min(label.bit_length() for label in spec.labels)
    bound = model.pi_bound(record.graph_size, smaller_length)

    print(f"met:                 {record.ok} ({where})")
    print(f"measured cost:       {record.cost} edge traversals")
    print(f"per agent:           {extra['traversals_by_agent']}")
    print(f"Theorem 3.1 bound:   Π({record.graph_size}, {smaller_length}) = {bound:,} traversals")
    print()
    print("The agents met long before the worst-case guarantee — the guarantee is")
    print("what holds against *any* adversary, however the speeds are manipulated.")


if __name__ == "__main__":
    main()
