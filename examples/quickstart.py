#!/usr/bin/env python3
"""Quickstart: two agents meet asynchronously in an unknown network.

Two mobile agents with labels 6 and 11 are dropped at different nodes of an
8-node ring they know nothing about — not even its size.  An adversary
controls how fast each of them moves.  Both run Algorithm RV-asynch-poly (the
paper's main contribution); the engine reports where they met and how many
edge traversals it cost, and compares that with the worst-case guarantee
Π(n, |L_min|) of Theorem 3.1.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import run_rendezvous
from repro.exploration.cost_model import SimulationCostModel
from repro.graphs import families
from repro.sim import GreedyAvoidingScheduler


def main() -> None:
    graph = families.ring(8)
    model = SimulationCostModel()
    labels = (6, 11)
    starts = (0, 4)

    print(f"network: {graph.name} with {graph.size} nodes and {graph.num_edges} edges")
    print(f"agents:  label {labels[0]} at node {starts[0]}, label {labels[1]} at node {starts[1]}")
    print("adversary: greedy meeting-avoiding scheduler (patience 64)")
    print()

    result = run_rendezvous(
        graph,
        [(labels[0], starts[0]), (labels[1], starts[1])],
        scheduler=GreedyAvoidingScheduler(patience=64),
        model=model,
    )

    where = (
        f"node {result.meeting.node}"
        if result.meeting.node is not None
        else f"inside edge {result.meeting.edge}"
    )
    smaller_length = min(labels[0].bit_length(), labels[1].bit_length())
    bound = model.pi_bound(graph.size, smaller_length)

    print(f"met:                 {result.met} ({where})")
    print(f"measured cost:       {result.total_traversals} edge traversals")
    print(f"per agent:           {result.traversals_by_agent}")
    print(f"Theorem 3.1 bound:   Π({graph.size}, {smaller_length}) = {bound:,} traversals")
    print()
    print("The agents met long before the worst-case guarantee — the guarantee is")
    print("what holds against *any* adversary, however the speeds are manipulated.")


if __name__ == "__main__":
    main()
