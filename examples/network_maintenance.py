#!/usr/bin/env python3
"""Network maintenance by a team of software agents (the §4 applications).

The paper's motivating scenario: software agents are injected at different
routers of a network whose topology (and even size) is unknown to them, in
order to coordinate a maintenance task.  Before they can coordinate they must

* find out how many of them there are          (team size),
* agree on a coordinator                        (leader election),
* adopt short pairwise-distinct identifiers     (perfect renaming),
* pool the inventory data each one collected    (gossiping).

All four reduce to Strong Global Learning (Algorithm SGL), which this example
runs for a team of four agents on a random network, one of them initially
dormant (it is woken up when a teammate walks over its start node).

Run with::

    python examples/network_maintenance.py
"""

from __future__ import annotations

from repro.exploration.cost_model import SimulationCostModel
from repro.graphs import families
from repro.sim import RandomScheduler
from repro.teams import TeamMember, run_sgl


def main() -> None:
    graph = families.random_connected(7, 0.35, rng_seed=11)
    model = SimulationCostModel()
    team = [
        TeamMember(label=23, start_node=0, value={"router": 0, "firmware": "v2.1"}),
        TeamMember(label=8, start_node=2, value={"router": 2, "firmware": "v2.3"}),
        TeamMember(label=41, start_node=4, value={"router": 4, "firmware": "v1.9"}),
        TeamMember(label=15, start_node=6, value={"router": 6, "firmware": "v2.3"},
                   dormant=True),
    ]

    print(f"network: {graph.name} ({graph.size} routers, {graph.num_edges} links)")
    print(f"team:    labels {sorted(member.label for member in team)}; "
          f"agent 15 starts dormant")
    print()

    outcome = run_sgl(
        graph,
        team,
        scheduler=RandomScheduler(seed=3),
        model=model,
        max_traversals=8_000_000,
    )

    print(f"every agent produced an output: {outcome.all_output}")
    print(f"outputs correct:                {outcome.correct}")
    print(f"total cost:                     {outcome.cost:,} edge traversals")
    print()

    labels = outcome.expected_labels
    print("derived answers (identical at every agent):")
    print(f"  team size:        {len(labels)}")
    print(f"  leader:           agent {min(labels)}")
    renaming = {label: rank + 1 for rank, label in enumerate(labels)}
    print(f"  perfect renaming: {renaming}")
    print("  gossiping (inventory collected by the leader):")
    for label, value in sorted(outcome.value_maps[min(labels)].items()):
        print(f"    agent {label}: {value}")


if __name__ == "__main__":
    main()
