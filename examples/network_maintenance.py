#!/usr/bin/env python3
"""Network maintenance by a team of software agents (the §4 applications).

The paper's motivating scenario: software agents are injected at different
routers of a network whose topology (and even size) is unknown to them, in
order to coordinate a maintenance task.  Before they can coordinate they must

* find out how many of them there are          (team size),
* agree on a coordinator                        (leader election),
* adopt short pairwise-distinct identifiers     (perfect renaming),
* pool the inventory data each one collected    (gossiping).

All four reduce to Strong Global Learning (Algorithm SGL).  The whole
mission is one declarative :class:`~repro.runtime.spec.ScenarioSpec`: the
inventory every agent carries travels in the spec's ``values`` (mappings are
frozen to sorted pair tuples so the spec stays hashable), and agent 15
starts ``dormant`` — it is woken when a teammate walks over its start node.
The gossiped inventories come back in the record's ``value_maps`` extra.

Run with::

    python examples/network_maintenance.py
"""

from __future__ import annotations

from repro.runtime import ScenarioSpec
from repro.runtime.runner import run

SPEC = ScenarioSpec(
    problem="teams",
    family="erdos_renyi",  # random_connected(n, 0.4, seed)
    size=7,
    seed=11,
    labels=(23, 8, 41, 15),
    starts=(0, 2, 4, 6),
    values=(
        {"router": 0, "firmware": "v2.1"},
        {"router": 2, "firmware": "v2.3"},
        {"router": 4, "firmware": "v1.9"},
        {"router": 6, "firmware": "v2.3"},
    ),
    dormant=(3,),  # agent 15 sleeps until a teammate reaches router 6
    scheduler="random",
    scheduler_params={"seed": 3},
    max_traversals=8_000_000,
    name="network-maintenance",
)


def main() -> None:
    record = run(SPEC)
    extra = record.extra_dict

    print(
        f"network: {record.graph_name} "
        f"({record.graph_size} routers, {record.graph_edges} links)"
    )
    print(
        f"team:    labels {sorted(SPEC.labels)}; "
        f"agent {SPEC.labels[SPEC.dormant[0]]} starts dormant"
    )
    print()

    print(f"every agent produced an output: {extra['all_output']}")
    print(f"outputs correct:                {record.ok}")
    print(f"total cost:                     {record.cost:,} edge traversals")
    print()

    labels = list(extra["team_labels"])
    print("derived answers (identical at every agent):")
    print(f"  team size:        {len(labels)}")
    print(f"  leader:           agent {extra['leader']}")
    renaming = {label: rank + 1 for rank, label in enumerate(labels)}
    print(f"  perfect renaming: {renaming}")
    print("  gossiping (inventory collected by the leader):")
    leader_view = extra["value_maps"][str(extra["leader"])]
    for label, value in sorted(leader_view.items(), key=lambda kv: int(kv[0])):
        print(f"    agent {label}: {dict(value)}")


if __name__ == "__main__":
    main()
