"""Legacy setup shim.

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose packaging toolchain
predates PEP 660 editable installs (no ``wheel`` package available).
"""

from setuptools import setup

setup()
