"""Per-edge integer lattices: exact edge fractions without Fraction arithmetic.

The engine's hot loop asks one geometric question over and over: *which agents
occupy a point of this edge, and in what order along it?*  Agent positions are
exact rationals (see :mod:`repro.sim.position`), but almost every operation on
them — sweeps, safe-advance queries, meeting grouping — only ever *compares*
positions on a single edge.  An :class:`EdgeFrame` therefore stores the
interior occupants of one edge as integer numerators over one common
denominator (the lattice), so that

* ordering and coincidence of occupants are single machine-int comparisons,
* comparing an occupant against an arbitrary target fraction ``a/b`` is one
  cross-multiplication (no normalisation, no allocation), and
* :class:`~fractions.Fraction` objects are materialised only at *record
  boundaries* — when a position or meeting point becomes externally visible —
  and are memoised per numerator, so the gcd normalisation inside
  ``Fraction.__new__`` is paid once per distinct lattice point.

The lattice denominator grows by least-common-multiple refinement whenever an
agent is parked at a fraction outside the current lattice (a *rescale*); all
stored numerators are scaled by the same integer factor, so the represented
rationals — and hence every record the engine emits — are unchanged.  Frames
are dropped as soon as their edge empties, which keeps denominators from
accumulating history and bounds memory by the number of concurrently occupied
edges.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict

__all__ = ["EdgeFrame"]


class EdgeFrame:
    """Integer lattice of the interior occupants of one edge.

    Attributes
    ----------
    den:
        The common denominator.  Every occupant fraction of the edge is
        ``num / den`` with ``0 < num < den``, measured in the edge's canonical
        orientation (from the endpoint with the smaller node id).
    occupants:
        Mapping ``agent name -> numerator``.
    rescales:
        How often the lattice was refined (for the engine's lattice-op
        accounting).
    """

    __slots__ = ("den", "occupants", "rescales", "_fractions")

    def __init__(self) -> None:
        self.den = 1
        self.occupants: Dict[str, int] = {}
        self.rescales = 0
        self._fractions: Dict[int, Fraction] = {}

    def fit(self, den: int) -> None:
        """Refine the lattice so that denominator ``den`` divides ``self.den``."""
        mine = self.den
        if mine % den == 0:
            return
        factor = den // gcd(mine, den)
        self.den = mine * factor
        self.occupants = {
            name: num * factor for name, num in self.occupants.items()
        }
        self.rescales += 1
        self._fractions.clear()

    def place(self, name: str, num: int, den: int) -> int:
        """Put ``name`` at canonical fraction ``num / den``; return its numerator.

        The lattice is refined first if needed, so the stored numerator is
        exact.  ``num / den`` need not be in lowest terms.
        """
        self.fit(den)
        scaled = num * (self.den // den)
        self.occupants[name] = scaled
        return scaled

    def fraction(self, num: int) -> Fraction:
        """Materialise the canonical :class:`Fraction` of lattice point ``num``.

        Memoised per numerator: ``Fraction(num, den)`` normalises to lowest
        terms, so the returned value is exactly what the pre-lattice engine
        computed for the same point.
        """
        cached = self._fractions.get(num)
        if cached is None:
            cached = Fraction(num, self.den)
            self._fractions[num] = cached
        return cached
