"""Incrementally maintained index: where is everybody, by node and by edge.

The pre-index engine answered "who can the mover meet on this edge?" by
scanning *every* agent and asking each position whether it lies on the edge —
O(agents) exact-arithmetic work per decision.  The :class:`NeighborIndex`
maintains the inverse maps instead:

* ``node_occupants`` — node id → set of agent names standing at that node;
* ``frames`` — edge key → :class:`~repro.sim.lattice.EdgeFrame` holding the
  edge's interior occupants on an integer lattice.

A sweep over edge ``{u, w}`` then consults exactly three buckets: the edge's
frame (interior coincidences), and the two endpoint occupant sets (arrival
meetings) — agents anywhere else cannot possibly lie on the edge.  The index
is the engine's single source of truth for *where agents are*; the engine
mutates it in lockstep with every position change (initial placement, partial
advance, traversal completion), and nowhere else, which is the invariant that
keeps it consistent:

* an agent is in exactly one bucket: one node set, or one frame;
* frame numerators are canonical (measured from the smaller-id endpoint) and
  strictly interior (``0 < num < den``) — endpoint coincidences are node
  occupancies by normalisation, exactly mirroring
  :meth:`repro.sim.position.Position.on_edge`;
* a frame exists iff its edge has at least one interior occupant, so idle
  edges cost nothing and lattice denominators never outlive the occupancy
  that introduced them.

``updates`` counts index mutations; the per-frame rescale counts aggregate the
lattice maintenance — together they are the engine's "index maintenance"
lattice-op tally, reported next to the comparison counts in traces.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Set, Tuple

from ..graphs.port_graph import EdgeKey
from .lattice import EdgeFrame

__all__ = ["NeighborIndex"]


class NeighborIndex:
    """Node- and edge-occupancy maps, updated as agents move."""

    __slots__ = ("node_occupants", "frames", "updates", "_dropped_rescales", "_where")

    def __init__(self) -> None:
        self.node_occupants: Dict[int, Set[str]] = {}
        self.frames: Dict[EdgeKey, EdgeFrame] = {}
        self.updates = 0
        self._dropped_rescales = 0
        #: agent name -> node id (an ``int``) or edge key (a ``tuple``).  The
        #: two location kinds are told apart by type, which spares one tuple
        #: allocation per placement on the engine's hot path.
        self._where: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def set_node(self, name: str, node: int) -> None:
        """Record that ``name`` now stands at ``node``."""
        self._remove(name)
        occupants = self.node_occupants.get(node)
        if occupants is None:
            self.node_occupants[node] = {name}
        else:
            occupants.add(name)
        self._where[name] = node
        self.updates += 1

    def set_edge(self, name: str, edge: EdgeKey, num: int, den: int) -> Fraction:
        """Record that ``name`` is at canonical fraction ``num/den`` of ``edge``.

        Returns the materialised canonical :class:`Fraction` (memoised by the
        frame), which the engine stores in the agent's visible position.
        """
        where = self._where.get(name)
        if where is not edge and where != edge:
            self._remove(name)
            self._where[name] = edge
        frame = self.frames.get(edge)
        if frame is None:
            frame = self.frames[edge] = EdgeFrame()
        scaled = frame.place(name, num, den)
        self.updates += 1
        return frame.fraction(scaled)

    def remove(self, name: str) -> None:
        """Forget ``name`` entirely (not used by the engine; for tooling)."""
        self._remove(name)
        self._where.pop(name, None)

    def _remove(self, name: str) -> None:
        where = self._where.get(name)
        if where is None:
            return
        if where.__class__ is tuple:
            frame = self.frames.get(where)
            if frame is not None:
                frame.occupants.pop(name, None)
                if not frame.occupants:
                    self._dropped_rescales += frame.rescales
                    del self.frames[where]
        else:
            occupants = self.node_occupants.get(where)
            if occupants is not None:
                occupants.discard(name)
                if not occupants:
                    del self.node_occupants[where]

    # ------------------------------------------------------------------
    # queries (simulator/tooling side; the engine reads the maps directly)
    # ------------------------------------------------------------------
    def frame_of(self, edge: EdgeKey) -> Optional[EdgeFrame]:
        """The edge's frame, or ``None`` when its interior is empty."""
        return self.frames.get(edge)

    def at_node(self, node: int) -> frozenset:
        """Names of the agents standing at ``node``."""
        return frozenset(self.node_occupants.get(node, ()))

    def location_of(self, name: str) -> Optional[Tuple[str, object]]:
        """``("node", id)`` or ``("edge", key)`` for a placed agent."""
        where = self._where.get(name)
        if where is None:
            return None
        return ("edge" if where.__class__ is tuple else "node", where)

    def rescales(self) -> int:
        """Total lattice rescales, including frames already dropped."""
        live = sum(frame.rescales for frame in self.frames.values())
        return self._dropped_rescales + live
