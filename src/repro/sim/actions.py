"""Actions, observations and meeting records exchanged with the engine.

Agent programs are Python generators.  The engine sends them
:class:`Observation` objects (what an agent is allowed to perceive: the degree
of its current node and the port by which it entered) and receives
:class:`Move` or :class:`Stop` actions in return.  Node identities are never
part of an observation — the network is anonymous.

Meetings are reported to agent *controllers* (not to the programs directly)
as :class:`MeetingEvent` objects carrying :class:`AgentSnapshot` views of the
participants' public state; see :mod:`repro.sim.agent`.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple, Optional, Tuple

__all__ = [
    "Action",
    "Move",
    "Stop",
    "Observation",
    "AgentSnapshot",
    "MeetingEvent",
]


class Action:
    """Base class of the actions an agent program may yield."""

    __slots__ = ()


class Move(Action):
    """Traverse the edge with local port number ``port`` at the current node."""

    __slots__ = ("port",)

    def __init__(self, port: int) -> None:
        self.port = port

    def __repr__(self) -> str:
        return f"Move(port={self.port})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Move) and other.port == self.port

    def __hash__(self) -> int:
        return hash(("Move", self.port))


class Stop(Action):
    """Terminate the walk and stay at the current node forever.

    A stopped agent remains a point of the embedding: other agents can still
    meet it (this is essential both for the naive baseline and for the ghost
    state of Algorithm SGL).
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "Stop()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Stop)

    def __hash__(self) -> int:
        return hash("Stop")


class Observation(NamedTuple):
    """What an agent perceives upon (re)gaining control at a node.

    Attributes
    ----------
    degree:
        Degree of the current node.
    entry_port:
        Port by which the agent entered the node, or ``None`` at its start
        node (it has not entered through any port yet).
    traversals:
        The number of edge traversals this agent has completed so far.  The
        paper's agents can count their own moves, and Algorithm SGL explicitly
        relies on this (the explorer resumes RV-asynch-poly "until it made
        Π(E(n), |L|) edge traversals").
    """

    degree: int
    entry_port: Optional[int]
    traversals: int = 0


class AgentSnapshot:
    """Public view of one agent at the instant of a meeting.

    ``public`` is a *copy* of the mutable public state the agent's controller
    exposes (its label, its bag, its state in Algorithm SGL, ...).  Mutating
    the copy has no effect on the owner.

    Snapshots sit on the engine's meeting hot path (one per participant per
    meeting), so this is a plain ``__slots__`` class rather than a dataclass;
    treat instances as immutable — the engine shares one snapshot between
    consecutive meetings while the underlying public state is unchanged.
    """

    __slots__ = ("name", "label", "status", "public")

    def __init__(
        self,
        name: str,
        label: Optional[int],
        status: str,
        public: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.label = label
        self.status = status
        self.public = {} if public is None else public

    def __repr__(self) -> str:
        return (
            f"AgentSnapshot(name={self.name!r}, label={self.label!r}, "
            f"status={self.status!r}, public={self.public!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not AgentSnapshot:
            return NotImplemented
        return (
            self.name == other.name
            and self.label == other.label
            and self.status == other.status
            and self.public == other.public
        )


class MeetingEvent:
    """A coincidence of two or more agents at one point of the embedding.

    Attributes
    ----------
    participants:
        Snapshots of every agent present at the meeting point (including the
        one whose movement produced the coincidence).
    node:
        The node id if the meeting happened at a node, else ``None``.
    edge:
        The canonical edge key if the meeting happened strictly inside an
        edge, else ``None``.
    decision_index:
        Index of the scheduler decision during which the meeting occurred —
        a discrete stand-in for the (adversary-controlled) wall-clock time.
    total_traversals:
        Total number of completed edge traversals (all agents) at the moment
        of the meeting; this is the paper's cost measure.
    """

    __slots__ = ("participants", "node", "edge", "decision_index", "total_traversals")

    def __init__(
        self,
        participants: Tuple[AgentSnapshot, ...],
        node: Optional[int],
        edge: Optional[Tuple[int, int]],
        decision_index: int,
        total_traversals: int,
    ) -> None:
        self.participants = participants
        self.node = node
        self.edge = edge
        self.decision_index = decision_index
        self.total_traversals = total_traversals

    def __repr__(self) -> str:
        return (
            f"MeetingEvent(participants={self.participants!r}, node={self.node!r}, "
            f"edge={self.edge!r}, decision_index={self.decision_index!r}, "
            f"total_traversals={self.total_traversals!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not MeetingEvent:
            return NotImplemented
        return (
            self.participants == other.participants
            and self.node == other.node
            and self.edge == other.edge
            and self.decision_index == other.decision_index
            and self.total_traversals == other.total_traversals
        )

    def names(self) -> Tuple[str, ...]:
        """Names of the participants, in snapshot order."""
        return tuple(snapshot.name for snapshot in self.participants)

    def involves(self, name: str) -> bool:
        """Return whether the agent called ``name`` took part in the meeting."""
        return any(snapshot.name == name for snapshot in self.participants)
