"""Agent controllers: the bridge between agent programs and the engine.

An :class:`AgentController` owns everything agent-side:

* the *program* — a generator produced by :meth:`AgentController.start` that
  yields :class:`~repro.sim.actions.Move` / :class:`~repro.sim.actions.Stop`
  actions and receives :class:`~repro.sim.actions.Observation` objects;
* the *public state* — a dictionary other agents can read when they meet this
  agent (labels, bags, Algorithm-SGL state, ...);
* the *meeting hook* — :meth:`AgentController.on_meeting`, called by the
  engine at the exact instant of a coincidence, which is how information is
  exchanged in the multi-agent algorithms of §4;
* the *output* — whatever the agent eventually outputs (the solved problem's
  answer); the engine can be asked to run until every agent has an output.

For the two-agent rendezvous experiments the controllers are trivial (a label
plus a program); :class:`FunctionController` wraps a plain generator function
for that purpose.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from .actions import Action, MeetingEvent, Observation

__all__ = ["AgentController", "FunctionController", "StationaryController"]

#: Type alias for agent programs.
AgentProgram = Generator[Action, Observation, None]


class AgentController:
    """Behaviour of a single mobile agent.

    Subclasses must implement :meth:`start`; the remaining hooks have sensible
    defaults (no public state, meetings ignored, no output).
    """

    def __init__(self, name: str, label: Optional[int] = None) -> None:
        self._name = name
        self._label = label
        #: Mutable public state, snapshotted and shown to other agents at
        #: meetings.  Controllers may read and write it at any time.
        self.public: Dict[str, Any] = {}
        #: The agent's output, or ``None`` while it has not produced one.
        self.output: Optional[Any] = None

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Unique name of the agent within a simulation."""
        return self._name

    @property
    def label(self) -> Optional[int]:
        """The agent's label (a strictly positive integer), if it has one."""
        return self._label

    # ------------------------------------------------------------------
    # behaviour hooks
    # ------------------------------------------------------------------
    def start(self, observation: Observation) -> AgentProgram:
        """Create the agent's program, given the observation at its start node."""
        raise NotImplementedError

    def on_meeting(self, event: MeetingEvent) -> None:
        """React to a meeting this agent took part in.

        Called synchronously by the engine at the instant of the coincidence,
        *before* the agents move any further.  The default does nothing.
        """

    def on_wake(self) -> None:
        """Called when a dormant agent is woken up (by the adversary or a visit)."""

    def has_output(self) -> bool:
        """Whether the agent has produced its final output."""
        return self.output is not None

    def public_snapshot(self) -> Dict[str, Any]:
        """Return a copy of the public state exposed to other agents."""
        return dict(self.public)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self._name!r}, label={self._label!r})"


class FunctionController(AgentController):
    """Wrap a plain generator function as a controller.

    Parameters
    ----------
    name:
        Agent name.
    program_factory:
        Callable taking the initial :class:`Observation` and returning the
        agent program generator.
    label:
        Optional agent label, exposed in meeting snapshots.
    """

    def __init__(
        self,
        name: str,
        program_factory: Callable[[Observation], AgentProgram],
        label: Optional[int] = None,
    ) -> None:
        super().__init__(name, label)
        self._program_factory = program_factory
        if label is not None:
            self.public["label"] = label

    def start(self, observation: Observation) -> AgentProgram:
        return self._program_factory(observation)


class StationaryController(AgentController):
    """An agent that never moves (used as a token / inert agent in tests).

    The paper notes that exploration of an unknown graph is equivalent to
    rendezvous with an inert agent; this controller is that inert agent.  It
    is also the semi-stationary token of Procedure ESST when the token is
    played by a dedicated entity rather than by a ghost agent.
    """

    def __init__(self, name: str, label: Optional[int] = None) -> None:
        super().__init__(name, label)
        if label is not None:
            self.public["label"] = label

    def start(self, observation: Observation) -> AgentProgram:
        def program(_obs: Observation) -> AgentProgram:
            # A generator that stops immediately: the agent stays at its node.
            return
            yield  # pragma: no cover - makes this a generator function

        return program(observation)
