"""Result records returned by the asynchronous execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .actions import MeetingEvent

__all__ = ["RunResult", "StopReason"]


class StopReason:
    """Symbolic constants describing why a simulation run ended."""

    #: The configured rendezvous agents met.
    MEETING = "meeting"
    #: Every agent produced its output (multi-agent problems of §4).
    ALL_OUTPUT = "all_output"
    #: Every agent stopped (or was never woken) without satisfying the goal.
    ALL_STOPPED = "all_stopped"
    #: The scheduler returned ``None`` — the adversary has no further moves.
    SCHEDULER_EXHAUSTED = "scheduler_exhausted"
    #: The total-traversal budget was exhausted before the goal was reached.
    COST_LIMIT = "cost_limit"


@dataclass
class RunResult:
    """Outcome of one run of the asynchronous execution engine.

    Attributes
    ----------
    reason:
        One of the :class:`StopReason` constants.
    met:
        Whether the *goal meeting* (the configured rendezvous set) occurred.
    meeting:
        The goal meeting event, if any.
    meetings:
        Every meeting event that occurred during the run, in order.
    total_traversals:
        Total number of completed edge traversals over all agents when the
        run ended — the paper's cost measure.
    traversals_by_agent:
        Completed edge traversals per agent.
    decisions:
        Number of scheduler decisions executed.
    outputs:
        Mapping of agent name to its output, for agents that produced one.
    output_cost:
        Total traversals at the moment the *last* agent produced its output
        (only meaningful when ``reason == ALL_OUTPUT``).
    """

    reason: str
    met: bool
    meeting: Optional[MeetingEvent]
    meetings: List[MeetingEvent]
    total_traversals: int
    traversals_by_agent: Dict[str, int]
    decisions: int
    outputs: Dict[str, Any] = field(default_factory=dict)
    output_cost: Optional[int] = None

    @property
    def succeeded(self) -> bool:
        """Whether the run reached its goal (a meeting or all outputs)."""
        return self.reason in (StopReason.MEETING, StopReason.ALL_OUTPUT)

    def cost(self) -> int:
        """Return the cost of the run in the paper's measure (edge traversals)."""
        if self.reason == StopReason.ALL_OUTPUT and self.output_cost is not None:
            return self.output_cost
        return self.total_traversals

    def summary(self) -> str:
        """Return a one-line human-readable summary of the run."""
        parts = [f"reason={self.reason}", f"cost={self.cost()}"]
        if self.meeting is not None:
            location = (
                f"node {self.meeting.node}"
                if self.meeting.node is not None
                else f"edge {self.meeting.edge}"
            )
            parts.append(f"meeting at {location}")
        parts.append(f"decisions={self.decisions}")
        return ", ".join(parts)
