"""The asynchronous execution engine.

This module implements the paper's execution model (§1, "The model"):

* each agent chooses its *route* on-line, one port at a time, based only on
  what it has perceived so far (its agent program);
* the adversary chooses the *walk* along that route — relative speeds,
  pauses, starvation — here discretised into scheduler decisions
  (:mod:`repro.sim.schedulers`);
* agents are points of the embedding; two agents **meet** when their points
  coincide, possibly strictly inside an edge;
* the cost of a run is the total number of completed edge traversals.

The engine is deliberately conservative about what agents can observe: an
agent program only ever receives the degree of its current node, its entry
port and its own traversal count.  All information exchange between agents
happens through the meeting hooks of their controllers, mirroring the paper's
"agents exchange information when they meet" rule of §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import (
    CostLimitExceeded,
    ProtocolError,
    SchedulerError,
    SimulationError,
)
from ..graphs.port_graph import EdgeKey, PortLabeledGraph, edge_key
from ..obs.trace import current_tracer
from .actions import AgentSnapshot, MeetingEvent, Move, Observation, Stop
from .agent import AgentController
from .position import ONE as _ONE
from .position import ZERO as _ZERO
from .position import Position
from .results import RunResult, StopReason
from .schedulers import Advance, Decision, Scheduler, Wake

__all__ = ["AgentSpec", "AsyncEngine", "EngineView", "AgentStatus"]


class AgentStatus:
    """Lifecycle states of an agent inside the engine."""

    DORMANT = "dormant"
    ACTIVE = "active"
    STOPPED = "stopped"


@dataclass
class AgentSpec:
    """Placement of one agent in a simulation.

    Attributes
    ----------
    controller:
        The agent's behaviour (program + meeting hooks + public state).
    start_node:
        The node at which the adversary initially places the agent.
    dormant:
        Whether the agent starts dormant.  Dormant agents are woken either by
        the scheduler (a :class:`~repro.sim.schedulers.Wake` decision) or by
        another agent whose point coincides with their start node, exactly as
        in §4 of the paper.
    """

    controller: AgentController
    start_node: int
    dormant: bool = False

    @property
    def name(self) -> str:
        return self.controller.name


@dataclass
class _PendingTraversal:
    """An edge traversal an agent has committed to but not yet completed."""

    from_node: int
    to_node: int
    edge: EdgeKey
    exit_port: int
    entry_port: int
    progress: Fraction = _ZERO

    def canonical_fraction(self, progress: Fraction) -> Fraction:
        """Convert traversal progress into the edge's canonical fraction."""
        return progress if self.from_node == self.edge[0] else 1 - progress


class _AgentState:
    """Engine-internal bookkeeping for one agent."""

    __slots__ = (
        "spec",
        "name",
        "controller",
        "status",
        "position",
        "program",
        "pending",
        "entry_port",
        "traversals",
    )

    def __init__(self, spec: AgentSpec, status: str, position: Position) -> None:
        self.spec = spec
        self.name = spec.name
        self.controller = spec.controller
        self.status = status
        self.position = position
        self.program: Optional[Any] = None
        self.pending: Optional[_PendingTraversal] = None
        self.entry_port: Optional[int] = None
        self.traversals = 0


class EngineView:
    """Read-only view of the engine state handed to schedulers.

    The adversary of the paper is omniscient: it sees where every agent is
    and what it is about to do.  The view exposes exactly that, plus the
    helper :meth:`max_safe_advance` used by the meeting-avoiding adversary.
    """

    def __init__(self, engine: "AsyncEngine") -> None:
        self._engine = engine

    def agent_names(self) -> List[str]:
        """Names of all agents, in registration order."""
        return [state.name for state in self._engine._agents.values()]

    def eligible_agents(self) -> List[str]:
        """Agents the adversary may currently advance (active, committed)."""
        return [
            state.name
            for state in self._engine._agents.values()
            if state.status == AgentStatus.ACTIVE and state.pending is not None
        ]

    def is_dormant(self, name: str) -> bool:
        """Whether agent ``name`` is still dormant."""
        return self._engine._agent(name).status == AgentStatus.DORMANT

    def agent_status(self, name: str) -> str:
        """Lifecycle status of agent ``name``."""
        return self._engine._agent(name).status

    def agent_position(self, name: str) -> Position:
        """Exact position of agent ``name``."""
        return self._engine._agent(name).position

    def agent_progress(self, name: str) -> Fraction:
        """Progress of the agent's committed traversal (0 if none)."""
        state = self._engine._agent(name)
        return state.pending.progress if state.pending is not None else Fraction(0)

    def agent_traversals(self, name: str) -> int:
        """Completed edge traversals of agent ``name``."""
        return self._engine._agent(name).traversals

    def total_traversals(self) -> int:
        """Total completed edge traversals over all agents."""
        return self._engine.total_traversals

    def max_safe_advance(self, name: str) -> Optional[Fraction]:
        """Largest progress the agent can be advanced to without a meeting.

        Returns ``Fraction(1)`` when the whole traversal is free of
        coincidences, a value strictly between the current progress and the
        nearest obstacle otherwise, and ``None`` if the agent has no
        committed traversal.
        """
        return self._engine._max_safe_advance(name)


class AsyncEngine:
    """Simulate a set of agents in a graph under an adversarial scheduler.

    Parameters
    ----------
    graph:
        The port-labeled graph the agents move in.
    agents:
        Agent placements.  Agent names must be unique and start nodes must
        exist in the graph.
    scheduler:
        The adversary strategy.
    rendezvous:
        Optional collection of agent names; the run stops (successfully) at
        the first meeting whose participants include *all* of these agents.
        Pass the two agents' names for the classic rendezvous problem.
    stop_when_all_output:
        Stop (successfully) once every agent's controller has produced an
        output — the termination criterion of the §4 problems.
    max_traversals:
        Budget on the total number of edge traversals; reaching it without
        the goal raises :class:`CostLimitExceeded` (or returns a partial
        result when ``on_cost_limit="return"``).  A returned result never
        reports ``total_traversals`` above the budget.
    max_decisions:
        Safety valve against schedulers that make unbounded numbers of
        zero-progress decisions.  Defaults to a generous multiple of
        ``max_traversals``.
    on_cost_limit:
        Either ``"raise"`` (default) or ``"return"``.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        agents: Sequence[AgentSpec],
        scheduler: Scheduler,
        *,
        rendezvous: Optional[Iterable[str]] = None,
        stop_when_all_output: bool = False,
        max_traversals: int = 2_000_000,
        max_decisions: Optional[int] = None,
        on_cost_limit: str = "raise",
    ) -> None:
        if not agents:
            raise SimulationError("at least one agent is required")
        if on_cost_limit not in ("raise", "return"):
            raise SimulationError("on_cost_limit must be 'raise' or 'return'")
        self._graph = graph
        self._scheduler = scheduler
        self._rendezvous: Optional[Set[str]] = set(rendezvous) if rendezvous else None
        self._stop_when_all_output = stop_when_all_output
        self._max_traversals = max_traversals
        self._max_decisions = (
            max_decisions if max_decisions is not None else 64 * max_traversals + 4096
        )
        self._on_cost_limit = on_cost_limit

        self._agents: Dict[str, _AgentState] = {}
        for spec in agents:
            if spec.name in self._agents:
                raise SimulationError(f"duplicate agent name {spec.name!r}")
            if spec.start_node not in graph:
                raise SimulationError(
                    f"start node {spec.start_node} of agent {spec.name!r} "
                    f"is not a node of the graph"
                )
            self._agents[spec.name] = _AgentState(
                spec=spec,
                status=AgentStatus.DORMANT if spec.dormant else AgentStatus.ACTIVE,
                position=Position.at_node(spec.start_node),
            )
        if self._rendezvous is not None:
            unknown = self._rendezvous - set(self._agents)
            if unknown:
                raise SimulationError(f"unknown rendezvous agents: {sorted(unknown)}")

        # The ambient tracer is captured once at construction: a scenario is
        # built and run on one thread inside the runner's ``use_tracer`` scope.
        self._tracer = current_tracer()
        self.total_traversals = 0
        self._decisions = 0
        self._meetings: List[MeetingEvent] = []
        self._goal_meeting: Optional[MeetingEvent] = None
        self._done = False
        self._reason: Optional[str] = None
        self._output_cost: Optional[int] = None
        self._view = EngineView(self)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PortLabeledGraph:
        """The graph being simulated."""
        return self._graph

    @property
    def view(self) -> EngineView:
        """The read-only view handed to schedulers."""
        return self._view

    def run(self) -> RunResult:
        """Run the simulation to completion and return the result."""
        if self._tracer is not None:
            return self._run_traced(self._tracer)
        self._bootstrap()
        while not self._done:
            self._check_passive_termination()
            if self._done:
                break
            if self._decisions >= self._max_decisions:
                raise SimulationError(
                    f"scheduler exceeded the decision budget ({self._max_decisions}); "
                    "it is probably making unbounded zero-progress decisions"
                )
            decision = self._scheduler.decide(self._view)
            self._decisions += 1
            if decision is None:
                self._finish(StopReason.SCHEDULER_EXHAUSTED)
                break
            self._apply(decision)
        return self._build_result()

    def _run_traced(self, tracer) -> RunResult:
        # Mirror of the loop above with span boundaries around the three
        # phases of every iteration.  Kept separate so the untraced path pays
        # nothing — not even a ``clock()`` call — per decision.
        clock = tracer.clock
        run_started = clock()
        try:
            t0 = clock()
            self._bootstrap()
            tracer.add_span("engine.bootstrap", t0)
            while not self._done:
                t0 = clock()
                self._check_passive_termination()
                tracer.add_span("engine.check_termination", t0)
                if self._done:
                    break
                if self._decisions >= self._max_decisions:
                    raise SimulationError(
                        f"scheduler exceeded the decision budget "
                        f"({self._max_decisions}); it is probably making "
                        "unbounded zero-progress decisions"
                    )
                t0 = clock()
                decision = self._scheduler.decide(self._view)
                tracer.add_span("scheduler.decide", t0)
                self._decisions += 1
                if decision is None:
                    self._finish(StopReason.SCHEDULER_EXHAUSTED)
                    break
                t0 = clock()
                self._apply(decision)
                tracer.add_span("engine.apply", t0)
            return self._build_result()
        finally:
            tracer.add_span("engine.run", run_started)
            tracer.count("engine.decisions", self._decisions)
            tracer.count("engine.traversals", self.total_traversals)
            tracer.count("engine.meetings", len(self._meetings))

    # ------------------------------------------------------------------
    # bootstrapping
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        # Report coincidences that exist before anybody moves (agents are
        # normally placed at distinct nodes, but tests may co-locate them).
        positions: Dict[Position, List[str]] = {}
        for state in self._agents.values():
            positions.setdefault(state.position, []).append(state.name)
        for position, names in positions.items():
            if len(names) >= 2:
                self._emit_meeting(names, position)
                if self._done:
                    return
        for state in self._agents.values():
            if state.status == AgentStatus.ACTIVE and state.program is None:
                self._start_program(state)
        self._check_output_termination()

    # ------------------------------------------------------------------
    # decision handling
    # ------------------------------------------------------------------
    def _apply(self, decision: Decision) -> None:
        if isinstance(decision, Wake):
            if self._tracer is not None:
                self._tracer.count("engine.wake_decisions")
            self._apply_wake(decision)
        elif isinstance(decision, Advance):
            if self._tracer is not None:
                self._tracer.count("engine.advance_decisions")
            self._apply_advance(decision)
        else:
            raise SchedulerError(f"unknown decision type: {decision!r}")

    def _apply_wake(self, decision: Wake) -> None:
        state = self._agent(decision.agent)
        if state.status != AgentStatus.DORMANT:
            raise SchedulerError(f"agent {decision.agent!r} is not dormant")
        self._wake(state)
        self._check_output_termination()

    def _apply_advance(self, decision: Advance) -> None:
        state = self._agent(decision.agent)
        if state.status != AgentStatus.ACTIVE or state.pending is None:
            raise SchedulerError(
                f"agent {decision.agent!r} cannot be advanced "
                f"(status={state.status}, committed={state.pending is not None})"
            )
        pending = state.pending
        target = decision.to if isinstance(decision.to, Fraction) else Fraction(decision.to)
        if target <= pending.progress or target > _ONE:
            raise SchedulerError(
                f"illegal advance of {decision.agent!r} from {pending.progress} "
                f"to {target}"
            )
        self._sweep(state, pending, pending.progress, target)
        if self._done:
            return
        if target == _ONE:
            if self.total_traversals >= self._max_traversals:
                # Completing this traversal would push the total past the
                # budget, so the budget is exhausted *now*: the run ends with
                # the agent parked where it is and the result never reports
                # ``total_traversals > max_traversals``.  Zero-cost decisions
                # (wakes, partial advances) — and hence meetings strictly
                # inside an edge — remain possible at exactly the budget.
                self._handle_cost_limit()
                return
            pending.progress = target
            self._complete_traversal(state)
        else:
            pending.progress = target
            state.position = Position.on_edge(
                pending.edge, pending.canonical_fraction(target)
            )

    # ------------------------------------------------------------------
    # movement mechanics
    # ------------------------------------------------------------------
    def _sweep(
        self,
        mover: _AgentState,
        pending: _PendingTraversal,
        start: Fraction,
        end: Fraction,
    ) -> None:
        """Detect and process every coincidence produced by the advance."""
        if self._tracer is not None:
            # One ``fraction_on`` evaluation per co-agent is the Fraction-op
            # proxy this trace reports; the comparisons it feeds are O(1) more.
            scanned = len(self._agents) - 1
            self._tracer.count("engine.sweep_calls")
            self._tracer.count("engine.sweep_agents_scanned", scanned)
            self._tracer.count("engine.fraction_ops", scanned)
        encountered: List[Tuple[Fraction, str]] = []
        edge = pending.edge
        forward = pending.from_node == edge[0]
        for other in self._agents.values():
            if other is mover:
                continue
            fraction = other.position.fraction_on(edge)
            if fraction is None:
                continue
            progress = fraction if forward else 1 - fraction
            if start < progress <= end:
                encountered.append((progress, other.name))
        if not encountered:
            return
        encountered.sort()
        # Group the encounters by exact meeting point.
        index = 0
        while index < len(encountered) and not self._done:
            progress = encountered[index][0]
            names = [mover.name]
            while index < len(encountered) and encountered[index][0] == progress:
                names.append(encountered[index][1])
                index += 1
            canonical = pending.canonical_fraction(progress)
            position = Position.on_edge(pending.edge, canonical)
            self._emit_meeting(names, position)

    def _complete_traversal(self, state: _AgentState) -> None:
        pending = state.pending
        assert pending is not None
        state.pending = None
        state.position = Position.at_node(pending.to_node)
        state.entry_port = pending.entry_port
        state.traversals += 1
        self.total_traversals += 1
        if self._done:
            return
        self._request_action(state)
        self._check_output_termination()

    def _max_safe_advance(self, name: str) -> Optional[Fraction]:
        state = self._agent(name)
        if state.pending is None:
            return None
        if self._tracer is not None:
            scanned = len(self._agents) - 1
            self._tracer.count("engine.msa_calls")
            self._tracer.count("engine.msa_agents_scanned", scanned)
            self._tracer.count("engine.fraction_ops", scanned)
        pending = state.pending
        current = pending.progress
        nearest: Optional[Fraction] = None
        forward = pending.from_node == pending.edge[0]
        for other in self._agents.values():
            if other is state:
                continue
            fraction = other.position.fraction_on(pending.edge)
            if fraction is None:
                continue
            progress = fraction if forward else 1 - fraction
            if progress > current and (nearest is None or progress < nearest):
                nearest = progress
        if nearest is None:
            return _ONE
        return (current + nearest) / 2

    # ------------------------------------------------------------------
    # meetings
    # ------------------------------------------------------------------
    def _emit_meeting(self, names: Iterable[str], position: Position) -> None:
        participants: List[str] = list(dict.fromkeys(names))
        # Wake dormant participants first: a visit to a dormant agent's start
        # node wakes it, and it takes part in the resulting exchange.
        woken: List[_AgentState] = []
        for name in participants:
            state = self._agent(name)
            if state.status == AgentStatus.DORMANT:
                woken.append(state)
        snapshots = tuple(
            AgentSnapshot(
                name=self._agent(name).name,
                label=self._agent(name).controller.label,
                status=self._agent(name).status,
                public=self._agent(name).controller.public_snapshot(),
            )
            for name in participants
        )
        event = MeetingEvent(
            participants=snapshots,
            node=position.node,
            edge=position.edge,
            decision_index=self._decisions,
            total_traversals=self.total_traversals,
        )
        self._meetings.append(event)
        if self._tracer is not None:
            self._tracer.event(
                "meeting",
                participants=participants,
                node=position.node,
                edge=list(position.edge) if position.edge is not None else None,
                decision=self._decisions,
                total_traversals=self.total_traversals,
            )
        for state in woken:
            self._wake(state, start_program=False)
        for name in participants:
            self._agent(name).controller.on_meeting(event)
        # Programs of freshly woken agents start only after the exchange, so
        # their first decision can already use the information received.
        for state in woken:
            if state.program is None and state.status == AgentStatus.ACTIVE:
                self._start_program(state)
        self._check_output_termination()
        if (
            self._rendezvous is not None
            and self._rendezvous.issubset(set(participants))
            and not self._done
        ):
            self._goal_meeting = event
            self._finish(StopReason.MEETING)

    # ------------------------------------------------------------------
    # agent program driving
    # ------------------------------------------------------------------
    def _wake(self, state: _AgentState, start_program: bool = True) -> None:
        state.status = AgentStatus.ACTIVE
        state.controller.on_wake()
        if start_program and state.program is None:
            self._start_program(state)

    def _start_program(self, state: _AgentState) -> None:
        observation = self._observe(state)
        program = state.controller.start(observation)
        state.program = program
        try:
            action = next(program)
        except StopIteration:
            self._stop_agent(state)
            return
        self._handle_action(state, action)

    def _request_action(self, state: _AgentState) -> None:
        if state.program is None or state.status != AgentStatus.ACTIVE:
            return
        observation = self._observe(state)
        try:
            action = state.program.send(observation)
        except StopIteration:
            self._stop_agent(state)
            return
        self._handle_action(state, action)

    def _handle_action(self, state: _AgentState, action: Any) -> None:
        if isinstance(action, Stop):
            self._stop_agent(state)
            return
        if not isinstance(action, Move):
            raise ProtocolError(
                f"agent {state.name!r} yielded {action!r}; expected Move or Stop"
            )
        if not state.position.is_at_node:
            raise SimulationError(
                f"agent {state.name!r} asked to move while not at a node"
            )
        node = state.position.node
        degree = self._graph.degree(node)
        if not (0 <= action.port < degree):
            raise ProtocolError(
                f"agent {state.name!r} chose port {action.port} at a node of "
                f"degree {degree}"
            )
        target, entry_port = self._graph.traverse(node, action.port)
        state.pending = _PendingTraversal(
            from_node=node,
            to_node=target,
            edge=edge_key(node, target),
            exit_port=action.port,
            entry_port=entry_port,
        )

    def _stop_agent(self, state: _AgentState) -> None:
        state.status = AgentStatus.STOPPED
        state.pending = None

    def _observe(self, state: _AgentState) -> Observation:
        if not state.position.is_at_node:
            raise SimulationError(
                f"cannot observe for agent {state.name!r}: not at a node"
            )
        node = state.position.node
        return Observation(
            degree=self._graph.degree(node),
            entry_port=state.entry_port,
            traversals=state.traversals,
        )

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def _check_passive_termination(self) -> None:
        for state in self._agents.values():
            if state.status != AgentStatus.STOPPED:
                return
        self._finish(StopReason.ALL_STOPPED)

    def _check_output_termination(self) -> None:
        if not self._stop_when_all_output or self._done:
            return
        for state in self._agents.values():
            if not state.controller.has_output():
                return
        self._output_cost = self.total_traversals
        self._finish(StopReason.ALL_OUTPUT)

    def _handle_cost_limit(self) -> None:
        if self._on_cost_limit == "raise":
            partial = self._build_result(forced_reason=StopReason.COST_LIMIT)
            raise CostLimitExceeded(
                f"total traversals exceeded the budget of {self._max_traversals}",
                partial_result=partial,
            )
        self._finish(StopReason.COST_LIMIT)

    def _finish(self, reason: str) -> None:
        self._done = True
        self._reason = reason

    # ------------------------------------------------------------------
    # result construction and small helpers
    # ------------------------------------------------------------------
    def _agent(self, name: str) -> _AgentState:
        try:
            return self._agents[name]
        except KeyError:
            raise SimulationError(f"unknown agent {name!r}") from None

    def _build_result(self, forced_reason: Optional[str] = None) -> RunResult:
        reason = forced_reason or self._reason or StopReason.ALL_STOPPED
        outputs = {
            state.name: state.controller.output
            for state in self._agents.values()
            if state.controller.has_output()
        }
        return RunResult(
            reason=reason,
            met=self._goal_meeting is not None,
            meeting=self._goal_meeting,
            meetings=list(self._meetings),
            total_traversals=self.total_traversals,
            traversals_by_agent={
                state.name: state.traversals for state in self._agents.values()
            },
            decisions=self._decisions,
            outputs=outputs,
            output_cost=self._output_cost,
        )
