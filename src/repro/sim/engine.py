"""The asynchronous execution engine.

This module implements the paper's execution model (§1, "The model"):

* each agent chooses its *route* on-line, one port at a time, based only on
  what it has perceived so far (its agent program);
* the adversary chooses the *walk* along that route — relative speeds,
  pauses, starvation — here discretised into scheduler decisions
  (:mod:`repro.sim.schedulers`);
* agents are points of the embedding; two agents **meet** when their points
  coincide, possibly strictly inside an edge;
* the cost of a run is the total number of completed edge traversals.

The engine is deliberately conservative about what agents can observe: an
agent program only ever receives the degree of its current node, its entry
port and its own traversal count.  All information exchange between agents
happens through the meeting hooks of their controllers, mirroring the paper's
"agents exchange information when they meet" rule of §4.

Internally the decision loop is organised around two layers that keep its
per-decision cost proportional to the *local* crowding of the traversed edge
rather than the total number of agents (see docs/API.md, "Engine internals"):

* a :class:`~repro.sim.neighbor_index.NeighborIndex` maps nodes and edges to
  their occupants, so sweeps and safe-advance queries consult only agents on
  (or at an endpoint of) the edge being traversed;
* traversal progress is kept as an integer numerator/denominator pair and
  compared against the per-edge lattice (:mod:`repro.sim.lattice`) by integer
  cross-multiplication; :class:`~fractions.Fraction` objects are materialised
  only where they become externally visible (positions, the scheduler view,
  error messages), which is why every emitted record is byte-identical to the
  pre-lattice engine's.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from ..exceptions import (
    CostLimitExceeded,
    ProtocolError,
    SchedulerError,
    SimulationError,
)
from ..graphs.port_graph import PortLabeledGraph
from ..obs.trace import current_tracer
from .actions import AgentSnapshot, MeetingEvent, Move, Observation, Stop
from .agent import AgentController
from .neighbor_index import NeighborIndex
from .position import ONE as _ONE
from .position import ZERO as _ZERO
from .position import Position
from .results import RunResult, StopReason
from .schedulers import Advance, Decision, RoundRobinScheduler, Scheduler, Wake

__all__ = ["AgentSpec", "AsyncEngine", "EngineView", "AgentStatus"]


class AgentStatus:
    """Lifecycle states of an agent inside the engine."""

    DORMANT = "dormant"
    ACTIVE = "active"
    STOPPED = "stopped"


@dataclass
class AgentSpec:
    """Placement of one agent in a simulation.

    Attributes
    ----------
    controller:
        The agent's behaviour (program + meeting hooks + public state).
    start_node:
        The node at which the adversary initially places the agent.
    dormant:
        Whether the agent starts dormant.  Dormant agents are woken either by
        the scheduler (a :class:`~repro.sim.schedulers.Wake` decision) or by
        another agent whose point coincides with their start node, exactly as
        in §4 of the paper.
    """

    controller: AgentController
    start_node: int
    dormant: bool = False

    @property
    def name(self) -> str:
        return self.controller.name


class _PendingTraversal:
    """An edge traversal an agent has committed to but not yet completed.

    Progress lives as the integer pair ``p_num / p_den`` (always the reduced
    form of the last ``Advance`` target); the :attr:`progress` property
    materialises the :class:`Fraction` on demand for the scheduler view and
    for error messages.
    """

    __slots__ = (
        "from_node",
        "to_node",
        "edge",
        "exit_port",
        "entry_port",
        "forward",
        "p_num",
        "p_den",
    )

    def __init__(
        self, from_node: int, to_node: int, exit_port: int, entry_port: int
    ) -> None:
        self.from_node = from_node
        self.to_node = to_node
        if from_node < to_node:
            self.edge = (from_node, to_node)
            self.forward = True
        else:
            self.edge = (to_node, from_node)
            self.forward = False
        self.exit_port = exit_port
        self.entry_port = entry_port
        self.p_num = 0
        self.p_den = 1

    @property
    def progress(self) -> Fraction:
        """Traversal progress as an exact fraction of the edge."""
        if self.p_num == 0:
            return _ZERO
        return Fraction(self.p_num, self.p_den)

    def canonical_fraction(self, progress: Fraction) -> Fraction:
        """Convert traversal progress into the edge's canonical fraction."""
        return progress if self.forward else 1 - progress


class _AgentState:
    """Engine-internal bookkeeping for one agent."""

    __slots__ = (
        "spec",
        "name",
        "controller",
        "status",
        "position",
        "program",
        "pending",
        "entry_port",
        "traversals",
        "versioned",
        "snap",
        "snap_version",
    )

    def __init__(self, spec: AgentSpec, status: str, position: Position) -> None:
        self.spec = spec
        self.name = spec.name
        self.controller = spec.controller
        self.status = status
        self.position = position
        self.program: Optional[Any] = None
        self.pending: Optional[_PendingTraversal] = None
        self.entry_port: Optional[int] = None
        self.traversals = 0
        # Controllers that maintain a ``public_version`` counter (bumped on
        # every observable public-state change) let the engine reuse one
        # meeting snapshot across meetings while nothing changed.
        self.versioned = isinstance(
            getattr(spec.controller, "public_version", None), int
        )
        self.snap: Optional[AgentSnapshot] = None
        self.snap_version = -1


class EngineView:
    """Read-only view of the engine state handed to schedulers.

    The adversary of the paper is omniscient: it sees where every agent is
    and what it is about to do.  The view exposes exactly that, plus the
    helper :meth:`max_safe_advance` used by the meeting-avoiding adversary.
    """

    def __init__(self, engine: "AsyncEngine") -> None:
        self._engine = engine

    def agent_names(self) -> List[str]:
        """Names of all agents, in registration order."""
        return [state.name for state in self._engine._agents.values()]

    def eligible_agents(self) -> List[str]:
        """Agents the adversary may currently advance (active, committed)."""
        return [
            state.name
            for state in self._engine._agents.values()
            if state.status == AgentStatus.ACTIVE and state.pending is not None
        ]

    def is_eligible(self, name: str) -> bool:
        """Whether agent ``name`` may currently be advanced.

        Membership test equivalent to ``name in eligible_agents()`` without
        building the list — schedulers probing one candidate at a time (round
        robin) stay O(1) per probe.
        """
        state = self._engine._agents.get(name)
        return (
            state is not None
            and state.status == AgentStatus.ACTIVE
            and state.pending is not None
        )

    def is_dormant(self, name: str) -> bool:
        """Whether agent ``name`` is still dormant."""
        return self._engine._agent(name).status == AgentStatus.DORMANT

    def agent_status(self, name: str) -> str:
        """Lifecycle status of agent ``name``."""
        return self._engine._agent(name).status

    def agent_position(self, name: str) -> Position:
        """Exact position of agent ``name``."""
        return self._engine._agent(name).position

    def agent_progress(self, name: str) -> Fraction:
        """Progress of the agent's committed traversal (0 if none)."""
        state = self._engine._agent(name)
        return state.pending.progress if state.pending is not None else _ZERO

    def agent_traversals(self, name: str) -> int:
        """Completed edge traversals of agent ``name``."""
        return self._engine._agent(name).traversals

    def total_traversals(self) -> int:
        """Total completed edge traversals over all agents."""
        return self._engine.total_traversals

    def max_safe_advance(self, name: str) -> Optional[Fraction]:
        """Largest progress the agent can be advanced to without a meeting.

        Returns ``Fraction(1)`` when the whole traversal is free of
        coincidences, a value strictly between the current progress and the
        nearest obstacle otherwise, and ``None`` if the agent has no
        committed traversal.
        """
        return self._engine._max_safe_advance(name)


class AsyncEngine:
    """Simulate a set of agents in a graph under an adversarial scheduler.

    Parameters
    ----------
    graph:
        The port-labeled graph the agents move in.
    agents:
        Agent placements.  Agent names must be unique and start nodes must
        exist in the graph.
    scheduler:
        The adversary strategy.
    rendezvous:
        Optional collection of agent names; the run stops (successfully) at
        the first meeting whose participants include *all* of these agents.
        Pass the two agents' names for the classic rendezvous problem.
    stop_when_all_output:
        Stop (successfully) once every agent's controller has produced an
        output — the termination criterion of the §4 problems.
    max_traversals:
        Budget on the total number of edge traversals; reaching it without
        the goal raises :class:`CostLimitExceeded` (or returns a partial
        result when ``on_cost_limit="return"``).  A returned result never
        reports ``total_traversals`` above the budget.
    max_decisions:
        Safety valve against schedulers that make unbounded numbers of
        zero-progress decisions.  Defaults to a generous multiple of
        ``max_traversals``.
    on_cost_limit:
        Either ``"raise"`` (default) or ``"return"``.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        agents: Sequence[AgentSpec],
        scheduler: Scheduler,
        *,
        rendezvous: Optional[Iterable[str]] = None,
        stop_when_all_output: bool = False,
        max_traversals: int = 2_000_000,
        max_decisions: Optional[int] = None,
        on_cost_limit: str = "raise",
    ) -> None:
        if not agents:
            raise SimulationError("at least one agent is required")
        if on_cost_limit not in ("raise", "return"):
            raise SimulationError("on_cost_limit must be 'raise' or 'return'")
        self._graph = graph
        self._adj = graph.adjacency()
        self._scheduler = scheduler
        self._rendezvous: Optional[Set[str]] = set(rendezvous) if rendezvous else None
        self._stop_when_all_output = stop_when_all_output
        self._max_traversals = max_traversals
        self._max_decisions = (
            max_decisions if max_decisions is not None else 64 * max_traversals + 4096
        )
        self._on_cost_limit = on_cost_limit

        # Node positions are interned once: every arrival at a node and every
        # arrival meeting reuses the same Position object.
        self._node_pos: Dict[int, Position] = {
            node: Position.at_node(node) for node in self._adj
        }
        self._index = NeighborIndex()

        self._agents: Dict[str, _AgentState] = {}
        for spec in agents:
            if spec.name in self._agents:
                raise SimulationError(f"duplicate agent name {spec.name!r}")
            if spec.start_node not in graph:
                raise SimulationError(
                    f"start node {spec.start_node} of agent {spec.name!r} "
                    f"is not a node of the graph"
                )
            self._agents[spec.name] = _AgentState(
                spec=spec,
                status=AgentStatus.DORMANT if spec.dormant else AgentStatus.ACTIVE,
                position=self._node_pos[spec.start_node],
            )
            self._index.set_node(spec.name, spec.start_node)
        if self._rendezvous is not None:
            unknown = self._rendezvous - set(self._agents)
            if unknown:
                raise SimulationError(f"unknown rendezvous agents: {sorted(unknown)}")

        # The ambient tracer is captured once at construction: a scenario is
        # built and run on one thread inside the runner's ``use_tracer`` scope.
        self._tracer = current_tracer()
        self.total_traversals = 0
        self._decisions = 0
        self._stopped = 0
        self._dormant_count = sum(
            1 for state in self._agents.values() if state.status == AgentStatus.DORMANT
        )
        # Output-termination checks run after every completed traversal; when
        # no controller overrides ``has_output`` the check can read the
        # ``output`` attribute directly instead of making a method call each.
        self._output_states = list(self._agents.values())
        self._fast_has_output = all(
            type(state.controller).has_output is AgentController.has_output
            for state in self._output_states
        )
        self._meetings: List[MeetingEvent] = []
        self._goal_meeting: Optional[MeetingEvent] = None
        self._done = False
        self._reason: Optional[str] = None
        self._output_cost: Optional[int] = None
        self._view = EngineView(self)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def graph(self) -> PortLabeledGraph:
        """The graph being simulated."""
        return self._graph

    @property
    def view(self) -> EngineView:
        """The read-only view handed to schedulers."""
        return self._view

    @property
    def neighbor_index(self) -> NeighborIndex:
        """The occupancy index (read-only for tooling and tests)."""
        return self._index

    def run(self) -> RunResult:
        """Run the simulation to completion and return the result."""
        if self._tracer is not None:
            return self._run_traced(self._tracer)
        scheduler = self._scheduler
        if (
            type(scheduler) is RoundRobinScheduler
            and not scheduler._wake_schedule
            and (
                scheduler._order is None
                or (
                    len(scheduler._order) == len(self._agents)
                    and set(scheduler._order) == set(self._agents)
                )
            )
        ):
            return self._run_fast_round_robin(scheduler)
        self._bootstrap()
        while not self._done:
            self._check_passive_termination()
            if self._done:
                break
            if self._decisions >= self._max_decisions:
                raise SimulationError(
                    f"scheduler exceeded the decision budget ({self._max_decisions}); "
                    "it is probably making unbounded zero-progress decisions"
                )
            decision = self._scheduler.decide(self._view)
            self._decisions += 1
            if decision is None:
                self._finish(StopReason.SCHEDULER_EXHAUSTED)
                break
            self._apply(decision)
        return self._build_result()

    def _run_fast_round_robin(self, scheduler: RoundRobinScheduler) -> RunResult:
        # Specialised main loop for the common adversary: an untraced round
        # robin whose cycle covers exactly the engine's agents and that has no
        # wake schedule.  Under it every decision is a *complete* traversal,
        # so no agent is ever strictly inside an edge: the lattice frames stay
        # empty, the only possible coincidences are arrival meetings, and the
        # index degenerates to its node buckets.  The loop below replays,
        # inline, exactly the decision sequence the generic loop produces with
        # the same scheduler — including the cursor bookkeeping on the
        # scheduler object — which is what keeps every record byte-identical
        # (the golden equivalence suite pins this against the fixtures).
        self._bootstrap()
        agents = self._agents
        if scheduler._order is None:
            scheduler._order = sorted(agents)
        states = [agents[name] for name in scheduler._order]
        n = len(states)
        active = AgentStatus.ACTIVE
        adj = self._adj
        node_pos = self._node_pos
        index = self._index
        # Every agent sits at a node for the whole run (complete advances
        # only), so occupancy is tracked in a flat node array aligned with
        # ``states`` — comparing ints replaces the per-decision churn on the
        # index's bucket maps — and the index is rebuilt, consistent, on the
        # way out.  ``nodes[j]`` mirrors exactly what the bucket maps would
        # say: an agent occupies its node from placement until its own next
        # traversal completes, whatever its status.
        nodes = [st.position.node for st in states]
        agent_names = [st.name for st in states]
        max_decisions = self._max_decisions
        max_traversals = self._max_traversals
        check_output = self._stop_when_all_output
        fast_output = self._fast_has_output
        output_states = self._output_states
        tuple_new = tuple.__new__
        observation_cls = Observation
        snapshot_cls = AgentSnapshot
        meeting_cls = MeetingEvent
        meetings_append = self._meetings.append
        no_rendezvous = self._rendezvous is None
        cursor = scheduler._cursor
        # The three monotone counters live in locals and are flushed to the
        # engine before any call that can observe them (and in the finally).
        decisions = self._decisions
        total_traversals = self.total_traversals
        index_updates = index.updates
        try:
            while not self._done:
                if self._stopped == n:
                    self._finish(StopReason.ALL_STOPPED)
                    break
                if decisions >= max_decisions:
                    raise SimulationError(
                        f"scheduler exceeded the decision budget "
                        f"({max_decisions}); it is probably making unbounded "
                        "zero-progress decisions"
                    )
                # -- scheduler.decide(view), inlined for this adversary ------
                # First probe outside the scan loop: under round-robin the
                # next agent in order is almost always ready.
                mover = cursor % n
                state = states[mover]
                if state.status == active and state.pending is not None:
                    cursor += 1
                else:
                    state = None
                    for i in range(1, n):
                        j = (cursor + i) % n
                        st = states[j]
                        if st.status == active and st.pending is not None:
                            cursor += i + 1
                            state = st
                            mover = j
                            break
                decisions += 1
                if state is None:
                    self._decisions = decisions
                    self._finish(StopReason.SCHEDULER_EXHAUSTED)
                    break
                # -- apply the complete advance ------------------------------
                pending = state.pending
                to_node = pending.to_node
                # The sweep of a complete advance with an empty frame: only
                # the arrival meeting is possible.  Scanning every agent
                # reproduces the bucket contents exactly — including the
                # mover itself on a self-loop arrival (it still occupies the
                # destination node).
                # ``in``/``index``/``count`` scan the node array in C; the
                # common no-meeting decision pays a single containment check.
                if to_node in nodes:
                    j = nodes.index(to_node)
                    meet = [agent_names[j]]
                    if nodes.count(to_node) > 1:
                        for j in range(j + 1, n):
                            if nodes[j] == to_node:
                                meet.append(agent_names[j])
                else:
                    meet = None
                if meet is not None:
                    if len(meet) > 1:
                        meet.sort()
                    if (
                        no_rendezvous
                        and self._dormant_count == 0
                        and nodes[mover] != to_node
                    ):
                        # _emit_meeting, inlined for the dominant case: no
                        # rendezvous target, nobody dormant, not a self-loop
                        # (so the mover is not among the occupants and no
                        # dedup is needed).  The event reads the counter
                        # locals directly, so no flush is required unless a
                        # callee observes engine state.
                        if len(meet) == 1:
                            pstates = (state, agents[meet[0]])
                        else:
                            pstates = [state]
                            for m in meet:
                                pstates.append(agents[m])
                        snaps = []
                        for st in pstates:
                            controller = st.controller
                            if st.versioned:
                                version = controller.public_version
                                snap = st.snap
                                if (
                                    snap is None
                                    or st.snap_version != version
                                    or snap.status != st.status
                                ):
                                    snap = snapshot_cls(
                                        st.name,
                                        controller.label,
                                        st.status,
                                        controller.public_snapshot(),
                                    )
                                    st.snap = snap
                                    st.snap_version = version
                            else:
                                snap = snapshot_cls(
                                    st.name,
                                    controller.label,
                                    st.status,
                                    controller.public_snapshot(),
                                )
                            snaps.append(snap)
                        event = meeting_cls(
                            participants=tuple(snaps),
                            node=to_node,
                            edge=None,
                            decision_index=decisions,
                            total_traversals=total_traversals,
                        )
                        meetings_append(event)
                        for st in pstates:
                            st.controller.on_meeting(event)
                        if check_output:
                            if fast_output:
                                for st in output_states:
                                    if st.controller.output is None:
                                        break
                                else:
                                    self._output_cost = total_traversals
                                    self._finish(StopReason.ALL_OUTPUT)
                                    break
                            else:
                                self._decisions = decisions
                                self.total_traversals = total_traversals
                                self._check_output_termination()
                                if self._done:
                                    break
                    else:
                        self._decisions = decisions
                        self.total_traversals = total_traversals
                        self._emit_meeting(
                            [state.name] + meet, node_pos[to_node]
                        )
                        if self._done:
                            break
                if total_traversals >= max_traversals:
                    self._decisions = decisions
                    self.total_traversals = total_traversals
                    self._handle_cost_limit()
                    break
                # -- complete the traversal ----------------------------------
                state.pending = None
                name = state.name
                nodes[mover] = to_node
                index_updates += 1
                entry = pending.entry_port
                state.entry_port = entry
                tr = state.traversals + 1
                state.traversals = tr
                total_traversals += 1
                # -- drive the agent's program one step ----------------------
                program = state.program
                if program is not None and state.status == active:
                    row = adj[to_node]
                    degree = len(row)
                    try:
                        action = program.send(
                            tuple_new(observation_cls, (degree, entry, tr))
                        )
                    except StopIteration:
                        self._stop_agent(state)
                    else:
                        if action.__class__ is Move:
                            port = action.port
                            if 0 <= port < degree:
                                target, entry_port = row[port]
                                if to_node < target:
                                    pending.edge = (to_node, target)
                                    pending.forward = True
                                else:
                                    pending.edge = (target, to_node)
                                    pending.forward = False
                                pending.from_node = to_node
                                pending.to_node = target
                                pending.exit_port = port
                                pending.entry_port = entry_port
                                pending.p_num = 0
                                pending.p_den = 1
                                state.pending = pending
                            else:
                                raise ProtocolError(
                                    f"agent {name!r} chose port {port} at a "
                                    f"node of degree {degree}"
                                )
                        else:
                            self._handle_action(state, action)
                if check_output and not self._done:
                    if fast_output:
                        for st in output_states:
                            if st.controller.output is None:
                                break
                        else:
                            self._output_cost = total_traversals
                            self._finish(StopReason.ALL_OUTPUT)
                    else:
                        self._decisions = decisions
                        self.total_traversals = total_traversals
                        self._check_output_termination()
        finally:
            self._decisions = decisions
            self.total_traversals = total_traversals
            scheduler._cursor = cursor
            # Re-sync the index with the node array so post-run queries see
            # exactly the state incremental maintenance would have left.
            node_occupants = index.node_occupants
            where = index._where
            node_occupants.clear()
            for j, st in enumerate(states):
                node = nodes[j]
                # Positions are tracked only in the node array while the loop
                # runs (nothing inside reads ``state.position``); materialise
                # the interned Position objects on the way out.
                st.position = node_pos[node]
                occ = node_occupants.get(node)
                if occ is None:
                    node_occupants[node] = {st.name}
                else:
                    occ.add(st.name)
                where[st.name] = node
            index.updates = index_updates
        return self._build_result()

    def _run_traced(self, tracer) -> RunResult:
        # Mirror of the loop above with span boundaries around the three
        # phases of every iteration.  Kept separate so the untraced path pays
        # nothing — not even a ``clock()`` call — per decision.
        clock = tracer.clock
        run_started = clock()
        try:
            t0 = clock()
            self._bootstrap()
            tracer.add_span("engine.bootstrap", t0)
            while not self._done:
                t0 = clock()
                self._check_passive_termination()
                tracer.add_span("engine.check_termination", t0)
                if self._done:
                    break
                if self._decisions >= self._max_decisions:
                    raise SimulationError(
                        f"scheduler exceeded the decision budget "
                        f"({self._max_decisions}); it is probably making "
                        "unbounded zero-progress decisions"
                    )
                t0 = clock()
                decision = self._scheduler.decide(self._view)
                tracer.add_span("scheduler.decide", t0)
                self._decisions += 1
                if decision is None:
                    self._finish(StopReason.SCHEDULER_EXHAUSTED)
                    break
                t0 = clock()
                self._apply(decision)
                tracer.add_span("engine.apply", t0)
            return self._build_result()
        finally:
            tracer.add_span("engine.run", run_started)
            tracer.count("engine.decisions", self._decisions)
            tracer.count("engine.traversals", self.total_traversals)
            tracer.count("engine.meetings", len(self._meetings))
            tracer.count("engine.index_updates", self._index.updates)
            tracer.count("engine.lattice_rescales", self._index.rescales())

    # ------------------------------------------------------------------
    # bootstrapping
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        # Report coincidences that exist before anybody moves (agents are
        # normally placed at distinct nodes, but tests may co-locate them).
        # Initial positions are always nodes, so grouping by node id is
        # grouping by position.
        by_node: Dict[int, List[str]] = {}
        for state in self._agents.values():
            by_node.setdefault(state.position.node, []).append(state.name)
        for node, names in by_node.items():
            if len(names) >= 2:
                self._emit_meeting(names, self._node_pos[node])
                if self._done:
                    return
        for state in self._agents.values():
            if state.status == AgentStatus.ACTIVE and state.program is None:
                self._start_program(state)
        self._check_output_termination()

    # ------------------------------------------------------------------
    # decision handling
    # ------------------------------------------------------------------
    def _apply(self, decision: Decision) -> None:
        cls = decision.__class__
        if cls is Advance:
            if self._tracer is not None:
                self._tracer.count("engine.advance_decisions")
            self._apply_advance(decision)
        elif cls is Wake:
            if self._tracer is not None:
                self._tracer.count("engine.wake_decisions")
            self._apply_wake(decision)
        elif isinstance(decision, Wake):
            if self._tracer is not None:
                self._tracer.count("engine.wake_decisions")
            self._apply_wake(decision)
        elif isinstance(decision, Advance):
            if self._tracer is not None:
                self._tracer.count("engine.advance_decisions")
            self._apply_advance(decision)
        else:
            raise SchedulerError(f"unknown decision type: {decision!r}")

    def _apply_wake(self, decision: Wake) -> None:
        state = self._agent(decision.agent)
        if state.status != AgentStatus.DORMANT:
            raise SchedulerError(f"agent {decision.agent!r} is not dormant")
        self._wake(state)
        self._check_output_termination()

    def _apply_advance(self, decision: Advance) -> None:
        state = self._agent(decision.agent)
        if state.status != AgentStatus.ACTIVE or state.pending is None:
            raise SchedulerError(
                f"agent {decision.agent!r} cannot be advanced "
                f"(status={state.status}, committed={state.pending is not None})"
            )
        pending = state.pending
        target = decision.to
        if target.__class__ is not Fraction and not isinstance(target, Fraction):
            target = Fraction(target)
        t_num = target.numerator
        t_den = target.denominator
        p_num = pending.p_num
        p_den = pending.p_den
        # target <= progress  ⇔  t_num * p_den <= p_num * t_den;
        # target > 1          ⇔  t_num > t_den.
        if t_num * p_den <= p_num * t_den or t_num > t_den:
            raise SchedulerError(
                f"illegal advance of {decision.agent!r} from {pending.progress} "
                f"to {target}"
            )
        tracer = self._tracer
        if tracer is not None:
            t0 = tracer.clock()
            self._sweep(state, pending, p_num, p_den, t_num, t_den)
            tracer.add_span("engine.apply.sweep", t0)
        else:
            self._sweep(state, pending, p_num, p_den, t_num, t_den)
        if self._done:
            return
        if t_num == t_den:
            if self.total_traversals >= self._max_traversals:
                # Completing this traversal would push the total past the
                # budget, so the budget is exhausted *now*: the run ends with
                # the agent parked where it is and the result never reports
                # ``total_traversals > max_traversals``.  Zero-cost decisions
                # (wakes, partial advances) — and hence meetings strictly
                # inside an edge — remain possible at exactly the budget.
                self._handle_cost_limit()
                return
            pending.p_num = t_num
            pending.p_den = t_den
            self._complete_traversal(state)
        else:
            pending.p_num = t_num
            pending.p_den = t_den
            c_num = t_num if pending.forward else t_den - t_num
            if tracer is not None:
                t0 = tracer.clock()
                fraction = self._index.set_edge(state.name, pending.edge, c_num, t_den)
                tracer.add_span("engine.apply.index", t0)
            else:
                fraction = self._index.set_edge(state.name, pending.edge, c_num, t_den)
            state.position = Position.interior(pending.edge, fraction)

    # ------------------------------------------------------------------
    # movement mechanics
    # ------------------------------------------------------------------
    def _sweep(
        self,
        mover: _AgentState,
        pending: _PendingTraversal,
        p_num: int,
        p_den: int,
        t_num: int,
        t_den: int,
    ) -> None:
        """Detect and process every coincidence produced by the advance.

        Only the traversed edge's occupants can coincide with the mover:
        interior occupants come from the edge's lattice frame, arrival
        meetings from the destination node's occupant set.  Origin-node
        occupants sit at progress 0 and can never satisfy
        ``start < progress``, so they are not even examined.  All progress
        comparisons are integer cross-multiplications.
        """
        index = self._index
        edge = pending.edge
        frame = index.frames.get(edge)
        scanned = 0
        hits: Optional[List] = None
        den = 0
        if frame is not None:
            den = frame.den
            forward = pending.forward
            lo = p_num * den  # occupant d qualifies iff d * p_den > lo ...
            hi = t_num * den  # ... and d * t_den <= hi
            mover_name = mover.name
            for name, num in frame.occupants.items():
                if name == mover_name:
                    continue
                scanned += 1
                d = num if forward else den - num
                if d * p_den > lo and d * t_den <= hi:
                    if hits is None:
                        hits = []
                    hits.append((d, name))
        arrivals: Optional[List[str]] = None
        if t_num == t_den:
            occupants = index.node_occupants.get(pending.to_node)
            if occupants:
                scanned += len(occupants)
                arrivals = sorted(occupants)
        if self._tracer is not None:
            # The legacy ``fraction_ops`` name now tallies lattice operations:
            # one integer comparison pair per occupant examined.
            self._tracer.count("engine.sweep_calls")
            self._tracer.count("engine.sweep_agents_scanned", scanned)
            self._tracer.count("engine.fraction_ops", scanned)
        if hits is None and arrivals is None:
            return
        if hits is not None:
            hits.sort()
            forward = pending.forward
            mover_name = mover.name
            i = 0
            n = len(hits)
            while i < n and not self._done:
                d = hits[i][0]
                names = [mover_name]
                while i < n and hits[i][0] == d:
                    names.append(hits[i][1])
                    i += 1
                c_num = d if forward else den - d
                position = Position.interior(edge, frame.fraction(c_num))
                self._emit_meeting(names, position)
        if arrivals is not None and not self._done:
            self._emit_meeting(
                [mover.name] + arrivals, self._node_pos[pending.to_node]
            )

    def _complete_traversal(self, state: _AgentState) -> None:
        pending = state.pending
        assert pending is not None
        state.pending = None
        to_node = pending.to_node
        tracer = self._tracer
        if tracer is not None:
            t0 = tracer.clock()
            self._index.set_node(state.name, to_node)
            tracer.add_span("engine.apply.index", t0)
        else:
            self._index.set_node(state.name, to_node)
        state.position = self._node_pos[to_node]
        state.entry_port = pending.entry_port
        state.traversals += 1
        self.total_traversals += 1
        if self._done:
            return
        self._request_action(state)
        self._check_output_termination()

    def _max_safe_advance(self, name: str) -> Optional[Fraction]:
        state = self._agent(name)
        pending = state.pending
        if pending is None:
            return None
        index = self._index
        frame = index.frames.get(pending.edge)
        p_num = pending.p_num
        p_den = pending.p_den
        scanned = 0
        nearest_d: Optional[int] = None
        den = 0
        if frame is not None:
            den = frame.den
            forward = pending.forward
            lo = p_num * den  # occupant d is an obstacle iff d * p_den > lo
            mover_name = state.name
            for oname, num in frame.occupants.items():
                if oname == mover_name:
                    continue
                scanned += 1
                d = num if forward else den - num
                if d * p_den > lo and (nearest_d is None or d < nearest_d):
                    nearest_d = d
        destination = index.node_occupants.get(pending.to_node)
        if destination:
            scanned += len(destination)
        if self._tracer is not None:
            self._tracer.count("engine.msa_calls")
            self._tracer.count("engine.msa_agents_scanned", scanned)
            self._tracer.count("engine.fraction_ops", scanned)
        if nearest_d is not None:
            # Interior obstacles are strictly below 1, so the nearest interior
            # occupant wins over any agent waiting at the destination node.
            nearest = frame.fraction(nearest_d)
            return (pending.progress + nearest) / 2
        if destination:
            return (pending.progress + 1) / 2
        return _ONE

    # ------------------------------------------------------------------
    # meetings
    # ------------------------------------------------------------------
    def _emit_meeting(self, names: Iterable[str], position: Position) -> None:
        agents = self._agents
        if type(names) is list and len(names) == 2 and names[0] != names[1]:
            # The dominant case — mover plus one occupant — needs no dedup.
            participants: List[str] = names
        else:
            participants = list(dict.fromkeys(names))
        states = [agents[name] for name in participants]
        # Wake dormant participants first: a visit to a dormant agent's start
        # node wakes it, and it takes part in the resulting exchange.
        if self._dormant_count:
            woken: List[_AgentState] = [
                state for state in states if state.status == AgentStatus.DORMANT
            ]
        else:
            woken = []
        snaps: List[AgentSnapshot] = []
        for state in states:
            controller = state.controller
            if state.versioned:
                # ``public_version`` changes on every observable public-state
                # change, so an unchanged (version, status) pair means the
                # previous snapshot is still an exact copy and can be shared.
                version = controller.public_version
                snap = state.snap
                if snap is None or state.snap_version != version or snap.status != state.status:
                    snap = AgentSnapshot(
                        state.name,
                        controller.label,
                        state.status,
                        controller.public_snapshot(),
                    )
                    state.snap = snap
                    state.snap_version = version
            else:
                snap = AgentSnapshot(
                    state.name,
                    controller.label,
                    state.status,
                    controller.public_snapshot(),
                )
            snaps.append(snap)
        snapshots = tuple(snaps)
        event = MeetingEvent(
            participants=snapshots,
            node=position.node,
            edge=position.edge,
            decision_index=self._decisions,
            total_traversals=self.total_traversals,
        )
        self._meetings.append(event)
        if self._tracer is not None:
            self._tracer.event(
                "meeting",
                participants=participants,
                node=position.node,
                edge=list(position.edge) if position.edge is not None else None,
                decision=self._decisions,
                total_traversals=self.total_traversals,
            )
        for state in woken:
            self._wake(state, start_program=False)
        for state in states:
            state.controller.on_meeting(event)
        # Programs of freshly woken agents start only after the exchange, so
        # their first decision can already use the information received.
        for state in woken:
            if state.program is None and state.status == AgentStatus.ACTIVE:
                self._start_program(state)
        # _check_output_termination, inlined: meetings are the hot caller.
        if self._stop_when_all_output and not self._done:
            if self._fast_has_output:
                for state in self._output_states:
                    if state.controller.output is None:
                        break
                else:
                    self._output_cost = self.total_traversals
                    self._finish(StopReason.ALL_OUTPUT)
            else:
                self._check_output_termination()
        if (
            self._rendezvous is not None
            and self._rendezvous.issubset(participants)
            and not self._done
        ):
            self._goal_meeting = event
            self._finish(StopReason.MEETING)

    # ------------------------------------------------------------------
    # agent program driving
    # ------------------------------------------------------------------
    def _wake(self, state: _AgentState, start_program: bool = True) -> None:
        if state.status == AgentStatus.DORMANT:
            self._dormant_count -= 1
        state.status = AgentStatus.ACTIVE
        state.controller.on_wake()
        if start_program and state.program is None:
            self._start_program(state)

    def _start_program(self, state: _AgentState) -> None:
        observation = self._observe(state)
        program = state.controller.start(observation)
        state.program = program
        try:
            action = next(program)
        except StopIteration:
            self._stop_agent(state)
            return
        self._handle_action(state, action)

    def _request_action(self, state: _AgentState) -> None:
        if state.program is None or state.status != AgentStatus.ACTIVE:
            return
        observation = self._observe(state)
        try:
            action = state.program.send(observation)
        except StopIteration:
            self._stop_agent(state)
            return
        self._handle_action(state, action)

    def _handle_action(self, state: _AgentState, action: Any) -> None:
        cls = action.__class__
        if cls is Move:
            pass
        elif cls is Stop or isinstance(action, Stop):
            self._stop_agent(state)
            return
        elif not isinstance(action, Move):
            raise ProtocolError(
                f"agent {state.name!r} yielded {action!r}; expected Move or Stop"
            )
        position = state.position
        if position.node is None:
            raise SimulationError(
                f"agent {state.name!r} asked to move while not at a node"
            )
        node = position.node
        row = self._adj[node]
        port = action.port
        if not (0 <= port < len(row)):
            raise ProtocolError(
                f"agent {state.name!r} chose port {port} at a node of "
                f"degree {len(row)}"
            )
        target, entry_port = row[port]
        state.pending = _PendingTraversal(node, target, port, entry_port)

    def _stop_agent(self, state: _AgentState) -> None:
        if state.status != AgentStatus.STOPPED:
            self._stopped += 1
        state.status = AgentStatus.STOPPED
        state.pending = None

    def _observe(self, state: _AgentState) -> Observation:
        position = state.position
        if position.node is None:
            raise SimulationError(
                f"cannot observe for agent {state.name!r}: not at a node"
            )
        return Observation(
            degree=len(self._adj[position.node]),
            entry_port=state.entry_port,
            traversals=state.traversals,
        )

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def _check_passive_termination(self) -> None:
        if self._stopped == len(self._agents):
            self._finish(StopReason.ALL_STOPPED)

    def _check_output_termination(self) -> None:
        if not self._stop_when_all_output or self._done:
            return
        if self._fast_has_output:
            for state in self._output_states:
                if state.controller.output is None:
                    return
        else:
            for state in self._output_states:
                if not state.controller.has_output():
                    return
        self._output_cost = self.total_traversals
        self._finish(StopReason.ALL_OUTPUT)

    def _handle_cost_limit(self) -> None:
        if self._on_cost_limit == "raise":
            partial = self._build_result(forced_reason=StopReason.COST_LIMIT)
            raise CostLimitExceeded(
                f"total traversals exceeded the budget of {self._max_traversals}",
                partial_result=partial,
            )
        self._finish(StopReason.COST_LIMIT)

    def _finish(self, reason: str) -> None:
        self._done = True
        self._reason = reason

    # ------------------------------------------------------------------
    # result construction and small helpers
    # ------------------------------------------------------------------
    def _agent(self, name: str) -> _AgentState:
        try:
            return self._agents[name]
        except KeyError:
            raise SimulationError(f"unknown agent {name!r}") from None

    def _build_result(self, forced_reason: Optional[str] = None) -> RunResult:
        reason = forced_reason or self._reason or StopReason.ALL_STOPPED
        outputs = {
            state.name: state.controller.output
            for state in self._agents.values()
            if state.controller.has_output()
        }
        return RunResult(
            reason=reason,
            met=self._goal_meeting is not None,
            meeting=self._goal_meeting,
            meetings=list(self._meetings),
            total_traversals=self.total_traversals,
            traversals_by_agent={
                state.name: state.traversals for state in self._agents.values()
            },
            decisions=self._decisions,
            outputs=outputs,
            output_cost=self._output_cost,
        )
