"""Adversarial schedulers: the asynchronous adversary of the paper.

In the paper the adversary chooses, for every agent, an arbitrary continuous
walk along the route the agent selects: it controls speeds, can stop agents,
and can starve one agent while the other works, subject only to every started
edge traversal finishing eventually.  The engine discretises this power into a
sequence of *decisions*; a scheduler is the adversary strategy producing them.

Available decisions
-------------------
* :class:`Advance` — move one agent along its committed edge up to an absolute
  progress fraction (``1`` completes the traversal).
* :class:`Wake` — wake a dormant agent (the adversary chooses wake-up times).

Schedulers provided
-------------------
* :class:`RoundRobinScheduler` — fair alternation of complete traversals; the
  closest analogue of a synchronous execution.
* :class:`RandomScheduler` — random (optionally biased) interleaving.
* :class:`LazyScheduler` — starves one agent until the others have performed a
  given number of traversals or have all stopped; with no threshold this is
  the *delay-until-stop* adversary used against the exponential baseline.
* :class:`GreedyAvoidingScheduler` — a meeting-avoiding adversary with bounded
  starvation ("patience"): it parks agents just short of any coincidence and
  completes a traversal that forces a meeting only when the patience of some
  agent is exhausted.  With unbounded patience it approximates the paper's
  worst case (see DESIGN.md §2, substitution 2).

All schedulers honour an optional ``wake_schedule`` mapping agent names to the
total-traversal count at which the adversary wakes them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import SchedulerError
from ..runtime.registry import SCHEDULERS

__all__ = [
    "Decision",
    "Advance",
    "Wake",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "LazyScheduler",
    "GreedyAvoidingScheduler",
]


class Decision:
    """Base class of scheduler decisions."""

    __slots__ = ()


@dataclass(frozen=True)
class Advance(Decision):
    """Advance ``agent`` along its committed edge to absolute progress ``to``.

    ``to`` must exceed the agent's current progress and is at most 1;
    ``to == 1`` completes the traversal.
    """

    __slots__ = ("agent", "to")

    agent: str
    to: Fraction


#: Shared constant so that fair schedulers do not allocate a Fraction per decision.
_ONE = Fraction(1)

#: ``Advance(name, 1)`` is frozen and agent names are few, so the fair
#: schedulers share one completion decision per agent instead of allocating
#: one per decision.
_COMPLETE_CACHE: Dict[str, Advance] = {}


def complete(agent: str) -> Advance:
    """Shorthand for an :class:`Advance` that completes the traversal."""
    decision = _COMPLETE_CACHE.get(agent)
    if decision is None:
        decision = _COMPLETE_CACHE[agent] = Advance(agent, _ONE)
    return decision


@dataclass(frozen=True)
class Wake(Decision):
    """Wake the dormant agent ``agent``."""

    __slots__ = ("agent",)

    agent: str


class Scheduler:
    """Base class of adversary strategies.

    Subclasses implement :meth:`choose`; the base class takes care of the
    optional wake schedule.  ``view`` is the engine's read-only view (see
    :class:`repro.sim.engine.EngineView`).
    """

    def __init__(self, wake_schedule: Optional[Dict[str, int]] = None) -> None:
        self._wake_schedule = dict(wake_schedule or {})
        #: Sorted, still-dormant portion of the wake schedule (lazily built).
        #: Woken agents never become dormant again, so pruning them preserves
        #: the decision sequence while keeping the per-decision scan short.
        self._wake_pending: Optional[List[Tuple[str, int]]] = None

    # ------------------------------------------------------------------
    def decide(self, view) -> Optional[Decision]:
        """Return the next decision, or ``None`` if the adversary is done."""
        wake = self._pending_wake(view)
        if wake is not None:
            return wake
        return self.choose(view)

    def choose(self, view) -> Optional[Decision]:
        """Strategy-specific decision (wake handling already done)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _pending_wake(self, view) -> Optional[Wake]:
        schedule = self._wake_schedule
        if not schedule:
            return None
        pending = self._wake_pending
        if pending is None:
            pending = self._wake_pending = sorted(schedule.items())
        if not pending:
            return None
        total = view.total_traversals()
        is_dormant = view.is_dormant
        result: Optional[Wake] = None
        prune = False
        for name, threshold in pending:
            if is_dormant(name):
                if result is None and total >= threshold:
                    result = Wake(name)
                    if not prune:
                        break
            else:
                prune = True
        if prune:
            self._wake_pending = [item for item in pending if is_dormant(item[0])]
        return result

    @staticmethod
    def _sorted_eligible(view) -> List[str]:
        return sorted(view.eligible_agents())


class RoundRobinScheduler(Scheduler):
    """Alternate complete edge traversals between agents in a fixed cycle."""

    def __init__(
        self,
        order: Optional[Sequence[str]] = None,
        wake_schedule: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(wake_schedule)
        self._order = list(order) if order is not None else None
        self._cursor = 0

    def choose(self, view) -> Optional[Decision]:
        is_eligible = getattr(view, "is_eligible", None)
        if is_eligible is None:
            return self._choose_scan(view)
        if self._order is None:
            self._order = sorted(view.agent_names())
        order = self._order
        n = len(order)
        cursor = self._cursor
        for i in range(n):
            name = order[(cursor + i) % n]
            if is_eligible(name):
                self._cursor = cursor + i + 1
                return complete(name)
        # Nobody in the fixed cycle is eligible: either nobody is (the run is
        # over for this adversary) or the eligible agents sit outside the
        # cycle.  The cursor moves exactly as far as the probes above did.
        eligible = view.eligible_agents()
        if not eligible:
            return None
        self._cursor = cursor + n
        return complete(sorted(eligible)[0])

    def _choose_scan(self, view) -> Optional[Decision]:
        # Fallback for minimal view objects without ``is_eligible``.
        eligible = set(view.eligible_agents())
        if not eligible:
            return None
        if self._order is None:
            self._order = sorted(view.agent_names())
        for _ in range(len(self._order)):
            name = self._order[self._cursor % len(self._order)]
            self._cursor += 1
            if name in eligible:
                return complete(name)
        # Fall back to any eligible agent not present in the fixed order.
        return complete(sorted(eligible)[0])


class RandomScheduler(Scheduler):
    """Complete the traversal of a randomly chosen eligible agent.

    ``weights`` optionally biases the choice (e.g. make one agent ten times
    faster than the other); unknown agents get weight 1.
    """

    def __init__(
        self,
        seed: int = 0,
        weights: Optional[Dict[str, float]] = None,
        wake_schedule: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(wake_schedule)
        self._rng = random.Random(seed)
        self._weights = dict(weights or {})

    def choose(self, view) -> Optional[Decision]:
        eligible = self._sorted_eligible(view)
        if not eligible:
            return None
        weights = [max(self._weights.get(name, 1.0), 0.0) for name in eligible]
        if sum(weights) <= 0:
            weights = [1.0] * len(eligible)
        name = self._rng.choices(eligible, weights=weights, k=1)[0]
        return complete(name)


class LazyScheduler(Scheduler):
    """Starve one agent while the others run.

    Parameters
    ----------
    starved:
        Name of the starved agent.
    release_after:
        Release the starved agent once the *other* agents have jointly
        completed this many traversals.  ``None`` means "only release when no
        other agent can move any more" — the *delay-until-stop* adversary.
    """

    def __init__(
        self,
        starved: str,
        release_after: Optional[int] = None,
        wake_schedule: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(wake_schedule)
        self._starved = starved
        self._release_after = release_after
        self._released = False
        self._cursor = 0

    @property
    def released(self) -> bool:
        """Whether the starved agent has been released."""
        return self._released

    def choose(self, view) -> Optional[Decision]:
        eligible = self._sorted_eligible(view)
        if not eligible:
            return None
        others = [name for name in eligible if name != self._starved]
        if not self._released:
            others_cost = sum(
                view.agent_traversals(name)
                for name in view.agent_names()
                if name != self._starved
            )
            threshold_reached = (
                self._release_after is not None and others_cost >= self._release_after
            )
            if threshold_reached or not others:
                self._released = True
        if not self._released and others:
            name = others[self._cursor % len(others)]
            self._cursor += 1
            return complete(name)
        # Released: behave like round-robin over everybody still eligible.
        name = eligible[self._cursor % len(eligible)]
        self._cursor += 1
        return complete(name)


class GreedyAvoidingScheduler(Scheduler):
    """A meeting-avoiding adversary with bounded starvation.

    The adversary tries to prevent coincidences for as long as it legally can:

    * it prefers to complete traversals that cause no meeting;
    * when an agent cannot complete its traversal without a meeting, it is
      *parked* — advanced to just short of the obstacle — and other agents
      move instead;
    * every time an agent is passed over its "starvation" counter increases;
      once the counter reaches ``patience`` the adversary must let that agent
      complete its traversal, even if that forces a meeting.  This models the
      paper's requirement that every started traversal finishes eventually.

    Larger ``patience`` values make the adversary stronger (closer to the
    paper's unconstrained adversary) and the measured cost larger.
    """

    def __init__(
        self,
        patience: int = 64,
        wake_schedule: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(wake_schedule)
        if patience < 1:
            raise SchedulerError("patience must be at least 1")
        self._patience = patience
        self._passed_over: Dict[str, int] = {}

    def choose(self, view) -> Optional[Decision]:
        eligible = self._sorted_eligible(view)
        if not eligible:
            return None
        for name in eligible:
            self._passed_over.setdefault(name, 0)

        safe: List[str] = []
        blocked: List[str] = []
        for name in eligible:
            if view.max_safe_advance(name) == _ONE:
                safe.append(name)
            else:
                blocked.append(name)

        # An agent whose patience is exhausted must complete now, meetings or not.
        exhausted = [
            name for name in eligible if self._passed_over[name] >= self._patience
        ]
        if exhausted:
            chosen = max(exhausted, key=lambda name: (self._passed_over[name], name))
            return self._complete(chosen, eligible)

        if safe:
            # Relieve the most-starved agent whose completion is harmless.
            chosen = max(safe, key=lambda name: (self._passed_over[name], name))
            return self._complete(chosen, eligible)

        # Nobody can complete without a meeting and nobody is forced yet:
        # park the most-starved blocked agent just short of its obstacle.
        chosen = max(blocked, key=lambda name: (self._passed_over[name], name))
        target = view.max_safe_advance(chosen)
        for name in eligible:
            self._passed_over[name] += 1
        current = view.agent_progress(chosen)
        if target is None or target <= current:
            # No room to park: fall back to completing (forced meeting).
            return complete(chosen)
        return Advance(chosen, target)

    def _complete(self, chosen: str, eligible: Iterable[str]) -> Advance:
        for name in eligible:
            if name != chosen:
                self._passed_over[name] += 1
        self._passed_over[chosen] = 0
        return complete(chosen)


# ----------------------------------------------------------------------
# runtime registry entries
# ----------------------------------------------------------------------
# The named adversaries of the experiment suite.  Factories take the run's
# seed plus free-form parameters and ignore what they do not use, so one
# scenario-spec parameter bag serves every adversary.

@SCHEDULERS.register("round_robin")
def _make_round_robin(seed: int = 0, **_params) -> RoundRobinScheduler:
    return RoundRobinScheduler()


@SCHEDULERS.register("random")
def _make_random(seed: int = 0, **_params) -> RandomScheduler:
    return RandomScheduler(seed=seed)


@SCHEDULERS.register("lazy")
def _make_lazy(
    seed: int = 0, starved: str = "agent-2", release_after: int = 64, **_params
) -> LazyScheduler:
    return LazyScheduler(starved, release_after=release_after)


@SCHEDULERS.register("delay_until_stop")
def _make_delay_until_stop(
    seed: int = 0, starved: str = "agent-2", **_params
) -> LazyScheduler:
    return LazyScheduler(starved, release_after=None)


@SCHEDULERS.register("avoider")
def _make_avoider(seed: int = 0, patience: int = 64, **_params) -> GreedyAvoidingScheduler:
    return GreedyAvoidingScheduler(patience=patience)
