"""Asynchronous adversarial execution of mobile agents.

This package implements the paper's execution model: agents choose routes,
an adversarial scheduler chooses how fast they move along them, and agents
meet when their points coincide (possibly inside an edge).

Public API
----------
* :class:`~repro.sim.engine.AsyncEngine`, :class:`~repro.sim.engine.AgentSpec`
* actions and observations: :class:`~repro.sim.actions.Move`,
  :class:`~repro.sim.actions.Stop`, :class:`~repro.sim.actions.Observation`,
  :class:`~repro.sim.actions.MeetingEvent`
* controllers: :class:`~repro.sim.agent.AgentController`,
  :class:`~repro.sim.agent.FunctionController`,
  :class:`~repro.sim.agent.StationaryController`
* adversaries: :class:`~repro.sim.schedulers.RoundRobinScheduler`,
  :class:`~repro.sim.schedulers.RandomScheduler`,
  :class:`~repro.sim.schedulers.LazyScheduler`,
  :class:`~repro.sim.schedulers.GreedyAvoidingScheduler`
* results: :class:`~repro.sim.results.RunResult`,
  :class:`~repro.sim.results.StopReason`
"""

from .actions import AgentSnapshot, MeetingEvent, Move, Observation, Stop
from .agent import AgentController, FunctionController, StationaryController
from .engine import AgentSpec, AgentStatus, AsyncEngine, EngineView
from .position import Position
from .results import RunResult, StopReason
from .schedulers import (
    Advance,
    GreedyAvoidingScheduler,
    LazyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    Wake,
)

__all__ = [
    "AgentSnapshot",
    "MeetingEvent",
    "Move",
    "Observation",
    "Stop",
    "AgentController",
    "FunctionController",
    "StationaryController",
    "AgentSpec",
    "AgentStatus",
    "AsyncEngine",
    "EngineView",
    "Position",
    "RunResult",
    "StopReason",
    "Advance",
    "Wake",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "LazyScheduler",
    "GreedyAvoidingScheduler",
]
