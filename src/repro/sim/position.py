"""Exact positions of agents inside the embedded graph.

The paper's agents are points moving inside an embedding of the graph in
which every edge is a segment.  For meeting detection the only thing that
matters is *where on which edge* an agent is, so a position is either

* ``at node v``, or
* ``inside edge {u, w}`` at a parametric fraction measured from the endpoint
  with the smaller node id (the *canonical orientation*).

Fractions are :class:`fractions.Fraction` instances, so coincidence tests are
exact — the greedy meeting-avoiding adversary parks agents arbitrarily close
to one another and floating point would eventually misjudge a coincidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Tuple

from ..exceptions import SimulationError
from ..graphs.port_graph import EdgeKey

__all__ = ["Position", "ZERO", "ONE"]

#: Shared Fraction constants; positions and sweeps compare against these
#: constantly, and creating fresh ``Fraction`` objects on every edge traversal
#: is measurably expensive.
ZERO = Fraction(0)
ONE = Fraction(1)


@dataclass(frozen=True)
class Position:
    """An exact point of the embedding: a node, or an interior point of an edge.

    Exactly one of the following holds:

    * ``node is not None`` and ``edge is None`` — the agent is at a node;
    * ``edge is not None`` and ``0 < fraction < 1`` — the agent is strictly
      inside ``edge``, at ``fraction`` measured from ``edge[0]``.

    Positions with ``fraction`` equal to 0 or 1 are normalised to node
    positions by the constructors below, so equality of positions is exactly
    coincidence of points.
    """

    node: Optional[int] = None
    edge: Optional[EdgeKey] = None
    fraction: Optional[Fraction] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def at_node(node: int) -> "Position":
        """Return the position of node ``node``."""
        return Position(node=node, edge=None, fraction=None)

    @staticmethod
    def interior(edge: EdgeKey, fraction: Fraction) -> "Position":
        """Unchecked constructor for a point *strictly inside* ``edge``.

        The caller guarantees ``0 < fraction < 1`` in canonical orientation —
        the engine's lattice layer (:mod:`repro.sim.lattice`) only hands out
        interior fractions, so re-validating and re-normalising on every
        parked agent would be pure overhead.  Use :meth:`on_edge` whenever the
        fraction is not already proven interior.
        """
        return Position(node=None, edge=edge, fraction=fraction)

    @staticmethod
    def on_edge(edge: EdgeKey, fraction: Fraction) -> "Position":
        """Return the point at ``fraction`` (from ``edge[0]``) on ``edge``.

        Fractions 0 and 1 are normalised to the corresponding endpoint nodes.
        """
        fraction = Fraction(fraction)
        if fraction < 0 or fraction > 1:
            raise SimulationError(f"edge fraction {fraction} outside [0, 1]")
        if fraction == 0:
            return Position.at_node(edge[0])
        if fraction == 1:
            return Position.at_node(edge[1])
        return Position(node=None, edge=edge, fraction=fraction)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    @property
    def is_at_node(self) -> bool:
        """Whether the position is a node (rather than an edge interior)."""
        return self.node is not None

    @property
    def is_inside_edge(self) -> bool:
        """Whether the position is strictly inside an edge."""
        return self.edge is not None

    def fraction_on(self, edge: EdgeKey) -> Optional[Fraction]:
        """Return this position as a fraction of ``edge`` (from ``edge[0]``).

        Returns ``None`` if the position does not lie on ``edge`` (including
        at-node positions at nodes that are not endpoints of ``edge``).
        """
        if self.edge is not None:
            return self.fraction if self.edge == edge else None
        if self.node == edge[0]:
            return ZERO
        if self.node == edge[1]:
            return ONE
        return None

    def describe(self) -> str:
        """Return a short human-readable description (for traces and errors)."""
        if self.is_at_node:
            return f"node {self.node}"
        return f"edge {self.edge} @ {self.fraction}"
