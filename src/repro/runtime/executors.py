"""Sweep execution backends: serial and process-pool.

``run_sweep`` turns a :class:`~repro.runtime.spec.SweepSpec` (or any iterable
of :class:`~repro.runtime.spec.ScenarioSpec`) into a
:class:`~repro.runtime.records.SweepResult`.  The executor is pluggable:

* :class:`SerialExecutor` — run every cell in-process, in order.  Supports a
  live cost-model override, which is what the experiment drivers use.
* :class:`ProcessPoolExecutor` — fan the cells out over worker processes.
  Specs are picklable by construction and each cell carries its own seed, so
  the records are identical to a serial run — only the wall-clock changes.

Both backends preserve cell order and call an optional progress callback
``progress(done, total, record)`` as records arrive.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterable, List, Optional, Union

from ..exploration.cost_model import CostModel
from .records import RunRecord, SweepResult
from .runner import run
from .spec import ScenarioSpec, SweepSpec

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "run_sweep",
]

ProgressCallback = Callable[[int, int, RunRecord], None]


class Executor:
    """Strategy interface: execute specs, return records in spec order."""

    def map_specs(
        self,
        specs: List[ScenarioSpec],
        model: Optional[CostModel] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunRecord]:
        raise NotImplementedError


class SerialExecutor(Executor):
    """Run every cell in the current process, one after the other."""

    def map_specs(
        self,
        specs: List[ScenarioSpec],
        model: Optional[CostModel] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunRecord]:
        records: List[RunRecord] = []
        total = len(specs)
        for index, spec in enumerate(specs):
            record = run(spec, model=model)
            records.append(record)
            if progress is not None:
                progress(index + 1, total, record)
        return records


def _run_cell(payload):
    """Top-level worker entry point (must be picklable)."""
    spec, model = payload
    return run(spec, model=model)


class ProcessPoolExecutor(Executor):
    """Fan cells out over a ``concurrent.futures`` process pool.

    ``max_workers=None`` lets the pool pick one worker per CPU.  The cost
    model override is pickled along with each spec; the default
    (``model=None``) resolves the spec's named cost model inside the worker,
    which also keeps each worker's exploration-sequence caches local.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def map_specs(
        self,
        specs: List[ScenarioSpec],
        model: Optional[CostModel] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunRecord]:
        total = len(specs)
        if total == 0:
            return []
        records: List[Optional[RunRecord]] = [None] * total
        done = 0
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        ) as pool:
            futures = {
                pool.submit(_run_cell, (spec, model)): index
                for index, spec in enumerate(specs)
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                record = future.result()
                records[index] = record
                done += 1
                if progress is not None:
                    progress(done, total, record)
        return [record for record in records if record is not None]


def make_executor(jobs: Optional[int] = None) -> Executor:
    """``jobs`` ≤ 1 (or ``None``) → serial; otherwise a pool of ``jobs`` workers."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessPoolExecutor(max_workers=jobs)


def run_sweep(
    sweep: Union[SweepSpec, Iterable[ScenarioSpec]],
    executor: Optional[Executor] = None,
    model: Optional[CostModel] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Execute every cell of ``sweep`` and collect a :class:`SweepResult`.

    ``sweep`` is either a declarative :class:`SweepSpec` grid or an explicit
    iterable of scenarios (for non-rectangular sweeps such as the adversary
    ablation's scheduler/patience pairs).  Records come back in cell order
    regardless of the executor.
    """
    if isinstance(sweep, SweepSpec):
        specs = list(sweep.cells())
        sweep_spec: Optional[SweepSpec] = sweep
    else:
        specs = list(sweep)
        sweep_spec = None
    executor = executor if executor is not None else SerialExecutor()
    records = executor.map_specs(specs, model=model, progress=progress)
    return SweepResult(records=records, sweep=sweep_spec)
