"""Sweep execution backends: serial, process-pool and work-queue.

``run_sweep`` turns a :class:`~repro.runtime.spec.SweepSpec` (or any iterable
of :class:`~repro.runtime.spec.ScenarioSpec`) into a
:class:`~repro.runtime.records.SweepResult`.  The executor is pluggable:

* :class:`SerialExecutor` — run every cell in-process, in order.  Supports a
  live cost-model override, which is what the experiment drivers use.
* :class:`ProcessPoolExecutor` — fan the cells out over worker processes.
  Specs are picklable by construction and each cell carries its own seed, so
  the records are identical to a serial run — only the wall-clock changes.
* :class:`~repro.distrib.executor.QueueExecutor` (``make_executor(jobs,
  kind="queue")``) — dispatch the cells as leased work units on a queue
  directory and drain them with worker *processes* that may live on other
  machines; see :mod:`repro.distrib`.  Imported lazily to keep the runtime
  facade free of the distributed machinery.

Both backends preserve cell order and call an optional progress callback
``progress(done, total, record)`` as records arrive; a callback declaring a
fourth parameter additionally receives ``cached`` — whether the record was
served from the result store rather than executed.

``run_sweep(..., store=..., resume=True)`` integrates the content-addressed
result store (:mod:`repro.store`): cached cells are served without touching
the executor, only the missing cells are dispatched, and every fresh record
is persisted *as it arrives* (not at the end), so a killed sweep loses at
most its in-flight cells.
"""

from __future__ import annotations

import concurrent.futures
import inspect
import time
import warnings
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Union

from ..exceptions import ReproError
from ..exploration.cost_model import CostModel
from ..obs.metrics import get_registry
from .records import RunRecord, SweepResult
from .runner import run
from .spec import ScenarioSpec, SweepSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..store.base import ResultStore

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "make_executor",
    "run_sweep",
]

#: ``(done, total, record)`` or ``(done, total, record, cached)``.
ProgressCallback = Callable[..., None]


def _progress_notifier(
    progress: Optional[ProgressCallback],
) -> Optional[Callable[[int, int, RunRecord, bool], None]]:
    """Adapt a user callback to the internal 4-argument form.

    Three-parameter callbacks (the historical signature) keep working; a
    callback with four or more positional parameters (or ``*args``) also
    gets the ``cached`` flag.
    """
    if progress is None:
        return None
    try:
        parameters = inspect.signature(progress).parameters.values()
        positional = [
            p
            for p in parameters
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        wants_cached = len(positional) >= 4 or any(
            p.kind == p.VAR_POSITIONAL for p in parameters
        )
    except (TypeError, ValueError):
        wants_cached = False
    if wants_cached:
        return progress
    return lambda done, total, record, _cached: progress(done, total, record)


class Executor:
    """Strategy interface: execute specs, return records in spec order.

    ``trace=True`` asks for each cell to run under a tracer, so every
    returned record carries ``extra["trace"]`` (see :func:`repro.runtime
    .runner.run`).  Executors that cannot honour it (tracing is a
    per-process concern) set :attr:`supports_trace` to ``False``;
    :func:`run_sweep` then degrades to an untraced run with a warning
    instead of failing the sweep.
    """

    #: Whether ``map_specs(..., trace=True)`` is honoured by this executor.
    supports_trace = True

    def map_specs(
        self,
        specs: List[ScenarioSpec],
        model: Optional[CostModel] = None,
        progress: Optional[ProgressCallback] = None,
        trace: bool = False,
    ) -> List[RunRecord]:
        raise NotImplementedError


class SerialExecutor(Executor):
    """Run every cell in the current process, one after the other."""

    def map_specs(
        self,
        specs: List[ScenarioSpec],
        model: Optional[CostModel] = None,
        progress: Optional[ProgressCallback] = None,
        trace: bool = False,
    ) -> List[RunRecord]:
        cell_seconds = get_registry().histogram(
            "repro_cell_seconds", "Wall time per sweep cell"
        )
        records: List[RunRecord] = []
        total = len(specs)
        for index, spec in enumerate(specs):
            started = time.perf_counter()
            record = run(spec, model=model, trace=trace)
            cell_seconds.observe(time.perf_counter() - started, executor="serial")
            records.append(record)
            if progress is not None:
                progress(index + 1, total, record)
        return records


def _run_cell(payload):
    """Top-level worker entry point (must be picklable)."""
    spec, model, trace = payload
    return run(spec, model=model, trace=trace)


class ProcessPoolExecutor(Executor):
    """Fan cells out over a ``concurrent.futures`` process pool.

    ``max_workers=None`` lets the pool pick one worker per CPU.  The cost
    model override is pickled along with each spec; the default
    (``model=None``) resolves the spec's named cost model inside the worker,
    which also keeps each worker's exploration-sequence caches local.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def map_specs(
        self,
        specs: List[ScenarioSpec],
        model: Optional[CostModel] = None,
        progress: Optional[ProgressCallback] = None,
        trace: bool = False,
    ) -> List[RunRecord]:
        total = len(specs)
        if total == 0:
            return []
        # Completion latency as seen from the parent: queueing + execution.
        cell_seconds = get_registry().histogram(
            "repro_cell_seconds", "Wall time per sweep cell"
        )
        records: List[Optional[RunRecord]] = [None] * total
        done = 0
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        ) as pool:
            submitted = time.perf_counter()
            futures = {
                pool.submit(_run_cell, (spec, model, trace)): index
                for index, spec in enumerate(specs)
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                record = future.result()
                cell_seconds.observe(time.perf_counter() - submitted, executor="pool")
                records[index] = record
                done += 1
                if progress is not None:
                    progress(done, total, record)
        return [record for record in records if record is not None]


def make_executor(
    jobs: Optional[int] = None, kind: Optional[str] = None, **options
) -> Executor:
    """Build an executor by ``kind``: ``"serial"``, ``"pool"`` or ``"queue"``.

    With ``kind=None`` (the historical signature) the choice follows
    ``jobs``: ≤ 1 (or ``None``) → serial; otherwise a pool of ``jobs``
    workers.  ``kind="queue"`` builds a
    :class:`~repro.distrib.executor.QueueExecutor` with ``jobs`` worker
    processes (default 2); ``options`` (``queue_dir``, ``unit_size``,
    ``lease_ttl``, …) pass through to it.
    """
    if kind == "queue":
        from ..distrib.executor import QueueExecutor

        return QueueExecutor(workers=jobs if jobs and jobs > 0 else 2, **options)
    if options:
        raise ReproError(f"executor kind {kind!r} takes no options: {sorted(options)}")
    if kind == "serial":
        return SerialExecutor()
    if kind == "pool":
        return ProcessPoolExecutor(max_workers=jobs)
    if kind is not None:
        raise ReproError(
            f"unknown executor kind {kind!r}; choose serial, pool or queue"
        )
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessPoolExecutor(max_workers=jobs)


def run_sweep(
    sweep: Union[SweepSpec, Iterable[ScenarioSpec]],
    executor: Optional[Executor] = None,
    model: Optional[CostModel] = None,
    progress: Optional[ProgressCallback] = None,
    store: Optional["ResultStore"] = None,
    resume: bool = True,
    trace: bool = False,
) -> SweepResult:
    """Execute every cell of ``sweep`` and collect a :class:`SweepResult`.

    ``sweep`` is either a declarative :class:`SweepSpec` grid or an explicit
    iterable of scenarios (for non-rectangular sweeps such as the adversary
    ablation's scheduler/patience pairs).  Records come back in cell order
    regardless of the executor.

    With a ``store`` (any :class:`~repro.store.base.ResultStore`), every
    fresh record is persisted the moment it completes — under either
    executor — so an interrupted sweep can be re-issued and will only run
    the cells it is missing.  ``resume=True`` (the default) serves cells
    already in the store without executing them; cache hits are reported
    through the progress callback first (in cell order, with
    ``cached=True``), then misses as the executor finishes them.  The
    result's table is byte-identical whether cells were computed or served.
    ``resume=False`` re-executes everything but still persists (existing
    keys are left untouched — cells are deterministic in their spec).

    ``trace=True`` executes every *fresh* cell under a tracer (cached cells
    are served as stored; the trace is not part of the cell's identity).
    An executor that cannot trace (``supports_trace = False``, e.g. the
    queue executor) degrades gracefully: the sweep runs untraced and a
    ``RuntimeWarning`` says so.
    """
    if isinstance(sweep, SweepSpec):
        specs = list(sweep.cells())
        sweep_spec: Optional[SweepSpec] = sweep
    else:
        specs = list(sweep)
        sweep_spec = None
    executor = executor if executor is not None else SerialExecutor()
    if trace and not getattr(executor, "supports_trace", True):
        warnings.warn(
            f"{type(executor).__name__} cannot trace cells; running the sweep "
            "untraced (use the serial or pool executor for extra['trace'] payloads)",
            RuntimeWarning,
            stacklevel=2,
        )
        trace = False
    notify = _progress_notifier(progress)
    cells_total = get_registry().counter(
        "repro_sweep_cells_total", "Sweep cells by outcome (cached vs executed)"
    )
    if store is None:
        plain = (
            None
            if notify is None
            else lambda done, total, record: notify(done, total, record, False)
        )
        records = executor.map_specs(specs, model=model, progress=plain, trace=trace)
        cells_total.inc(len(records), status="executed")
        return SweepResult(records=records, sweep=sweep_spec)

    total = len(specs)
    slots: List[Optional[RunRecord]] = [None] * total
    hits = 0
    if resume:
        for index, spec in enumerate(specs):
            cached = store.get(spec.key())
            if cached is not None:
                slots[index] = cached
                hits += 1
    done = 0
    for record in slots:
        if record is not None:
            done += 1
            if notify is not None:
                notify(done, total, record, True)
    pending = [(index, specs[index]) for index in range(total) if slots[index] is None]
    progress_state = {"done": done}

    def on_fresh(_completed: int, _pending_total: int, record: RunRecord) -> None:
        store.put(record)
        progress_state["done"] += 1
        if notify is not None:
            notify(progress_state["done"], total, record, False)

    fresh = executor.map_specs(
        [spec for _index, spec in pending], model=model, progress=on_fresh, trace=trace
    )
    for (index, _spec), record in zip(pending, fresh):
        slots[index] = record
    store.flush()
    cells_total.inc(hits, status="cached")
    cells_total.inc(len(fresh), status="executed")
    return SweepResult(
        records=[record for record in slots if record is not None],
        sweep=sweep_spec,
        cache_hits=hits,
        executed=len(fresh),
    )
