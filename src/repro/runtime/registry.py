"""String-keyed registries behind the scenario runtime.

Everything a :class:`~repro.runtime.spec.ScenarioSpec` names symbolically —
graph families, adversarial schedulers, problem kinds, cost models — resolves
through one of the registries below.  Components self-register at import time
with the decorator API::

    from repro.runtime.registry import SCHEDULERS

    @SCHEDULERS.register("round_robin")
    def _round_robin(seed=0, **_ignored):
        return RoundRobinScheduler()

This replaces the seed repository's triplication of ad-hoc name tables
(``SCHEDULER_NAMES`` + ``make_scheduler`` in the experiment drivers,
``FAMILY_BUILDERS`` in the graph module, per-entry-point dispatch in the
CLI): names resolve strictly through the registries defined here, so a
family or adversary registered once is immediately usable from specs, the
CLI, the experiments, the benchmarks and the examples.  The experiment
layer follows the same pattern with its own registry
(:data:`repro.analysis.experiment_spec.EXPERIMENTS`).

This module deliberately imports nothing but the exception hierarchy, so it
can be imported from anywhere in the package without cycles.  Registration
happens in the module that defines the component (``graphs/families.py``,
``sim/schedulers.py``, ``exploration/cost_model.py``, ``runtime/runner.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from ..exceptions import RegistryError

__all__ = [
    "Registry",
    "GRAPH_FAMILIES",
    "SCHEDULERS",
    "PROBLEMS",
    "COST_MODELS",
    "INTERLEAVERS",
]


class Registry:
    """An ordered, string-keyed registry of factory callables.

    The registry is dict-like (``name in registry``, ``registry[name]``,
    ``sorted(registry)``, ``len(registry)``) so existing code that iterated
    the old ad-hoc tables keeps working.  ``registry[name]`` raises
    ``KeyError`` (the mapping contract); :meth:`resolve` and :meth:`create`
    raise :class:`~repro.exceptions.RegistryError` with the available names.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Callable[..., Any]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, name: str, factory: Optional[Callable[..., Any]] = None
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``name``; usable as a decorator.

        Duplicate names are rejected: a registry maps each name to exactly
        one factory for the lifetime of the process.
        """
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} names must be non-empty strings, got {name!r}")

        def _record(func: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._entries:
                raise RegistryError(f"duplicate {self.kind} name {name!r}")
            self._entries[name] = func
            return func

        if factory is not None:
            return _record(factory)
        return _record

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def resolve(self, name: str) -> Callable[..., Any]:
        """Return the factory registered under ``name`` or raise ``RegistryError``."""
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._entries)}"
            ) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the entry registered under ``name``."""
        return self.resolve(name)(*args, **kwargs)

    def names(self) -> Tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._entries)

    # ------------------------------------------------------------------
    # mapping protocol (compatibility with the old ad-hoc dict tables)
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Callable[..., Any]:
        return self._entries[name]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        return self._entries.keys()

    def items(self):
        return self._entries.items()

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {sorted(self._entries)})"


#: Graph families: ``factory(n, seed=0) -> PortLabeledGraph``.
GRAPH_FAMILIES = Registry("graph family")

#: Adversaries: ``factory(seed=0, **params) -> Scheduler``.
SCHEDULERS = Registry("scheduler")

#: Problem kinds: ``factory(spec, graph, model) -> RunRecord``.
PROBLEMS = Registry("problem")

#: Cost models: ``factory() -> CostModel``.
COST_MODELS = Registry("cost model")

#: Tick interleaving models (the tick-asynchronous analogue of the
#: continuous-time adversaries): ``factory(seed=0, **params) -> Interleaver``.
INTERLEAVERS = Registry("interleaver")
