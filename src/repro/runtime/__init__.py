"""The unified scenario runtime: declarative specs, registries, batched runs.

This package is *the* way to execute anything in the repository:

>>> from repro.runtime import ScenarioSpec, run
>>> record = run(ScenarioSpec(problem="rendezvous", family="ring", size=8))
>>> record.ok
True

and, batched over a grid (serial or multi-process):

>>> from repro.runtime import SweepSpec, run_sweep
>>> result = run_sweep(SweepSpec(sizes=(4, 6, 8), schedulers=("round_robin",)))
>>> result.all_ok
True

Layout
------
* :mod:`~repro.runtime.registry` — string-keyed registries (graph families,
  schedulers, problem kinds, cost models) with a decorator ``register()`` API;
* :mod:`~repro.runtime.spec` — frozen, JSON-round-trippable
  :class:`ScenarioSpec` / :class:`SweepSpec`;
* :mod:`~repro.runtime.records` — uniform :class:`RunRecord` /
  :class:`SweepResult` with aggregation helpers;
* :mod:`~repro.runtime.runner` — ``run(spec) -> RunRecord``;
* :mod:`~repro.runtime.executors` — ``run_sweep(...)`` with pluggable serial
  and process-pool backends.

The registries, specs and records are imported eagerly (they have no heavy
dependencies); the runner and executors — which pull in the whole algorithm
stack — load lazily on first attribute access, so low-level modules can
register themselves here without import cycles.
"""

from __future__ import annotations

from .records import RunRecord, SweepResult
from .registry import (
    COST_MODELS,
    GRAPH_FAMILIES,
    INTERLEAVERS,
    PROBLEMS,
    SCHEDULERS,
    Registry,
)
from .spec import SPEC_KEY_VERSION, ScenarioSpec, SweepSpec, spec_key

__all__ = [
    "Registry",
    "GRAPH_FAMILIES",
    "SCHEDULERS",
    "PROBLEMS",
    "COST_MODELS",
    "INTERLEAVERS",
    "ScenarioSpec",
    "SweepSpec",
    "spec_key",
    "SPEC_KEY_VERSION",
    "RunRecord",
    "SweepResult",
    # lazily loaded:
    "run",
    "build_graph",
    "build_scheduler",
    "build_cost_model",
    "run_sweep",
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "make_executor",
]

_LAZY_RUNNER = {"run", "build_graph", "build_scheduler", "build_cost_model"}
_LAZY_EXECUTORS = {
    "run_sweep",
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "make_executor",
}


def __getattr__(name: str):
    if name in _LAZY_RUNNER:
        from . import runner

        return getattr(runner, name)
    if name in _LAZY_EXECUTORS:
        from . import executors

        return getattr(executors, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
