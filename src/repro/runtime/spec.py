"""Declarative, JSON-round-trippable scenario and sweep specifications.

A :class:`ScenarioSpec` is a frozen value object describing *one* run — the
graph, the agents, the adversary, the budget and the problem being solved —
without holding any live object.  Because every field is a plain value the
spec pickles and JSON-round-trips by construction, which is what lets the
sweep runtime ship cells to worker processes and lets experiments be stored
next to their results.

A :class:`SweepSpec` is a grid over scenario dimensions (families, sizes,
seeds, schedulers, label sets, scheduler parameter sets, problems, team
sizes); :meth:`SweepSpec.cells` enumerates the concrete scenarios in a fixed
deterministic order, so two executions of the same sweep — serial or in a
process pool — always produce records in the same order.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, fields, replace
from fractions import Fraction
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from ..exceptions import ReproError
from .registry import COST_MODELS, GRAPH_FAMILIES, PROBLEMS, SCHEDULERS

__all__ = ["ScenarioSpec", "SweepSpec", "ParamItems", "spec_key", "SPEC_KEY_VERSION"]

#: Version of the content-hash schema used by :func:`spec_key`.  Bump this
#: whenever the meaning of a spec field (or the set of fields) changes in a
#: way that makes previously stored results incomparable — every existing
#: store entry then misses cleanly instead of being served stale.
SPEC_KEY_VERSION = 1

#: Normalised key/value parameter bag: a sorted tuple of ``(key, value)``
#: pairs.  Hashable, picklable and JSON-round-trippable, unlike a dict.
ParamItems = Tuple[Tuple[str, Any], ...]


def _freeze_params(params: Any) -> ParamItems:
    """Normalise a mapping / item sequence into a sorted tuple of pairs."""
    if params is None:
        return ()
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = [(key, value) for key, value in params]
    return tuple(sorted((str(key), value) for key, value in items))


def _freeze_ints(values: Any) -> Optional[Tuple[int, ...]]:
    if values is None:
        return None
    return tuple(int(value) for value in values)


def _freeze_value(value: Any) -> Any:
    """Recursively freeze an arbitrary initial value into a hashable shape.

    Mappings become sorted ``(key, value)`` pair tuples, sequences and sets
    become tuples; scalars pass through.  The frozen shape is what travels in
    the spec (and hence in team-member values handed to Algorithm SGL).
    """
    if isinstance(value, Mapping):
        return tuple(sorted((str(key), _freeze_value(item)) for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze_value(item) for item in value))
    return value


def _listify(value: Any) -> Any:
    """Recursively convert tuples to lists (the JSON-facing inverse of freezing)."""
    if isinstance(value, tuple):
        return [_listify(item) for item in value]
    return value


def canonical_json(data: Any) -> str:
    """Serialise ``data`` deterministically: sorted keys, no whitespace."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def spec_key(spec: "ScenarioSpec") -> str:
    """Content hash of a scenario: sha256 over its canonical JSON form.

    The key is what the result store addresses records by.  Two specs get the
    same key exactly when they describe the same computation: every field of
    :meth:`ScenarioSpec.to_dict` participates **except** ``name``, which is a
    display label (the same cell computed by experiment E1 or by an ad-hoc
    sweep should hit the same cache entry).  The hash input is prefixed with
    :data:`SPEC_KEY_VERSION` so schema changes invalidate cleanly.
    """
    data = spec.to_dict()
    data.pop("name", None)
    payload = f"repro.ScenarioSpec.v{SPEC_KEY_VERSION}:{canonical_json(data)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to run one scenario, as plain values.

    Attributes
    ----------
    problem:
        Problem kind (a :data:`~repro.runtime.registry.PROBLEMS` name):
        ``"rendezvous"``, ``"baseline"``, ``"esst"`` or ``"teams"``.
    family, size, seed:
        Graph family name, requested size and seed (the seed feeds both the
        randomised families and the seeded schedulers).
    labels:
        Agent labels.  ``None`` applies the problem's default placement
        (labels ``(6, 11)`` for the two rendezvous agents; ``3 + 2 i`` for
        team member ``i``).
    starts:
        Start nodes, parallel to ``labels``.  ``None`` applies the default
        placement rule (antipodal for rendezvous, evenly spread for teams).
    team_size:
        Number of agents for the ``"teams"`` problem when ``labels`` is
        ``None``.
    values:
        Initial values carried by the team members (gossiping inputs),
        parallel to the members.  Mappings/sequences are frozen into sorted
        pair tuples / tuples so the spec stays hashable.
    dormant:
        Indices of the team members that start dormant (woken when an active
        teammate walks over their start node).
    token_node:
        Token position for ``"esst"``; ``None`` means the highest-numbered
        node (unless ``token_edge`` places it inside an edge).
    token_edge, token_fraction:
        Mid-edge token position for ``"esst"``: the token sits strictly
        inside edge ``token_edge`` at parametric fraction ``token_fraction``
        (a ``"p/q"`` string, measured from the smaller-id endpoint; default
        ``"1/2"``).  Mutually exclusive with ``token_node``.
    scheduler, scheduler_params:
        Adversary name (a :data:`~repro.runtime.registry.SCHEDULERS` name)
        and its keyword parameters (e.g. ``{"patience": 256}``).
    problem_params:
        Additional problem-specific parameters as a frozen key/value bag
        (e.g. the ``"figures"`` problem's trajectory ``kind`` and ``k``).
    cost_model:
        Cost-model name (a :data:`~repro.runtime.registry.COST_MODELS`
        name); serial callers may instead pass a live model to ``run()``.
    max_traversals, on_cost_limit:
        The engine budget and what to do when it is hit.
    """

    problem: str = "rendezvous"
    family: str = "ring"
    size: int = 6
    seed: int = 0
    labels: Optional[Tuple[int, ...]] = None
    starts: Optional[Tuple[int, ...]] = None
    team_size: Optional[int] = None
    values: Optional[Tuple[Any, ...]] = None
    dormant: Optional[Tuple[int, ...]] = None
    token_node: Optional[int] = None
    token_edge: Optional[Tuple[int, int]] = None
    token_fraction: Optional[str] = None
    scheduler: str = "round_robin"
    scheduler_params: ParamItems = ()
    problem_params: ParamItems = ()
    cost_model: str = "simulation"
    max_traversals: int = 2_000_000
    on_cost_limit: str = "return"
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "labels", _freeze_ints(self.labels))
        object.__setattr__(self, "starts", _freeze_ints(self.starts))
        object.__setattr__(self, "dormant", _freeze_ints(self.dormant))
        if self.values is not None:
            object.__setattr__(
                self, "values", tuple(_freeze_value(value) for value in self.values)
            )
        if self.token_edge is not None:
            u, v = (int(end) for end in self.token_edge)
            object.__setattr__(self, "token_edge", (min(u, v), max(u, v)))
        if self.token_fraction is not None:
            fraction = Fraction(str(self.token_fraction))
            object.__setattr__(
                self, "token_fraction", f"{fraction.numerator}/{fraction.denominator}"
            )
        object.__setattr__(
            self, "scheduler_params", _freeze_params(self.scheduler_params)
        )
        object.__setattr__(
            self, "problem_params", _freeze_params(self.problem_params)
        )

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    @property
    def scheduler_kwargs(self) -> Dict[str, Any]:
        """The scheduler parameters as a keyword dict."""
        return dict(self.scheduler_params)

    @property
    def problem_kwargs(self) -> Dict[str, Any]:
        """The problem-specific parameters as a keyword dict."""
        return dict(self.problem_params)

    def key(self) -> str:
        """The spec's content hash (see :func:`spec_key`)."""
        return spec_key(self)

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """Return a copy with ``changes`` applied (specs are immutable)."""
        return replace(self, **changes)

    def validate(self) -> "ScenarioSpec":
        """Check every symbolic name against its registry; return ``self``.

        Validation is explicit (not done at construction) so that specs can
        be built before the defining modules are imported; the runner always
        validates before running.
        """
        if self.problem not in PROBLEMS:
            raise ReproError(
                f"unknown problem {self.problem!r}; available: {sorted(PROBLEMS)}"
            )
        if self.family not in GRAPH_FAMILIES:
            raise ReproError(
                f"unknown graph family {self.family!r}; "
                f"available: {sorted(GRAPH_FAMILIES)}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ReproError(
                f"unknown scheduler {self.scheduler!r}; available: {sorted(SCHEDULERS)}"
            )
        if self.cost_model not in COST_MODELS:
            raise ReproError(
                f"unknown cost model {self.cost_model!r}; "
                f"available: {sorted(COST_MODELS)}"
            )
        if self.size < 1:
            raise ReproError(f"graph size must be positive, got {self.size}")
        if self.max_traversals < 1:
            raise ReproError("max_traversals must be positive")
        if self.on_cost_limit not in ("raise", "return"):
            raise ReproError("on_cost_limit must be 'raise' or 'return'")
        if self.token_node is not None and self.token_edge is not None:
            raise ReproError("token_node and token_edge are mutually exclusive")
        if self.token_fraction is not None:
            if self.token_edge is None:
                raise ReproError("token_fraction needs a token_edge")
            fraction = Fraction(self.token_fraction)
            if fraction < 0 or fraction > 1:
                raise ReproError(f"token_fraction {self.token_fraction} outside [0, 1]")
        if self.token_edge is not None and self.token_edge[0] == self.token_edge[1]:
            raise ReproError(f"token_edge endpoints must differ, got {self.token_edge}")
        if self.dormant is not None and any(index < 0 for index in self.dormant):
            raise ReproError("dormant member indices must be non-negative")
        if (
            self.values is not None
            and self.labels is not None
            and len(self.values) != len(self.labels)
        ):
            raise ReproError(
                f"{len(self.values)} values for {len(self.labels)} labels "
                "(values are parallel to the team members)"
            )
        return self

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; parameter bags become JSON objects."""
        data: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name in ("scheduler_params", "problem_params"):
                value = dict(value)
            elif spec_field.name == "values":
                value = None if value is None else [_listify(item) for item in value]
            elif isinstance(value, tuple):
                value = list(value)
            data[spec_field.name] = value
        return data

    def to_json(self, **dumps_kwargs: Any) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(f"unknown ScenarioSpec fields: {sorted(unknown)}")
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ReproError("a ScenarioSpec JSON document must be an object")
        return cls.from_dict(data)


@dataclass(frozen=True)
class SweepSpec:
    """A grid of scenarios: the cartesian product of the listed dimensions.

    The enumeration order of :meth:`cells` is fixed: family, size, seed,
    scheduler, scheduler-parameter set, problem-parameter set, label set,
    team size, problem — the
    outermost dimension varies slowest.  Per-cell seeding is deterministic:
    every cell carries its own seed taken from the ``seeds`` grid, so a cell
    is fully reproducible in isolation (the property the process-pool
    executor relies on).
    """

    problems: Tuple[str, ...] = ("rendezvous",)
    families: Tuple[str, ...] = ("ring",)
    sizes: Tuple[int, ...] = (6,)
    seeds: Tuple[int, ...] = (0,)
    schedulers: Tuple[str, ...] = ("round_robin",)
    label_sets: Tuple[Optional[Tuple[int, ...]], ...] = (None,)
    scheduler_param_sets: Tuple[ParamItems, ...] = ((),)
    problem_param_sets: Tuple[ParamItems, ...] = ((),)
    team_sizes: Tuple[Optional[int], ...] = (None,)
    cost_model: str = "simulation"
    max_traversals: int = 2_000_000
    on_cost_limit: str = "return"
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "problems", tuple(self.problems))
        object.__setattr__(self, "families", tuple(self.families))
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "schedulers", tuple(self.schedulers))
        object.__setattr__(
            self, "label_sets", tuple(_freeze_ints(labels) for labels in self.label_sets)
        )
        object.__setattr__(
            self,
            "scheduler_param_sets",
            tuple(_freeze_params(params) for params in self.scheduler_param_sets),
        )
        object.__setattr__(
            self,
            "problem_param_sets",
            tuple(_freeze_params(params) for params in self.problem_param_sets),
        )
        object.__setattr__(
            self,
            "team_sizes",
            tuple(None if k is None else int(k) for k in self.team_sizes),
        )

    def __len__(self) -> int:
        return (
            len(self.problems)
            * len(self.families)
            * len(self.sizes)
            * len(self.seeds)
            * len(self.schedulers)
            * len(self.label_sets)
            * len(self.scheduler_param_sets)
            * len(self.problem_param_sets)
            * len(self.team_sizes)
        )

    def cells(self) -> Iterator[ScenarioSpec]:
        """Enumerate the concrete scenarios of the grid, outermost first."""
        grid = itertools.product(
            self.families,
            self.sizes,
            self.seeds,
            self.schedulers,
            self.scheduler_param_sets,
            self.problem_param_sets,
            self.label_sets,
            self.team_sizes,
            self.problems,
        )
        for (
            family,
            size,
            seed,
            scheduler,
            params,
            problem_params,
            labels,
            team_size,
            problem,
        ) in grid:
            yield ScenarioSpec(
                problem=problem,
                family=family,
                size=size,
                seed=seed,
                labels=labels,
                team_size=team_size,
                scheduler=scheduler,
                scheduler_params=params,
                problem_params=problem_params,
                cost_model=self.cost_model,
                max_traversals=self.max_traversals,
                on_cost_limit=self.on_cost_limit,
                name=self.name,
            )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name in ("scheduler_param_sets", "problem_param_sets"):
                value = [dict(params) for params in value]
            elif spec_field.name == "label_sets":
                value = [None if labels is None else list(labels) for labels in value]
            elif isinstance(value, tuple):
                value = list(value)
            data[spec_field.name] = value
        return data

    def to_json(self, **dumps_kwargs: Any) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(f"unknown SweepSpec fields: {sorted(unknown)}")
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ReproError("a SweepSpec JSON document must be an object")
        return cls.from_dict(data)
