"""``run(spec) -> RunRecord``: the single entry point for executing scenarios.

The runner resolves every symbolic name of a
:class:`~repro.runtime.spec.ScenarioSpec` through the registries, builds the
graph / scheduler / cost model, dispatches to the problem kind registered in
:data:`~repro.runtime.registry.PROBLEMS` and returns a uniform
:class:`~repro.runtime.records.RunRecord`.  The CLI, the experiment drivers,
the benchmarks and the examples all go through this function; a new problem
kind registered here is immediately available to all of them.

Placement conventions (chosen to match the seed entry points exactly, so the
migrated drivers reproduce the historical tables bit for bit):

* rendezvous / baseline — labels default to ``(6, 11)``; start nodes default
  to node ``0`` and the antipodal node ``size // 2``;
* teams — member ``i`` gets label ``3 + 2 i`` and starts at
  ``sorted(nodes)[(i * size) // k]``;
* esst — the token sits at the highest-numbered node (unless
  ``spec.token_node`` says otherwise) and the agent starts at node ``0``
  (or ``1`` when the token is at ``0``).
"""

from __future__ import annotations

import dataclasses
import time
from fractions import Fraction
from typing import Any, Optional

from ..core.baseline import run_baseline_rendezvous
from ..core.rendezvous import run_rendezvous
from ..core.trajectories import trajectory_structure
from ..exceptions import ReproError
from ..exploration.cost_model import CostModel
from ..exploration.esst import run_esst
from ..graphs import families as _families  # noqa: F401  (registers the families)
from ..graphs.port_graph import PortLabeledGraph, edge_key
from ..obs.metrics import get_registry
from ..obs.trace import Tracer, use_tracer
from ..sim import schedulers as _schedulers  # noqa: F401  (registers the adversaries)
from ..sim.position import Position
from ..sim.schedulers import Scheduler
from ..teams.problems import TeamMember, run_sgl
from ..ticksim import problems as _tick_problems  # noqa: F401  (registers the tick kinds)
from .records import RunRecord
from .registry import COST_MODELS, GRAPH_FAMILIES, PROBLEMS, SCHEDULERS
from .spec import ScenarioSpec

__all__ = ["run", "build_graph", "build_scheduler", "build_cost_model"]


def build_graph(spec: ScenarioSpec) -> PortLabeledGraph:
    """Build the graph a spec describes (family, size and seed)."""
    return GRAPH_FAMILIES.create(spec.family, spec.size, spec.seed)


def build_scheduler(spec: ScenarioSpec) -> Scheduler:
    """Build the adversary a spec describes (name, seed and parameters).

    The scheduler inherits the scenario's seed unless ``scheduler_params``
    carries an explicit ``"seed"`` of its own.
    """
    kwargs = {"seed": spec.seed, **spec.scheduler_kwargs}
    return SCHEDULERS.create(spec.scheduler, **kwargs)


def build_cost_model(spec: ScenarioSpec) -> CostModel:
    """Build the cost model a spec names."""
    return COST_MODELS.create(spec.cost_model)


def run(
    spec: ScenarioSpec,
    model: Optional[CostModel] = None,
    *,
    trace: bool = False,
) -> RunRecord:
    """Execute one scenario and return its :class:`RunRecord`.

    ``model`` optionally overrides the spec's named cost model with a live
    instance — used by the experiment drivers, which accept model objects.
    Sweeps shipped to worker processes rely on the spec alone.

    ``trace=True`` runs the scenario under a :class:`~repro.obs.trace.Tracer`
    and attaches the summarised payload as ``extra["trace"]`` on the returned
    record.  The trace is *not* part of the spec, so a traced record carries
    the same ``spec_key`` as — and caches interchangeably with — an untraced
    one; ``trace=False`` (the default) takes exactly the historical code path
    and produces byte-identical records.
    """
    spec.validate()
    started = time.perf_counter()
    if not trace:
        record = _execute(spec, model)
    else:
        tracer = Tracer()
        with use_tracer(tracer):
            t0 = tracer.clock()
            record = _execute(spec, model)
            tracer.add_span("run", t0)
        payload = tracer.finish().to_dict()
        record = dataclasses.replace(
            record, extra=record.extra + (("trace", payload),)
        )
    registry = get_registry()
    registry.counter(
        "repro_runs_total", "Scenarios executed by the runner"
    ).inc(problem=spec.problem)
    registry.histogram(
        "repro_run_seconds", "Wall time per scenario run"
    ).observe(time.perf_counter() - started, problem=spec.problem)
    return record


def _execute(spec: ScenarioSpec, model: Optional[CostModel]) -> RunRecord:
    graph = build_graph(spec)
    model = model if model is not None else build_cost_model(spec)
    return PROBLEMS.create(spec.problem, spec, graph, model)


# ----------------------------------------------------------------------
# problem kinds
# ----------------------------------------------------------------------
def _record(
    spec: ScenarioSpec,
    graph: PortLabeledGraph,
    *,
    ok: bool,
    cost: int,
    reason: str,
    decisions: int,
    extra: Any = (),
) -> RunRecord:
    return RunRecord(
        spec=spec,
        ok=ok,
        cost=cost,
        reason=reason,
        decisions=decisions,
        graph_name=graph.name,
        graph_size=graph.size,
        graph_edges=graph.num_edges,
        extra=extra,
    )


def _rendezvous_placements(spec: ScenarioSpec, graph: PortLabeledGraph):
    labels = spec.labels if spec.labels is not None else (6, 11)
    if len(labels) != 2:
        raise ReproError(f"{spec.problem} needs exactly two labels, got {labels!r}")
    starts = spec.starts if spec.starts is not None else (0, graph.size // 2)
    if len(starts) != 2:
        raise ReproError(f"{spec.problem} needs exactly two start nodes, got {starts!r}")
    return [(labels[0], starts[0]), (labels[1], starts[1])]


def _meeting_extra(result) -> dict:
    extra = {
        "traversals_by_agent": dict(result.traversals_by_agent),
        "meeting_node": None,
        "meeting_edge": None,
    }
    if result.meeting is not None:
        extra["meeting_node"] = result.meeting.node
        extra["meeting_edge"] = result.meeting.edge
    return extra


def _meeting_problem(runner):
    """Both two-agent algorithms share placements and record shape; only the
    underlying runner differs."""

    def _run_problem(
        spec: ScenarioSpec, graph: PortLabeledGraph, model: CostModel
    ) -> RunRecord:
        result = runner(
            graph,
            _rendezvous_placements(spec, graph),
            scheduler=build_scheduler(spec),
            model=model,
            max_traversals=spec.max_traversals,
            on_cost_limit=spec.on_cost_limit,
        )
        return _record(
            spec,
            graph,
            ok=result.met,
            cost=result.cost(),
            reason=result.reason,
            decisions=result.decisions,
            extra=_meeting_extra(result),
        )

    return _run_problem


PROBLEMS.register("rendezvous", _meeting_problem(run_rendezvous))
PROBLEMS.register("baseline", _meeting_problem(run_baseline_rendezvous))


@PROBLEMS.register("esst")
def _run_esst_problem(
    spec: ScenarioSpec, graph: PortLabeledGraph, model: CostModel
) -> RunRecord:
    extra: dict = {}
    if spec.token_edge is not None:
        u, v = spec.token_edge
        if not graph.has_edge(u, v):
            raise ReproError(f"token_edge {spec.token_edge} is not an edge of {graph.name}")
        fraction = (
            Fraction(spec.token_fraction)
            if spec.token_fraction is not None
            else Fraction(1, 2)
        )
        # on_edge normalises fractions 0 and 1 back to the endpoint nodes.
        token = Position.on_edge(edge_key(u, v), fraction)
        if not token.is_at_node:
            extra["token_edge"] = spec.token_edge
            extra["token_fraction"] = f"{fraction.numerator}/{fraction.denominator}"
    else:
        token_node = (
            spec.token_node if spec.token_node is not None else max(graph.nodes())
        )
        token = Position.at_node(token_node)
    extra["token_node"] = token.node if token.is_at_node else None
    if spec.starts is not None:
        start = spec.starts[0]
    else:
        start = 0 if token.node != 0 else 1
    result = run_esst(graph, start, token, model)
    extra.update(
        {
            "final_phase": result.final_phase,
            "phase_bound": 9 * graph.size + 3,
            "start": start,
            "sightings": result.sightings,
        }
    )
    return _record(
        spec,
        graph,
        ok=result.all_edges_traversed,
        cost=result.traversals,
        reason="esst",
        decisions=0,
        extra=extra,
    )


@PROBLEMS.register("teams")
def _run_teams_problem(
    spec: ScenarioSpec, graph: PortLabeledGraph, model: CostModel
) -> RunRecord:
    nodes = sorted(graph.nodes())
    if spec.labels is not None:
        labels = list(spec.labels)
    else:
        k = spec.team_size if spec.team_size is not None else 3
        labels = [3 + 2 * index for index in range(k)]
    k = len(labels)
    if k > graph.size:
        raise ReproError(
            f"team of {k} agents does not fit a graph of {graph.size} nodes"
        )
    if spec.starts is not None:
        starts = list(spec.starts)
        if len(starts) != k:
            raise ReproError("teams needs one start node per label")
    else:
        starts = [nodes[(index * graph.size) // k] for index in range(k)]
    if spec.values is not None and len(spec.values) != k:
        raise ReproError(f"teams needs one value per member, got {len(spec.values)} for {k}")
    dormant = frozenset(spec.dormant or ())
    if dormant and max(dormant) >= k:
        raise ReproError(
            f"dormant member index {max(dormant)} out of range for a team of {k}"
        )
    members = [
        TeamMember(
            label=label,
            start_node=start,
            value=None if spec.values is None else spec.values[index],
            dormant=index in dormant,
        )
        for index, (label, start) in enumerate(zip(labels, starts))
    ]
    outcome = run_sgl(
        graph,
        members,
        scheduler=build_scheduler(spec),
        model=model,
        max_traversals=spec.max_traversals,
        on_cost_limit=spec.on_cost_limit,
    )
    sorted_labels = tuple(sorted(labels))
    extra = {
        "team_labels": sorted_labels,
        "all_output": outcome.all_output,
        "leader": min(sorted_labels) if outcome.correct else None,
    }
    if spec.values is not None:
        extra["value_maps"] = outcome.value_maps
    if dormant:
        extra["dormant"] = tuple(sorted(dormant))
    return _record(
        spec,
        graph,
        ok=outcome.correct,
        cost=outcome.cost,
        reason=outcome.result.reason,
        decisions=outcome.result.decisions,
        extra=extra,
    )


@PROBLEMS.register("bounds")
def _run_bounds_problem(
    spec: ScenarioSpec, graph: PortLabeledGraph, model: CostModel
) -> RunRecord:
    """The analytic guarantees of Theorem 3.1 as a sweepable problem kind.

    No simulation runs: the cell evaluates ``Π(n, |L_min|)`` and the naive
    exponential baseline guarantee on the built graph's actual size.  The
    record's ``cost`` is the RV-asynch-poly bound, so bound tables sweep,
    cache and aggregate exactly like measured ones (experiment E3).
    """
    labels = spec.labels if spec.labels is not None else (6, 11)
    small = min(labels)
    length = small.bit_length()
    rv_bound = model.pi_bound(graph.size, length)
    baseline_bound = model.baseline_trajectory_length(graph.size, small)
    return _record(
        spec,
        graph,
        ok=True,
        cost=rv_bound,
        reason="bounds",
        decisions=0,
        extra={
            "label_small": small,
            "label_length": length,
            "rv_bound": rv_bound,
            "baseline_bound": baseline_bound,
        },
    )


def _composition_of(structure: dict) -> str:
    """Render a trajectory decomposition the way the paper's figures draw it."""
    components = structure["components"]
    if "trunk_length" in structure:
        inner = components[0]
        return (
            f"{inner['kind']}({inner['k']}) at each of the "
            f"{inner['repetitions']} trunk nodes + {structure['trunk_length']} trunk edges"
        )
    return " ".join(f"{component['kind']}({component['k']})" for component in components)


@PROBLEMS.register("figures")
def _run_figures_problem(
    spec: ScenarioSpec, graph: PortLabeledGraph, model: CostModel
) -> RunRecord:
    """The structural decomposition of a trajectory (paper Figures 1–4).

    ``problem_params`` carries the trajectory ``kind`` (Q, Y', Z, A', ...)
    and the parameter ``k``; the record's ``cost`` is the exact trajectory
    length.  Pure computation — the graph is irrelevant beyond the record's
    bookkeeping columns.
    """
    params = spec.problem_kwargs
    kind = str(params.get("kind", "Q"))
    k = int(params.get("k", 1))
    structure = trajectory_structure(kind, k, model)
    return _record(
        spec,
        graph,
        ok=True,
        cost=int(structure["length"]),
        reason="figures",
        decisions=0,
        extra={
            "kind": kind,
            "k": k,
            "components": len(structure["components"]),
            "composition": _composition_of(structure),
        },
    )
