"""``run(spec) -> RunRecord``: the single entry point for executing scenarios.

The runner resolves every symbolic name of a
:class:`~repro.runtime.spec.ScenarioSpec` through the registries, builds the
graph / scheduler / cost model, dispatches to the problem kind registered in
:data:`~repro.runtime.registry.PROBLEMS` and returns a uniform
:class:`~repro.runtime.records.RunRecord`.  The CLI, the experiment drivers,
the benchmarks and the examples all go through this function; a new problem
kind registered here is immediately available to all of them.

Placement conventions (chosen to match the seed entry points exactly, so the
migrated drivers reproduce the historical tables bit for bit):

* rendezvous / baseline — labels default to ``(6, 11)``; start nodes default
  to node ``0`` and the antipodal node ``size // 2``;
* teams — member ``i`` gets label ``3 + 2 i`` and starts at
  ``sorted(nodes)[(i * size) // k]``;
* esst — the token sits at the highest-numbered node (unless
  ``spec.token_node`` says otherwise) and the agent starts at node ``0``
  (or ``1`` when the token is at ``0``).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.baseline import run_baseline_rendezvous
from ..core.rendezvous import run_rendezvous
from ..exceptions import ReproError
from ..exploration.cost_model import CostModel
from ..exploration.esst import run_esst
from ..graphs import families as _families  # noqa: F401  (registers the families)
from ..graphs.port_graph import PortLabeledGraph
from ..sim import schedulers as _schedulers  # noqa: F401  (registers the adversaries)
from ..sim.position import Position
from ..sim.schedulers import Scheduler
from ..teams.problems import TeamMember, run_sgl
from .records import RunRecord
from .registry import COST_MODELS, GRAPH_FAMILIES, PROBLEMS, SCHEDULERS
from .spec import ScenarioSpec

__all__ = ["run", "build_graph", "build_scheduler", "build_cost_model"]


def build_graph(spec: ScenarioSpec) -> PortLabeledGraph:
    """Build the graph a spec describes (family, size and seed)."""
    return GRAPH_FAMILIES.create(spec.family, spec.size, spec.seed)


def build_scheduler(spec: ScenarioSpec) -> Scheduler:
    """Build the adversary a spec describes (name, seed and parameters).

    The scheduler inherits the scenario's seed unless ``scheduler_params``
    carries an explicit ``"seed"`` of its own.
    """
    kwargs = {"seed": spec.seed, **spec.scheduler_kwargs}
    return SCHEDULERS.create(spec.scheduler, **kwargs)


def build_cost_model(spec: ScenarioSpec) -> CostModel:
    """Build the cost model a spec names."""
    return COST_MODELS.create(spec.cost_model)


def run(spec: ScenarioSpec, model: Optional[CostModel] = None) -> RunRecord:
    """Execute one scenario and return its :class:`RunRecord`.

    ``model`` optionally overrides the spec's named cost model with a live
    instance — used by the experiment drivers, which accept model objects.
    Sweeps shipped to worker processes rely on the spec alone.
    """
    spec.validate()
    graph = build_graph(spec)
    model = model if model is not None else build_cost_model(spec)
    return PROBLEMS.create(spec.problem, spec, graph, model)


# ----------------------------------------------------------------------
# problem kinds
# ----------------------------------------------------------------------
def _record(
    spec: ScenarioSpec,
    graph: PortLabeledGraph,
    *,
    ok: bool,
    cost: int,
    reason: str,
    decisions: int,
    extra: Any = (),
) -> RunRecord:
    return RunRecord(
        spec=spec,
        ok=ok,
        cost=cost,
        reason=reason,
        decisions=decisions,
        graph_name=graph.name,
        graph_size=graph.size,
        graph_edges=graph.num_edges,
        extra=extra,
    )


def _rendezvous_placements(spec: ScenarioSpec, graph: PortLabeledGraph):
    labels = spec.labels if spec.labels is not None else (6, 11)
    if len(labels) != 2:
        raise ReproError(f"{spec.problem} needs exactly two labels, got {labels!r}")
    starts = spec.starts if spec.starts is not None else (0, graph.size // 2)
    if len(starts) != 2:
        raise ReproError(f"{spec.problem} needs exactly two start nodes, got {starts!r}")
    return [(labels[0], starts[0]), (labels[1], starts[1])]


def _meeting_extra(result) -> dict:
    extra = {
        "traversals_by_agent": dict(result.traversals_by_agent),
        "meeting_node": None,
        "meeting_edge": None,
    }
    if result.meeting is not None:
        extra["meeting_node"] = result.meeting.node
        extra["meeting_edge"] = result.meeting.edge
    return extra


def _meeting_problem(runner):
    """Both two-agent algorithms share placements and record shape; only the
    underlying runner differs."""

    def _run_problem(
        spec: ScenarioSpec, graph: PortLabeledGraph, model: CostModel
    ) -> RunRecord:
        result = runner(
            graph,
            _rendezvous_placements(spec, graph),
            scheduler=build_scheduler(spec),
            model=model,
            max_traversals=spec.max_traversals,
            on_cost_limit=spec.on_cost_limit,
        )
        return _record(
            spec,
            graph,
            ok=result.met,
            cost=result.cost(),
            reason=result.reason,
            decisions=result.decisions,
            extra=_meeting_extra(result),
        )

    return _run_problem


PROBLEMS.register("rendezvous", _meeting_problem(run_rendezvous))
PROBLEMS.register("baseline", _meeting_problem(run_baseline_rendezvous))


@PROBLEMS.register("esst")
def _run_esst_problem(
    spec: ScenarioSpec, graph: PortLabeledGraph, model: CostModel
) -> RunRecord:
    token_node = (
        spec.token_node if spec.token_node is not None else max(graph.nodes())
    )
    if spec.starts is not None:
        start = spec.starts[0]
    else:
        start = 0 if token_node != 0 else 1
    result = run_esst(graph, start, Position.at_node(token_node), model)
    return _record(
        spec,
        graph,
        ok=result.all_edges_traversed,
        cost=result.traversals,
        reason="esst",
        decisions=0,
        extra={
            "final_phase": result.final_phase,
            "phase_bound": 9 * graph.size + 3,
            "token_node": token_node,
            "start": start,
            "sightings": result.sightings,
        },
    )


@PROBLEMS.register("teams")
def _run_teams_problem(
    spec: ScenarioSpec, graph: PortLabeledGraph, model: CostModel
) -> RunRecord:
    nodes = sorted(graph.nodes())
    if spec.labels is not None:
        labels = list(spec.labels)
    else:
        k = spec.team_size if spec.team_size is not None else 3
        labels = [3 + 2 * index for index in range(k)]
    k = len(labels)
    if k > graph.size:
        raise ReproError(
            f"team of {k} agents does not fit a graph of {graph.size} nodes"
        )
    if spec.starts is not None:
        starts = list(spec.starts)
        if len(starts) != k:
            raise ReproError("teams needs one start node per label")
    else:
        starts = [nodes[(index * graph.size) // k] for index in range(k)]
    members = [
        TeamMember(label=label, start_node=start)
        for label, start in zip(labels, starts)
    ]
    outcome = run_sgl(
        graph,
        members,
        scheduler=build_scheduler(spec),
        model=model,
        max_traversals=spec.max_traversals,
        on_cost_limit=spec.on_cost_limit,
    )
    sorted_labels = tuple(sorted(labels))
    return _record(
        spec,
        graph,
        ok=outcome.correct,
        cost=outcome.cost,
        reason=outcome.result.reason,
        decisions=outcome.result.decisions,
        extra={
            "team_labels": sorted_labels,
            "all_output": outcome.all_output,
            "leader": min(sorted_labels) if outcome.correct else None,
        },
    )
