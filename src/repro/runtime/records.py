"""Uniform result records produced by the scenario runtime.

Every problem kind — rendezvous, the exponential baseline, Procedure ESST,
Algorithm SGL — reports its outcome as the same :class:`RunRecord` shape, so
sweeps can mix problems and downstream code (tables, aggregation, JSON
output) never dispatches on the problem.  Problem-specific values (meeting
location, ESST phase, team labels, ...) travel in the ``extra`` bag.

A :class:`SweepResult` wraps the records of one sweep with aggregation
helpers (max/mean cost, success fraction, bound ratios) and a plain-text
table renderer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ReproError
from .spec import ScenarioSpec, SweepSpec

__all__ = ["RunRecord", "SweepResult", "resolve_field"]


def resolve_field(record: "RunRecord", name: str, default: Any = None) -> Any:
    """Resolve a column name against a record: record attribute, then its
    ``extra`` bag, then the spec, then the spec's scheduler parameters.

    The single resolution rule shared by :meth:`SweepResult.table` and the
    aggregation layer's ``extract`` op, so columns like ``"patience"`` or
    ``"max_traversals"`` behave identically everywhere.
    """
    value = getattr(record, name, None)
    if value is None:
        value = record.extra_dict.get(name)
    if value is None:
        value = getattr(record.spec, name, None)
    if value is None:
        value = record.spec.scheduler_kwargs.get(name, default)
    return value


@dataclass(frozen=True)
class RunRecord:
    """Outcome of running one :class:`~repro.runtime.spec.ScenarioSpec`.

    Attributes
    ----------
    spec:
        The scenario that was run (so a record is self-describing).
    ok:
        Whether the run reached its goal: the agents met (rendezvous /
        baseline), every edge was traversed (ESST), or every agent output
        the correct label set (teams).
    cost:
        The paper's cost measure — total completed edge traversals at goal.
    reason:
        Why the run stopped (a :class:`~repro.sim.results.StopReason` value,
        or ``"esst"`` for the stand-alone exploration driver).
    decisions:
        Number of adversary decisions (0 for ESST, which is adversary-free).
    graph_name, graph_size, graph_edges:
        The graph that was actually built (families may round the requested
        size, e.g. ``hypercube``).
    extra:
        Problem-specific values as a sorted tuple of ``(key, value)`` pairs
        (JSON- and pickle-friendly); see :attr:`extra_dict`.  Values are
        canonicalised (sequences to tuples, mapping keys to strings) so that
        a record rebuilt from its JSON form compares equal to the original —
        the property the content-addressed result store relies on.
    """

    spec: ScenarioSpec
    ok: bool
    cost: int
    reason: str
    decisions: int
    graph_name: str
    graph_size: int
    graph_edges: int
    extra: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.extra, Mapping):
            items = sorted((str(k), v) for k, v in self.extra.items())
        else:
            items = [(str(k), v) for k, v in self.extra]
        object.__setattr__(
            self, "extra", tuple((k, _canonical(v)) for k, v in items)
        )

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    @property
    def extra_dict(self) -> Dict[str, Any]:
        """The problem-specific values as a dict."""
        return dict(self.extra)

    @property
    def problem(self) -> str:
        return self.spec.problem

    @property
    def family(self) -> str:
        return self.spec.family

    @property
    def scheduler(self) -> str:
        return self.spec.scheduler

    @property
    def seed(self) -> int:
        return self.spec.seed

    @property
    def n(self) -> int:
        """The actual graph size (column name used by the tables)."""
        return self.graph_size

    def summary(self) -> str:
        """One-line human-readable summary (mirrors ``RunResult.summary``)."""
        parts = [f"reason={self.reason}", f"cost={self.cost}"]
        extra = self.extra_dict
        if extra.get("meeting_node") is not None:
            parts.append(f"meeting at node {extra['meeting_node']}")
        elif extra.get("meeting_edge") is not None:
            parts.append(f"meeting at edge {tuple(extra['meeting_edge'])}")
        parts.append(f"decisions={self.decisions}")
        return ", ".join(parts)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        for record_field in fields(self):
            value = getattr(self, record_field.name)
            if record_field.name == "spec":
                value = value.to_dict()
            elif record_field.name == "extra":
                value = {key: _jsonable(item) for key, item in value}
            data[record_field.name] = value
        return data

    def to_json(self, **dumps_kwargs: Any) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        payload = dict(data)
        payload["spec"] = ScenarioSpec.from_dict(payload["spec"])
        return cls(**payload)


def _canonical(value: Any) -> Any:
    """Normalise an extra value to a JSON-stable shape.

    Lists and tuples both become tuples, sets become sorted tuples, mapping
    keys become strings (in sorted order) — exactly the shapes that survive a
    ``to_dict`` / ``from_dict`` round trip unchanged, so stored records
    compare equal to freshly computed ones.
    """
    if isinstance(value, (tuple, list)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_canonical(item) for item in value))
    if isinstance(value, Mapping):
        return {str(key): _canonical(item) for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))}
    return value


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of extra values to JSON-friendly shapes."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return [_jsonable(item) for item in sorted(value)]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


#: Default columns of :meth:`SweepResult.table`.
_TABLE_FIELDS = ("problem", "family", "n", "seed", "scheduler", "ok", "cost", "decisions", "reason")


@dataclass
class SweepResult:
    """The records of one sweep, in cell-enumeration order.

    When the sweep ran against a result store, ``cache_hits`` counts the
    cells served from the store and ``executed`` the cells actually run;
    both are runtime metadata and deliberately excluded from ``to_dict`` —
    a resumed sweep serialises byte-identically to an uninterrupted one.
    """

    records: List[RunRecord]
    sweep: Optional[SweepSpec] = None
    cache_hits: int = 0
    executed: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> RunRecord:
        return self.records[index]

    # ------------------------------------------------------------------
    # aggregation helpers
    # ------------------------------------------------------------------
    @property
    def all_ok(self) -> bool:
        """Whether every cell reached its goal."""
        return all(record.ok for record in self.records)

    @property
    def ok_fraction(self) -> float:
        """Fraction of cells that reached their goal."""
        if not self.records:
            return 0.0
        return sum(1 for record in self.records if record.ok) / len(self.records)

    def max_cost(self) -> int:
        """Largest cell cost (0 for an empty sweep)."""
        return max((record.cost for record in self.records), default=0)

    def mean_cost(self) -> float:
        """Mean cell cost (0.0 for an empty sweep)."""
        if not self.records:
            return 0.0
        return sum(record.cost for record in self.records) / len(self.records)

    def filter(self, predicate: Optional[Callable[[RunRecord], bool]] = None, **matches: Any) -> "SweepResult":
        """Records matching ``predicate`` and/or spec/record attribute values.

        ``result.filter(problem="rendezvous", family="ring")`` keeps the
        cells whose record (or, falling back, spec) attribute equals each
        given value — so both record columns (``n``, ``cost``) and
        spec-only fields (``size``, ``max_traversals``) work.
        """
        _missing = object()

        def value_of(record: RunRecord, key: str) -> Any:
            value = getattr(record, key, _missing)
            if value is _missing:
                value = getattr(record.spec, key)
            return value

        selected = []
        for record in self.records:
            if predicate is not None and not predicate(record):
                continue
            if all(value_of(record, key) == value for key, value in matches.items()):
                selected.append(record)
        return SweepResult(records=selected, sweep=self.sweep)

    def bound_ratios(self, model: Optional[Any] = None) -> List[float]:
        """``Π(n, |L_min|) / measured cost`` for every rendezvous cell.

        The ratio says how much head-room the worst-case guarantee of
        Theorem 3.1 leaves over the measured run; it is only defined for
        the ``"rendezvous"`` problem (the baseline's guarantee is the
        exponential trajectory length, not ``Π``).
        """
        from ..exploration.cost_model import default_cost_model

        model = model if model is not None else default_cost_model()
        ratios: List[float] = []
        for record in self.records:
            if record.problem != "rendezvous" or record.cost <= 0:
                continue
            labels = record.spec.labels or (6, 11)
            shortest = min(label.bit_length() for label in labels)
            bound = model.pi_bound(record.graph_size, shortest)
            ratios.append(bound / record.cost)
        return ratios

    # ------------------------------------------------------------------
    # rendering / serialisation
    # ------------------------------------------------------------------
    def table(self, fields: Sequence[str] = _TABLE_FIELDS, title: str = "") -> str:
        """Render the records as an aligned monospace table.

        A field name resolves, in order, against the record, its ``extra``
        bag, the spec, and the spec's scheduler parameters — so columns like
        ``"patience"`` or ``"max_traversals"`` work out of the box.
        """
        rows = []
        for record in self.records:
            row = []
            for name in fields:
                value = resolve_field(record, name, default="")
                if isinstance(value, bool):
                    value = "yes" if value else "no"
                elif isinstance(value, float):
                    value = f"{value:.3g}"
                row.append(str(value))
            rows.append(row)
        widths = [
            max(len(str(name)), *(len(row[index]) for row in rows)) if rows else len(str(name))
            for index, name in enumerate(fields)
        ]
        lines = []
        if title:
            lines.append(title)
            lines.append("=" * max(len(title), 8))
        lines.append("  ".join(str(name).ljust(widths[i]) for i, name in enumerate(fields)))
        lines.append("  ".join("-" * width for width in widths))
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": None if self.sweep is None else self.sweep.to_dict(),
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self, **dumps_kwargs: Any) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        if "records" not in data:
            raise ReproError("a SweepResult document needs a 'records' list")
        sweep = data.get("sweep")
        return cls(
            records=[RunRecord.from_dict(record) for record in data["records"]],
            sweep=None if sweep is None else SweepSpec.from_dict(sweep),
        )
