"""Experiment drivers: the reproduction's tables and figures (E1–E6, F1–F4).

The paper is a theory paper: its four figures are schematic diagrams of the
trajectory constructions and its quantitative statements are worst-case
bounds.  EXPERIMENTS.md defines the derived experiment suite this module
implements; the benchmark harness (``benchmarks/``) and the CLI call these
drivers and print their tables.

Every driver returns a list of small record dataclasses so that tests can
assert on the numbers and benchmarks can both time the run and show the
table.  Since the scenario-runtime migration the simulation-backed drivers
(E1, E2, E4, E5, E6) are thin adapters: each builds a
:class:`~repro.runtime.spec.SweepSpec` grid (or an explicit cell list when
the sweep is not rectangular), executes it through
:func:`~repro.runtime.executors.run_sweep`, and converts the uniform
:class:`~repro.runtime.records.RunRecord` stream into its historical record
dataclass.  Cell enumeration mirrors the original loop nests, so tables are
reproduced bit for bit for the same seeds.

Every simulation-backed driver accepts a ``store`` (any
:class:`~repro.store.base.ResultStore`): cells already stored are served
without execution and fresh cells are persisted, so regenerating a table is
free once its sweep has run anywhere (``repro experiment e1 --store DIR``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..store.base import ResultStore

from ..core.bounds import compare_bounds
from ..core.trajectories import trajectory_structure
from ..exceptions import ReproError
from ..exploration.cost_model import CostModel, PaperCostModel, default_cost_model
from ..graphs.families import named_family
from ..runtime import ScenarioSpec, SweepSpec, run_sweep
from ..runtime.executors import Executor
from ..runtime.registry import SCHEDULERS
from ..sim.schedulers import Scheduler
from .fitting import classify_growth, fit_power_law
from .tables import format_records

__all__ = [
    "make_scheduler",
    "SCHEDULER_NAMES",
    "FigureStructureRecord",
    "figure_structures",
    "figure_structures_table",
    "RendezvousScalingRecord",
    "rendezvous_vs_size",
    "rendezvous_vs_size_table",
    "LabelScalingRecord",
    "rendezvous_vs_label",
    "rendezvous_vs_label_table",
    "BoundRecord",
    "bound_scaling",
    "bound_scaling_table",
    "ESSTRecord",
    "esst_scaling",
    "esst_scaling_table",
    "AdversaryRecord",
    "adversary_ablation",
    "adversary_ablation_table",
    "TeamRecord",
    "team_scaling_cells",
    "team_scaling",
    "team_scaling_table",
]


# ----------------------------------------------------------------------
# scheduler names (aliases of the runtime's scheduler registry)
# ----------------------------------------------------------------------
#: Names of the adversaries used throughout the experiments, in registration
#: order.  The registry in :mod:`repro.runtime.registry` is the single source
#: of truth; this tuple survives for backwards compatibility.
SCHEDULER_NAMES = tuple(SCHEDULERS.names())


def make_scheduler(name: str, *, seed: int = 0, patience: int = 64, starved: str = "agent-2") -> Scheduler:
    """Build one of the named adversaries used throughout the experiments.

    Thin wrapper over ``SCHEDULERS.create`` kept for backwards compatibility;
    unknown parameters are ignored by the factories that do not use them.
    """
    return SCHEDULERS.create(name, seed=seed, patience=patience, starved=starved)


#: Mapping between the experiment suite's algorithm names and the runtime's
#: problem kinds (the tables say "rv_asynch_poly", the registry "rendezvous").
_PROBLEM_OF_ALGORITHM = {"rv_asynch_poly": "rendezvous", "baseline": "baseline"}
_ALGORITHM_OF_PROBLEM = {problem: name for name, problem in _PROBLEM_OF_ALGORITHM.items()}


def _problems_for(algorithms: Sequence[str]) -> Tuple[str, ...]:
    problems = []
    for algorithm in algorithms:
        if algorithm not in _PROBLEM_OF_ALGORITHM:
            raise ReproError(
                f"unknown algorithm {algorithm!r}; "
                f"available: {sorted(_PROBLEM_OF_ALGORITHM)}"
            )
        problems.append(_PROBLEM_OF_ALGORITHM[algorithm])
    return tuple(problems)


# ----------------------------------------------------------------------
# F1 - F4: structure of the trajectory constructions (Figures 1 - 4)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FigureStructureRecord:
    """One row of the figure-structure reproduction (F1–F4)."""

    figure: str
    kind: str
    k: int
    length: int
    components: int
    composition: str


_FIGURE_OF_KIND = {"Q": "Figure 1", "Y'": "Figure 2", "Z": "Figure 3", "A'": "Figure 4"}


def figure_structures(
    ks: Sequence[int] = (1, 2, 3, 4),
    model: Optional[CostModel] = None,
) -> List[FigureStructureRecord]:
    """Decompose Q, Y', Z and A' exactly as the paper's Figures 1–4 draw them."""
    model = model if model is not None else default_cost_model()
    records: List[FigureStructureRecord] = []
    for kind in ("Q", "Y'", "Z", "A'"):
        for k in ks:
            structure = trajectory_structure(kind, k, model)
            components = structure["components"]
            if kind in ("Q", "Z"):
                composition = " ".join(
                    f"{component['kind']}({component['k']})" for component in components
                )
            else:
                inner = components[0]
                composition = (
                    f"{inner['kind']}({inner['k']}) at each of the "
                    f"{inner['repetitions']} trunk nodes + {structure['trunk_length']} trunk edges"
                )
            records.append(
                FigureStructureRecord(
                    figure=_FIGURE_OF_KIND[kind],
                    kind=kind,
                    k=k,
                    length=structure["length"],
                    components=len(components),
                    composition=composition,
                )
            )
    return records


def figure_structures_table(records: Iterable[FigureStructureRecord]) -> str:
    """Render the F1–F4 records as a table."""
    return format_records(
        records,
        ["figure", "kind", "k", "length", "composition"],
        title="F1-F4: structure of the trajectory constructions (paper Figures 1-4)",
    )


# ----------------------------------------------------------------------
# E1: rendezvous cost versus graph size
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RendezvousScalingRecord:
    """One measured rendezvous run (experiment E1)."""

    family: str
    n: int
    algorithm: str
    scheduler: str
    labels: Tuple[int, int]
    met: bool
    cost: int
    decisions: int


def rendezvous_vs_size(
    sizes: Sequence[int] = (4, 6, 8, 10, 12),
    family_names: Sequence[str] = ("ring", "erdos_renyi"),
    labels: Tuple[int, int] = (6, 11),
    scheduler_names: Sequence[str] = ("round_robin", "avoider"),
    algorithms: Sequence[str] = ("rv_asynch_poly", "baseline"),
    model: Optional[CostModel] = None,
    max_traversals: int = 2_000_000,
    seed: int = 0,
    executor: Optional[Executor] = None,
    store: Optional["ResultStore"] = None,
) -> List[RendezvousScalingRecord]:
    """Measure cost-to-meeting versus graph size (Theorem 3.1, experiment E1)."""
    model = model if model is not None else default_cost_model()
    sweep = SweepSpec(
        problems=_problems_for(algorithms),
        families=tuple(family_names),
        sizes=tuple(sizes),
        seeds=(seed,),
        schedulers=tuple(scheduler_names),
        label_sets=(tuple(labels),),
        max_traversals=max_traversals,
        name="e1-rendezvous-vs-size",
    )
    result = run_sweep(sweep, executor=executor, model=model, store=store)
    return [
        RendezvousScalingRecord(
            family=record.family,
            n=record.graph_size,
            algorithm=_ALGORITHM_OF_PROBLEM[record.problem],
            scheduler=record.scheduler,
            labels=labels,
            met=record.ok,
            cost=record.cost,
            decisions=record.decisions,
        )
        for record in result
    ]


def rendezvous_vs_size_table(records: Iterable[RendezvousScalingRecord]) -> str:
    """Render the E1 records as a table."""
    return format_records(
        records,
        ["family", "n", "algorithm", "scheduler", "met", "cost", "decisions"],
        title="E1: measured rendezvous cost vs graph size",
    )


# ----------------------------------------------------------------------
# E2: rendezvous cost versus label magnitude / label length
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LabelScalingRecord:
    """One row of the label-scaling experiment (E2)."""

    label_small: int
    label_length: int
    algorithm: str
    measured_cost: int
    met: bool
    guaranteed_bound: int


def rendezvous_vs_label(
    small_labels: Sequence[int] = (1, 2, 4, 8, 16, 32),
    big_label_offset: int = 1,
    family: str = "ring",
    n: int = 6,
    scheduler_name: str = "delay_until_stop",
    model: Optional[CostModel] = None,
    bound_model: Optional[CostModel] = None,
    max_traversals: int = 2_000_000,
    executor: Optional[Executor] = None,
    store: Optional["ResultStore"] = None,
) -> List[LabelScalingRecord]:
    """Measure and bound cost as a function of the (smaller) label (experiment E2).

    For every label ``L`` the two agents carry labels ``L`` and ``L + offset``;
    the measured run uses the requested adversary, and the guaranteed bound is
    ``Π(n, |L|)`` for RV-asynch-poly versus ``(2P(n)+1)^L · 2P(n)`` for the
    naive exponential baseline (its full trajectory length).
    """
    model = model if model is not None else default_cost_model()
    bound_model = bound_model if bound_model is not None else model
    sweep = SweepSpec(
        problems=("rendezvous", "baseline"),
        families=(family,),
        sizes=(n,),
        schedulers=(scheduler_name,),
        label_sets=tuple((label, label + big_label_offset) for label in small_labels),
        max_traversals=max_traversals,
        name="e2-rendezvous-vs-label",
    )
    result = run_sweep(sweep, executor=executor, model=model, store=store)
    records: List[LabelScalingRecord] = []
    for record in result:
        label = record.spec.labels[0]
        if record.problem == "rendezvous":
            bound = bound_model.pi_bound(record.graph_size, label.bit_length())
        else:
            bound = bound_model.baseline_trajectory_length(record.graph_size, label)
        records.append(
            LabelScalingRecord(
                label_small=label,
                label_length=label.bit_length(),
                algorithm=_ALGORITHM_OF_PROBLEM[record.problem],
                measured_cost=record.cost,
                met=record.ok,
                guaranteed_bound=bound,
            )
        )
    return records


def rendezvous_vs_label_table(records: Iterable[LabelScalingRecord]) -> str:
    """Render the E2 records as a table."""
    return format_records(
        records,
        [
            "label_small",
            "label_length",
            "algorithm",
            "met",
            "measured_cost",
            "guaranteed_bound",
        ],
        title="E2: cost vs label (measured under the delay-until-stop adversary, plus guarantees)",
    )


# ----------------------------------------------------------------------
# E3: the analytic bounds (polynomial vs exponential)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundRecord:
    """One row of the bound-scaling experiment (E3)."""

    n: int
    label: int
    label_length: int
    rv_bound: int
    baseline_bound: int


def bound_scaling(
    sizes: Sequence[int] = (2, 4, 8, 16, 32),
    labels: Sequence[int] = (1, 2, 4, 8, 16, 32),
    model: Optional[CostModel] = None,
) -> List[BoundRecord]:
    """Tabulate ``Π(n, |L|)`` against the exponential baseline bound (experiment E3)."""
    model = model if model is not None else PaperCostModel()
    records = [
        BoundRecord(
            n=comparison.n,
            label=comparison.label,
            label_length=comparison.label_length,
            rv_bound=comparison.rv_bound,
            baseline_bound=comparison.baseline_bound,
        )
        for comparison in compare_bounds(sizes, labels, model)
    ]
    return records


def bound_scaling_table(records: Iterable[BoundRecord]) -> str:
    """Render the E3 records plus growth classifications."""
    records = list(records)
    table = format_records(
        records,
        ["n", "label", "label_length", "rv_bound", "baseline_bound"],
        title="E3: worst-case guarantees (Theorem 3.1 vs the exponential baseline)",
    )
    # Growth of the bounds in the label, at the largest graph size.
    biggest_n = max(record.n for record in records)
    by_label = sorted(
        (record for record in records if record.n == biggest_n),
        key=lambda record: record.label,
    )
    lines = [table, ""]
    if len(by_label) >= 3:
        labels = [record.label for record in by_label]
        rv = [record.rv_bound for record in by_label]
        baseline = [record.baseline_bound for record in by_label]
        lines.append(
            f"growth in the label at n={biggest_n}: "
            f"RV-asynch-poly -> {classify_growth(labels, rv)}, "
            f"baseline -> {classify_growth(labels, baseline)}"
        )
    by_size = sorted(
        {record.n: record for record in records if record.label == records[0].label}.values(),
        key=lambda record: record.n,
    )
    if len(by_size) >= 3:
        sizes = [record.n for record in by_size]
        rv = [record.rv_bound for record in by_size]
        fit = fit_power_law(sizes, rv)
        lines.append(
            f"growth in the size at L={records[0].label}: "
            f"RV-asynch-poly bound ~ n^{fit.slope:.1f} (a polynomial)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# E4: ESST cost versus graph size (Theorem 2.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ESSTRecord:
    """One stand-alone ESST run (experiment E4)."""

    family: str
    n: int
    edges: int
    final_phase: int
    phase_bound: int
    cost: int
    all_edges_traversed: bool


def esst_scaling(
    sizes: Sequence[int] = (4, 5, 6, 7),
    family_names: Sequence[str] = ("ring", "path", "erdos_renyi"),
    model: Optional[CostModel] = None,
    seed: int = 0,
    executor: Optional[Executor] = None,
    store: Optional["ResultStore"] = None,
) -> List[ESSTRecord]:
    """Measure Procedure ESST cost and termination phase versus graph size (E4)."""
    model = model if model is not None else default_cost_model()
    sweep = SweepSpec(
        problems=("esst",),
        families=tuple(family_names),
        sizes=tuple(sizes),
        seeds=(seed,),
        name="e4-esst-scaling",
    )
    result = run_sweep(sweep, executor=executor, model=model, store=store)
    return [
        ESSTRecord(
            family=record.family,
            n=record.graph_size,
            edges=record.graph_edges,
            final_phase=record.extra_dict["final_phase"],
            phase_bound=record.extra_dict["phase_bound"],
            cost=record.cost,
            all_edges_traversed=record.ok,
        )
        for record in result
    ]


def esst_scaling_table(records: Iterable[ESSTRecord]) -> str:
    """Render the E4 records as a table."""
    return format_records(
        records,
        ["family", "n", "edges", "final_phase", "phase_bound", "cost", "all_edges_traversed"],
        title="E4: Procedure ESST (exploration with a semi-stationary token)",
    )


# ----------------------------------------------------------------------
# E5: adversary ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdversaryRecord:
    """One rendezvous run under one adversary (experiment E5)."""

    scheduler: str
    patience: int
    family: str
    n: int
    met: bool
    cost: int
    decisions: int


def adversary_ablation(
    family: str = "ring",
    n: int = 8,
    labels: Tuple[int, int] = (6, 11),
    patiences: Sequence[int] = (4, 16, 64, 256),
    model: Optional[CostModel] = None,
    max_traversals: int = 2_000_000,
    seed: int = 0,
    executor: Optional[Executor] = None,
    store: Optional["ResultStore"] = None,
) -> List[AdversaryRecord]:
    """Compare adversaries, including a patience sweep for the avoiding one (E5).

    The scheduler/patience pairs are not a rectangular grid (only the avoider
    sweeps its patience), so this driver enumerates explicit scenario cells
    instead of a :class:`SweepSpec`.
    """
    model = model if model is not None else default_cost_model()
    pairs = [("round_robin", 0), ("random", 0), ("lazy", 0), ("delay_until_stop", 0)]
    pairs += [("avoider", patience) for patience in patiences]
    cells = [
        ScenarioSpec(
            problem="rendezvous",
            family=family,
            size=n,
            seed=seed,
            labels=tuple(labels),
            scheduler=scheduler_name,
            scheduler_params={"patience": max(patience, 1)},
            max_traversals=max_traversals,
            name="e5-adversary-ablation",
        )
        for scheduler_name, patience in pairs
    ]
    result = run_sweep(cells, executor=executor, model=model, store=store)
    return [
        AdversaryRecord(
            scheduler=scheduler_name,
            patience=patience,
            family=family,
            n=record.graph_size,
            met=record.ok,
            cost=record.cost,
            decisions=record.decisions,
        )
        for (scheduler_name, patience), record in zip(pairs, result)
    ]


def adversary_ablation_table(records: Iterable[AdversaryRecord]) -> str:
    """Render the E5 records as a table."""
    return format_records(
        records,
        ["scheduler", "patience", "family", "n", "met", "cost", "decisions"],
        title="E5: adversary ablation (RV-asynch-poly)",
    )


# ----------------------------------------------------------------------
# E6: the multi-agent problems (Theorem 4.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TeamRecord:
    """One Algorithm-SGL run for a team (experiment E6)."""

    family: str
    n: int
    team_size: int
    scheduler: str
    correct: bool
    cost: int
    reason: str


def team_scaling_cells(
    sizes: Sequence[int] = (5, 6),
    team_sizes: Sequence[int] = (2, 3),
    family: str = "ring",
    scheduler_name: str = "round_robin",
    max_traversals: int = 6_000_000,
    seed: int = 0,
) -> List[ScenarioSpec]:
    """The E6 grid as explicit cells (not rectangular: team sizes that
    exceed the actually built graph are skipped).  Shared by the experiment
    driver and the E6 benchmark so the skip rule lives in one place."""
    cells: List[ScenarioSpec] = []
    for n in sizes:
        graph_size = named_family(family, n, rng_seed=seed).size
        for k in team_sizes:
            if k > graph_size:
                continue
            cells.append(
                ScenarioSpec(
                    problem="teams",
                    family=family,
                    size=n,
                    seed=seed,
                    team_size=k,
                    scheduler=scheduler_name,
                    max_traversals=max_traversals,
                    name="e6-team-scaling",
                )
            )
    return cells


def team_scaling(
    sizes: Sequence[int] = (5, 6),
    team_sizes: Sequence[int] = (2, 3),
    family: str = "ring",
    scheduler_name: str = "round_robin",
    model: Optional[CostModel] = None,
    max_traversals: int = 6_000_000,
    seed: int = 0,
    executor: Optional[Executor] = None,
    store: Optional["ResultStore"] = None,
) -> List[TeamRecord]:
    """Measure Algorithm SGL (hence all four §4 problems) versus n and k (E6)."""
    model = model if model is not None else default_cost_model()
    cells = team_scaling_cells(
        sizes=sizes,
        team_sizes=team_sizes,
        family=family,
        scheduler_name=scheduler_name,
        max_traversals=max_traversals,
        seed=seed,
    )
    result = run_sweep(cells, executor=executor, model=model, store=store)
    return [
        TeamRecord(
            family=record.family,
            n=record.graph_size,
            team_size=record.spec.team_size,
            scheduler=record.scheduler,
            correct=record.ok,
            cost=record.cost,
            reason=record.reason,
        )
        for record in result
    ]


def team_scaling_table(records: Iterable[TeamRecord]) -> str:
    """Render the E6 records as a table."""
    return format_records(
        records,
        ["family", "n", "team_size", "scheduler", "correct", "cost", "reason"],
        title="E6: Algorithm SGL / team problems (team size, leader election, renaming, gossiping)",
    )
