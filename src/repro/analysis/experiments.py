"""Experiment drivers: the reproduction's tables and figures (E1–E6, F1–F4).

The paper is a theory paper: its four figures are schematic diagrams of the
trajectory constructions and its quantitative statements are worst-case
bounds.  EXPERIMENTS.md defines the derived experiment suite this module
implements; the benchmark harness (``benchmarks/``) and the CLI call these
drivers and print their tables.

Every driver returns a list of small record dataclasses so that tests can
assert on the numbers and benchmarks can both time the run and show the
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.baseline import run_baseline_rendezvous
from ..core.bounds import compare_bounds
from ..core.rendezvous import run_rendezvous
from ..core.trajectories import trajectory_structure
from ..exceptions import ReproError
from ..exploration.cost_model import (
    CostModel,
    PaperCostModel,
    SimulationCostModel,
    default_cost_model,
)
from ..exploration.esst import run_esst
from ..graphs.families import named_family
from ..sim.position import Position
from ..sim.results import StopReason
from ..sim.schedulers import (
    GreedyAvoidingScheduler,
    LazyScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from ..teams.problems import TeamMember, run_sgl
from .fitting import classify_growth, fit_power_law
from .tables import format_records

__all__ = [
    "make_scheduler",
    "SCHEDULER_NAMES",
    "FigureStructureRecord",
    "figure_structures",
    "figure_structures_table",
    "RendezvousScalingRecord",
    "rendezvous_vs_size",
    "rendezvous_vs_size_table",
    "LabelScalingRecord",
    "rendezvous_vs_label",
    "rendezvous_vs_label_table",
    "BoundRecord",
    "bound_scaling",
    "bound_scaling_table",
    "ESSTRecord",
    "esst_scaling",
    "esst_scaling_table",
    "AdversaryRecord",
    "adversary_ablation",
    "adversary_ablation_table",
    "TeamRecord",
    "team_scaling",
    "team_scaling_table",
]


# ----------------------------------------------------------------------
# scheduler registry (shared by experiments, CLI and benchmarks)
# ----------------------------------------------------------------------
SCHEDULER_NAMES = ("round_robin", "random", "lazy", "delay_until_stop", "avoider")


def make_scheduler(name: str, *, seed: int = 0, patience: int = 64, starved: str = "agent-2") -> Scheduler:
    """Build one of the named adversaries used throughout the experiments."""
    if name == "round_robin":
        return RoundRobinScheduler()
    if name == "random":
        return RandomScheduler(seed=seed)
    if name == "lazy":
        return LazyScheduler(starved, release_after=64)
    if name == "delay_until_stop":
        return LazyScheduler(starved, release_after=None)
    if name == "avoider":
        return GreedyAvoidingScheduler(patience=patience)
    raise ReproError(f"unknown scheduler {name!r}; available: {SCHEDULER_NAMES}")


# ----------------------------------------------------------------------
# F1 - F4: structure of the trajectory constructions (Figures 1 - 4)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FigureStructureRecord:
    """One row of the figure-structure reproduction (F1–F4)."""

    figure: str
    kind: str
    k: int
    length: int
    components: int
    composition: str


_FIGURE_OF_KIND = {"Q": "Figure 1", "Y'": "Figure 2", "Z": "Figure 3", "A'": "Figure 4"}


def figure_structures(
    ks: Sequence[int] = (1, 2, 3, 4),
    model: Optional[CostModel] = None,
) -> List[FigureStructureRecord]:
    """Decompose Q, Y', Z and A' exactly as the paper's Figures 1–4 draw them."""
    model = model if model is not None else default_cost_model()
    records: List[FigureStructureRecord] = []
    for kind in ("Q", "Y'", "Z", "A'"):
        for k in ks:
            structure = trajectory_structure(kind, k, model)
            components = structure["components"]
            if kind in ("Q", "Z"):
                composition = " ".join(
                    f"{component['kind']}({component['k']})" for component in components
                )
            else:
                inner = components[0]
                composition = (
                    f"{inner['kind']}({inner['k']}) at each of the "
                    f"{inner['repetitions']} trunk nodes + {structure['trunk_length']} trunk edges"
                )
            records.append(
                FigureStructureRecord(
                    figure=_FIGURE_OF_KIND[kind],
                    kind=kind,
                    k=k,
                    length=structure["length"],
                    components=len(components),
                    composition=composition,
                )
            )
    return records


def figure_structures_table(records: Iterable[FigureStructureRecord]) -> str:
    """Render the F1–F4 records as a table."""
    return format_records(
        records,
        ["figure", "kind", "k", "length", "composition"],
        title="F1-F4: structure of the trajectory constructions (paper Figures 1-4)",
    )


# ----------------------------------------------------------------------
# E1: rendezvous cost versus graph size
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RendezvousScalingRecord:
    """One measured rendezvous run (experiment E1)."""

    family: str
    n: int
    algorithm: str
    scheduler: str
    labels: Tuple[int, int]
    met: bool
    cost: int
    decisions: int


def rendezvous_vs_size(
    sizes: Sequence[int] = (4, 6, 8, 10, 12),
    family_names: Sequence[str] = ("ring", "erdos_renyi"),
    labels: Tuple[int, int] = (6, 11),
    scheduler_names: Sequence[str] = ("round_robin", "avoider"),
    algorithms: Sequence[str] = ("rv_asynch_poly", "baseline"),
    model: Optional[CostModel] = None,
    max_traversals: int = 2_000_000,
    seed: int = 0,
) -> List[RendezvousScalingRecord]:
    """Measure cost-to-meeting versus graph size (Theorem 3.1, experiment E1)."""
    model = model if model is not None else default_cost_model()
    records: List[RendezvousScalingRecord] = []
    for family in family_names:
        for n in sizes:
            graph = named_family(family, n, rng_seed=seed)
            start_a = 0
            start_b = graph.size // 2
            for scheduler_name in scheduler_names:
                for algorithm in algorithms:
                    scheduler = make_scheduler(scheduler_name, seed=seed)
                    if algorithm == "rv_asynch_poly":
                        result = run_rendezvous(
                            graph,
                            [(labels[0], start_a), (labels[1], start_b)],
                            scheduler=scheduler,
                            model=model,
                            max_traversals=max_traversals,
                            on_cost_limit="return",
                        )
                    elif algorithm == "baseline":
                        result = run_baseline_rendezvous(
                            graph,
                            [(labels[0], start_a), (labels[1], start_b)],
                            scheduler=scheduler,
                            model=model,
                            max_traversals=max_traversals,
                            on_cost_limit="return",
                        )
                    else:
                        raise ReproError(f"unknown algorithm {algorithm!r}")
                    records.append(
                        RendezvousScalingRecord(
                            family=family,
                            n=graph.size,
                            algorithm=algorithm,
                            scheduler=scheduler_name,
                            labels=labels,
                            met=result.met,
                            cost=result.cost(),
                            decisions=result.decisions,
                        )
                    )
    return records


def rendezvous_vs_size_table(records: Iterable[RendezvousScalingRecord]) -> str:
    """Render the E1 records as a table."""
    return format_records(
        records,
        ["family", "n", "algorithm", "scheduler", "met", "cost", "decisions"],
        title="E1: measured rendezvous cost vs graph size",
    )


# ----------------------------------------------------------------------
# E2: rendezvous cost versus label magnitude / label length
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LabelScalingRecord:
    """One row of the label-scaling experiment (E2)."""

    label_small: int
    label_length: int
    algorithm: str
    measured_cost: int
    met: bool
    guaranteed_bound: int


def rendezvous_vs_label(
    small_labels: Sequence[int] = (1, 2, 4, 8, 16, 32),
    big_label_offset: int = 1,
    family: str = "ring",
    n: int = 6,
    scheduler_name: str = "delay_until_stop",
    model: Optional[CostModel] = None,
    bound_model: Optional[CostModel] = None,
    max_traversals: int = 2_000_000,
) -> List[LabelScalingRecord]:
    """Measure and bound cost as a function of the (smaller) label (experiment E2).

    For every label ``L`` the two agents carry labels ``L`` and ``L + offset``;
    the measured run uses the requested adversary, and the guaranteed bound is
    ``Π(n, |L|)`` for RV-asynch-poly versus ``(2P(n)+1)^L · 2P(n)`` for the
    naive exponential baseline (its full trajectory length).
    """
    model = model if model is not None else default_cost_model()
    bound_model = bound_model if bound_model is not None else model
    graph = named_family(family, n)
    records: List[LabelScalingRecord] = []
    for label in small_labels:
        other = label + big_label_offset
        placements = [(label, 0), (other, graph.size // 2)]
        for algorithm in ("rv_asynch_poly", "baseline"):
            scheduler = make_scheduler(scheduler_name)
            if algorithm == "rv_asynch_poly":
                result = run_rendezvous(
                    graph,
                    placements,
                    scheduler=scheduler,
                    model=model,
                    max_traversals=max_traversals,
                    on_cost_limit="return",
                )
                bound = bound_model.pi_bound(graph.size, label.bit_length())
            else:
                result = run_baseline_rendezvous(
                    graph,
                    placements,
                    scheduler=scheduler,
                    model=model,
                    max_traversals=max_traversals,
                    on_cost_limit="return",
                )
                bound = bound_model.baseline_trajectory_length(graph.size, label)
            records.append(
                LabelScalingRecord(
                    label_small=label,
                    label_length=label.bit_length(),
                    algorithm=algorithm,
                    measured_cost=result.cost(),
                    met=result.met,
                    guaranteed_bound=bound,
                )
            )
    return records


def rendezvous_vs_label_table(records: Iterable[LabelScalingRecord]) -> str:
    """Render the E2 records as a table."""
    return format_records(
        records,
        [
            "label_small",
            "label_length",
            "algorithm",
            "met",
            "measured_cost",
            "guaranteed_bound",
        ],
        title="E2: cost vs label (measured under the delay-until-stop adversary, plus guarantees)",
    )


# ----------------------------------------------------------------------
# E3: the analytic bounds (polynomial vs exponential)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundRecord:
    """One row of the bound-scaling experiment (E3)."""

    n: int
    label: int
    label_length: int
    rv_bound: int
    baseline_bound: int


def bound_scaling(
    sizes: Sequence[int] = (2, 4, 8, 16, 32),
    labels: Sequence[int] = (1, 2, 4, 8, 16, 32),
    model: Optional[CostModel] = None,
) -> List[BoundRecord]:
    """Tabulate ``Π(n, |L|)`` against the exponential baseline bound (experiment E3)."""
    model = model if model is not None else PaperCostModel()
    records = [
        BoundRecord(
            n=comparison.n,
            label=comparison.label,
            label_length=comparison.label_length,
            rv_bound=comparison.rv_bound,
            baseline_bound=comparison.baseline_bound,
        )
        for comparison in compare_bounds(sizes, labels, model)
    ]
    return records


def bound_scaling_table(records: Iterable[BoundRecord]) -> str:
    """Render the E3 records plus growth classifications."""
    records = list(records)
    table = format_records(
        records,
        ["n", "label", "label_length", "rv_bound", "baseline_bound"],
        title="E3: worst-case guarantees (Theorem 3.1 vs the exponential baseline)",
    )
    # Growth of the bounds in the label, at the largest graph size.
    biggest_n = max(record.n for record in records)
    by_label = sorted(
        (record for record in records if record.n == biggest_n),
        key=lambda record: record.label,
    )
    lines = [table, ""]
    if len(by_label) >= 3:
        labels = [record.label for record in by_label]
        rv = [record.rv_bound for record in by_label]
        baseline = [record.baseline_bound for record in by_label]
        lines.append(
            f"growth in the label at n={biggest_n}: "
            f"RV-asynch-poly -> {classify_growth(labels, rv)}, "
            f"baseline -> {classify_growth(labels, baseline)}"
        )
    by_size = sorted(
        {record.n: record for record in records if record.label == records[0].label}.values(),
        key=lambda record: record.n,
    )
    if len(by_size) >= 3:
        sizes = [record.n for record in by_size]
        rv = [record.rv_bound for record in by_size]
        fit = fit_power_law(sizes, rv)
        lines.append(
            f"growth in the size at L={records[0].label}: "
            f"RV-asynch-poly bound ~ n^{fit.slope:.1f} (a polynomial)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# E4: ESST cost versus graph size (Theorem 2.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ESSTRecord:
    """One stand-alone ESST run (experiment E4)."""

    family: str
    n: int
    edges: int
    final_phase: int
    phase_bound: int
    cost: int
    all_edges_traversed: bool


def esst_scaling(
    sizes: Sequence[int] = (4, 5, 6, 7),
    family_names: Sequence[str] = ("ring", "path", "erdos_renyi"),
    model: Optional[CostModel] = None,
    seed: int = 0,
) -> List[ESSTRecord]:
    """Measure Procedure ESST cost and termination phase versus graph size (E4)."""
    model = model if model is not None else default_cost_model()
    records: List[ESSTRecord] = []
    for family in family_names:
        for n in sizes:
            graph = named_family(family, n, rng_seed=seed)
            token_node = max(graph.nodes())
            start = 0 if token_node != 0 else 1
            result = run_esst(graph, start, Position.at_node(token_node), model)
            records.append(
                ESSTRecord(
                    family=family,
                    n=graph.size,
                    edges=graph.num_edges,
                    final_phase=result.final_phase,
                    phase_bound=9 * graph.size + 3,
                    cost=result.traversals,
                    all_edges_traversed=result.all_edges_traversed,
                )
            )
    return records


def esst_scaling_table(records: Iterable[ESSTRecord]) -> str:
    """Render the E4 records as a table."""
    return format_records(
        records,
        ["family", "n", "edges", "final_phase", "phase_bound", "cost", "all_edges_traversed"],
        title="E4: Procedure ESST (exploration with a semi-stationary token)",
    )


# ----------------------------------------------------------------------
# E5: adversary ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdversaryRecord:
    """One rendezvous run under one adversary (experiment E5)."""

    scheduler: str
    patience: int
    family: str
    n: int
    met: bool
    cost: int
    decisions: int


def adversary_ablation(
    family: str = "ring",
    n: int = 8,
    labels: Tuple[int, int] = (6, 11),
    patiences: Sequence[int] = (4, 16, 64, 256),
    model: Optional[CostModel] = None,
    max_traversals: int = 2_000_000,
    seed: int = 0,
) -> List[AdversaryRecord]:
    """Compare adversaries, including a patience sweep for the avoiding one (E5)."""
    model = model if model is not None else default_cost_model()
    graph = named_family(family, n, rng_seed=seed)
    placements = [(labels[0], 0), (labels[1], graph.size // 2)]
    records: List[AdversaryRecord] = []
    basic = [("round_robin", 0), ("random", 0), ("lazy", 0), ("delay_until_stop", 0)]
    sweeps = [("avoider", patience) for patience in patiences]
    for scheduler_name, patience in basic + sweeps:
        scheduler = make_scheduler(scheduler_name, seed=seed, patience=max(patience, 1))
        result = run_rendezvous(
            graph,
            placements,
            scheduler=scheduler,
            model=model,
            max_traversals=max_traversals,
            on_cost_limit="return",
        )
        records.append(
            AdversaryRecord(
                scheduler=scheduler_name,
                patience=patience,
                family=family,
                n=graph.size,
                met=result.met,
                cost=result.cost(),
                decisions=result.decisions,
            )
        )
    return records


def adversary_ablation_table(records: Iterable[AdversaryRecord]) -> str:
    """Render the E5 records as a table."""
    return format_records(
        records,
        ["scheduler", "patience", "family", "n", "met", "cost", "decisions"],
        title="E5: adversary ablation (RV-asynch-poly)",
    )


# ----------------------------------------------------------------------
# E6: the multi-agent problems (Theorem 4.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TeamRecord:
    """One Algorithm-SGL run for a team (experiment E6)."""

    family: str
    n: int
    team_size: int
    scheduler: str
    correct: bool
    cost: int
    reason: str


def team_scaling(
    sizes: Sequence[int] = (5, 6),
    team_sizes: Sequence[int] = (2, 3),
    family: str = "ring",
    scheduler_name: str = "round_robin",
    model: Optional[CostModel] = None,
    max_traversals: int = 6_000_000,
    seed: int = 0,
) -> List[TeamRecord]:
    """Measure Algorithm SGL (hence all four §4 problems) versus n and k (E6)."""
    model = model if model is not None else default_cost_model()
    records: List[TeamRecord] = []
    for n in sizes:
        graph = named_family(family, n, rng_seed=seed)
        nodes = sorted(graph.nodes())
        for k in team_sizes:
            if k > graph.size:
                continue
            members = [
                TeamMember(label=3 + 2 * index, start_node=nodes[(index * graph.size) // k])
                for index in range(k)
            ]
            scheduler = make_scheduler(scheduler_name, seed=seed)
            outcome = run_sgl(
                graph,
                members,
                scheduler=scheduler,
                model=model,
                max_traversals=max_traversals,
                on_cost_limit="return",
            )
            records.append(
                TeamRecord(
                    family=family,
                    n=graph.size,
                    team_size=k,
                    scheduler=scheduler_name,
                    correct=outcome.correct,
                    cost=outcome.cost,
                    reason=outcome.result.reason,
                )
            )
    return records


def team_scaling_table(records: Iterable[TeamRecord]) -> str:
    """Render the E6 records as a table."""
    return format_records(
        records,
        ["family", "n", "team_size", "scheduler", "correct", "cost", "reason"],
        title="E6: Algorithm SGL / team problems (team size, leader election, renaming, gossiping)",
    )
