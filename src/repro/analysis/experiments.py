"""Backwards-compatible entry points for the experiment suite (E1–E6, F1–F4).

The bespoke ~80-line drivers and their seven record dataclasses are gone:
every experiment is now a frozen, registered
:class:`~repro.analysis.experiment_spec.ExperimentSpec` (sweep + aggregation
pipeline + render config) executed by
:func:`~repro.analysis.experiment_spec.run_experiment`.  This module keeps
the historical function names as thin wrappers that build the registered
spec (with the same keyword parameters the old drivers took), run it, and
return the aggregated **rows** — plain dicts whose keys are the historical
column names.  The ``*_table()`` companions render those rows through the
one shared renderer, byte-identical to the tables the old drivers printed.

New code should use the spec API directly::

    from repro.analysis import experiment_spec, run_experiment

    result = run_experiment(experiment_spec("E1", sizes=(4, 6)), store=store)
    print(result.render())          # or render(result.table, "csv" / "json")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.executors import Executor
    from ..store.base import ResultStore

from .aggregate import DERIVATIONS, derive, evaluate_footers
from .experiment_spec import (
    experiment_spec,
    run_experiment,
    team_scaling_cells,
)
from .render import TableData, render

__all__ = [
    "figure_structures",
    "figure_structures_table",
    "rendezvous_vs_size",
    "rendezvous_vs_size_table",
    "rendezvous_vs_label",
    "rendezvous_vs_label_table",
    "bound_scaling",
    "bound_scaling_table",
    "esst_scaling",
    "esst_scaling_table",
    "adversary_ablation",
    "adversary_ablation_table",
    "team_scaling_cells",
    "team_scaling",
    "team_scaling_table",
]

Row = Dict[str, Any]


def _rows(name: str, params: Dict[str, Any], **run_kwargs: Any) -> List[Row]:
    return run_experiment(experiment_spec(name, **params), **run_kwargs).rows


def _table(name: str, rows: Iterable[Row]) -> str:
    """Render rows with the registered experiment's columns, title and
    footers (footers are re-evaluated, so subsetted rows stay honest)."""
    spec = experiment_spec(name)
    rows = [dict(row) for row in rows]
    return render(
        TableData(
            title=spec.title,
            columns=spec.columns,
            rows=tuple(rows),
            footers=tuple(evaluate_footers(rows, spec.footers)),
        )
    )


# ----------------------------------------------------------------------
# F1 - F4: structure of the trajectory constructions (Figures 1 - 4)
# ----------------------------------------------------------------------
def figure_structures(
    ks: Sequence[int] = (1, 2, 3, 4),
    model: Optional[Any] = None,
) -> List[Row]:
    """Decompose Q, Y', Z and A' exactly as the paper's Figures 1–4 draw them."""
    return _rows("F1", {"ks": tuple(ks)}, model=model)


def figure_structures_table(rows: Iterable[Row]) -> str:
    """Render the F1–F4 rows as a table."""
    return _table("F1", rows)


# ----------------------------------------------------------------------
# E1: rendezvous cost versus graph size
# ----------------------------------------------------------------------
def rendezvous_vs_size(
    sizes: Sequence[int] = (4, 6, 8, 10, 12),
    family_names: Sequence[str] = ("ring", "erdos_renyi"),
    labels: Tuple[int, int] = (6, 11),
    scheduler_names: Sequence[str] = ("round_robin", "avoider"),
    algorithms: Sequence[str] = ("rv_asynch_poly", "baseline"),
    model: Optional[Any] = None,
    max_traversals: int = 2_000_000,
    seed: int = 0,
    executor: Optional["Executor"] = None,
    store: Optional["ResultStore"] = None,
) -> List[Row]:
    """Measure cost-to-meeting versus graph size (Theorem 3.1, experiment E1)."""
    params = {
        "sizes": tuple(sizes),
        "families": tuple(family_names),
        "labels": tuple(labels),
        "schedulers": tuple(scheduler_names),
        "algorithms": tuple(algorithms),
        "max_traversals": max_traversals,
        "seed": seed,
    }
    return _rows("E1", params, model=model, executor=executor, store=store)


def rendezvous_vs_size_table(rows: Iterable[Row]) -> str:
    """Render the E1 rows as a table."""
    return _table("E1", rows)


# ----------------------------------------------------------------------
# E2: rendezvous cost versus label magnitude / label length
# ----------------------------------------------------------------------
def rendezvous_vs_label(
    small_labels: Sequence[int] = (1, 2, 4, 8, 16, 32),
    big_label_offset: int = 1,
    family: str = "ring",
    n: int = 6,
    scheduler_name: str = "delay_until_stop",
    model: Optional[Any] = None,
    bound_model: Optional[Any] = None,
    max_traversals: int = 2_000_000,
    executor: Optional["Executor"] = None,
    store: Optional["ResultStore"] = None,
) -> List[Row]:
    """Measure and bound cost as a function of the (smaller) label (experiment E2).

    ``bound_model`` optionally overrides the cost model used for the
    ``guaranteed_bound`` column only (the historical signature); by default
    the bounds use the same model as the runs.
    """
    params = {
        "small_labels": tuple(small_labels),
        "big_label_offset": big_label_offset,
        "family": family,
        "n": n,
        "scheduler": scheduler_name,
        "max_traversals": max_traversals,
    }
    rows = _rows("E2", params, model=model, executor=executor, store=store)
    if bound_model is not None:
        bound_of = DERIVATIONS.create(
            "guaranteed_bound",
            {"problem": "algorithm", "size": "n", "label": "label_small"},
            bound_model,
        )
        rows = derive(rows, "guaranteed_bound", bound_of)
    return rows


def rendezvous_vs_label_table(rows: Iterable[Row]) -> str:
    """Render the E2 rows as a table."""
    return _table("E2", rows)


# ----------------------------------------------------------------------
# E3: the analytic bounds (polynomial vs exponential)
# ----------------------------------------------------------------------
def bound_scaling(
    sizes: Sequence[int] = (2, 4, 8, 16, 32),
    labels: Sequence[int] = (1, 2, 4, 8, 16, 32),
    model: Optional[Any] = None,
) -> List[Row]:
    """Tabulate ``Π(n, |L|)`` against the exponential baseline bound (experiment E3)."""
    return _rows("E3", {"sizes": tuple(sizes), "labels": tuple(labels)}, model=model)


def bound_scaling_table(rows: Iterable[Row]) -> str:
    """Render the E3 rows plus growth classifications."""
    return _table("E3", rows)


# ----------------------------------------------------------------------
# E4: ESST cost versus graph size (Theorem 2.1)
# ----------------------------------------------------------------------
def esst_scaling(
    sizes: Sequence[int] = (4, 5, 6, 7),
    family_names: Sequence[str] = ("ring", "path", "erdos_renyi"),
    model: Optional[Any] = None,
    seed: int = 0,
    executor: Optional["Executor"] = None,
    store: Optional["ResultStore"] = None,
) -> List[Row]:
    """Measure Procedure ESST cost and termination phase versus graph size (E4)."""
    params = {"sizes": tuple(sizes), "families": tuple(family_names), "seed": seed}
    return _rows("E4", params, model=model, executor=executor, store=store)


def esst_scaling_table(rows: Iterable[Row]) -> str:
    """Render the E4 rows as a table."""
    return _table("E4", rows)


# ----------------------------------------------------------------------
# E5: adversary ablation
# ----------------------------------------------------------------------
def adversary_ablation(
    family: str = "ring",
    n: int = 8,
    labels: Tuple[int, int] = (6, 11),
    patiences: Sequence[int] = (4, 16, 64, 256),
    model: Optional[Any] = None,
    max_traversals: int = 2_000_000,
    seed: int = 0,
    executor: Optional["Executor"] = None,
    store: Optional["ResultStore"] = None,
) -> List[Row]:
    """Compare adversaries, including a patience sweep for the avoiding one (E5)."""
    params = {
        "family": family,
        "n": n,
        "labels": tuple(labels),
        "patiences": tuple(patiences),
        "max_traversals": max_traversals,
        "seed": seed,
    }
    return _rows("E5", params, model=model, executor=executor, store=store)


def adversary_ablation_table(rows: Iterable[Row]) -> str:
    """Render the E5 rows as a table."""
    return _table("E5", rows)


# ----------------------------------------------------------------------
# E6: the multi-agent problems (Theorem 4.1)
# ----------------------------------------------------------------------
def team_scaling(
    sizes: Sequence[int] = (5, 6),
    team_sizes: Sequence[int] = (2, 3),
    family: str = "ring",
    scheduler_name: str = "round_robin",
    model: Optional[Any] = None,
    max_traversals: int = 6_000_000,
    seed: int = 0,
    executor: Optional["Executor"] = None,
    store: Optional["ResultStore"] = None,
) -> List[Row]:
    """Measure Algorithm SGL (hence all four §4 problems) versus n and k (E6)."""
    params = {
        "sizes": tuple(sizes),
        "team_sizes": tuple(team_sizes),
        "family": family,
        "scheduler": scheduler_name,
        "max_traversals": max_traversals,
        "seed": seed,
    }
    return _rows("E6", params, model=model, executor=executor, store=store)


def team_scaling_table(rows: Iterable[Row]) -> str:
    """Render the E6 rows as a table."""
    return _table("E6", rows)
