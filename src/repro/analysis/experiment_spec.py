"""Experiments as frozen, registered, JSON-round-trippable specs.

An :class:`ExperimentSpec` bundles everything that defines one of the
reproduction's tables (EXPERIMENTS.md):

* **what to run** — a declarative :class:`~repro.runtime.spec.SweepSpec`
  grid, or an explicit cell list when the sweep is not rectangular (the
  adversary ablation's scheduler/patience pairs, the team grid's skip
  rule);
* **how to aggregate** — a declarative pipeline of
  :mod:`~repro.analysis.aggregate` ops turning the uniform record stream
  into table rows, plus footer ops for the summary lines; and
* **how to render** — the table title and column order consumed by
  :mod:`~repro.analysis.render`.

Experiments register by name through the same decorator-registry pattern as
graph families and schedulers::

    @experiment("E1")
    def _e1(sizes=(4, 6, 8, 10, 12), ...):
        return ExperimentSpec(...)

:func:`run_experiment` executes the spec through the scenario runtime
(:func:`~repro.runtime.executors.run_sweep`) — optionally against a result
store, in which case a warm invocation performs **zero** scenario
executions — then aggregates and renders.  :func:`aggregate_from_store`
goes one step further: it never touches an executor at all, serving the
whole table from ``store`` reads.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import ReproError
from ..graphs.families import named_family
from ..runtime.executors import Executor, run_sweep
from ..runtime.records import RunRecord, SweepResult
from ..runtime.registry import Registry
from ..runtime.spec import ScenarioSpec, SweepSpec, canonical_json
from .aggregate import apply_pipeline, evaluate_footers
from .render import TableData, render

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "EXPERIMENTS",
    "EXPERIMENT_KEY_VERSION",
    "experiment",
    "experiment_key",
    "experiment_spec",
    "experiment_document",
    "run_experiment",
    "aggregate_records",
    "aggregate_from_store",
    "team_scaling_cells",
]

#: Version of the content-hash schema used by :func:`experiment_key`.  Bump
#: whenever the meaning of an ExperimentSpec field changes incompatibly, so
#: every cached rendering (and every client-held ETag) misses cleanly.
EXPERIMENT_KEY_VERSION = 1


def experiment_key(spec: "ExperimentSpec") -> str:
    """Content hash of an experiment: sha256 over its canonical JSON form.

    The experiment-side half of the result service's ETag (the other half
    is the store's :meth:`~repro.store.base.ResultStore.generation`): two
    specs share a key exactly when they run the same cells through the same
    pipeline into the same rendering — so equal keys over an unchanged
    store promise byte-identical output without computing any of it.
    """
    payload = (
        f"repro.ExperimentSpec.v{EXPERIMENT_KEY_VERSION}:"
        f"{canonical_json(spec.to_dict())}"
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _frozen_ops(ops: Any) -> Tuple[Dict[str, Any], ...]:
    """Normalise pipeline/footer ops to plain JSON shapes (dicts, lists,
    scalars) so a spec equals its own JSON round trip."""
    return tuple(json.loads(canonical_json(dict(op))) for op in ops)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: sweep + aggregation pipeline + render config.

    Exactly one of ``sweep`` (a rectangular grid) and ``cells`` (an explicit
    scenario list) describes the work; ``pipeline`` and ``footers`` are
    declarative :mod:`~repro.analysis.aggregate` op lists; ``title`` and
    ``columns`` drive the renderer.  Every field is a plain value, so the
    spec JSON-round-trips exactly like the runtime's scenario specs.
    """

    name: str
    title: str = ""
    description: str = ""
    sweep: Optional[SweepSpec] = None
    cells: Optional[Tuple[ScenarioSpec, ...]] = None
    pipeline: Tuple[Dict[str, Any], ...] = ()
    columns: Tuple[str, ...] = ()
    footers: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.sweep, Mapping):
            object.__setattr__(self, "sweep", SweepSpec.from_dict(self.sweep))
        if self.cells is not None:
            object.__setattr__(
                self,
                "cells",
                tuple(
                    cell if isinstance(cell, ScenarioSpec) else ScenarioSpec.from_dict(cell)
                    for cell in self.cells
                ),
            )
        object.__setattr__(self, "pipeline", _frozen_ops(self.pipeline))
        object.__setattr__(self, "footers", _frozen_ops(self.footers))
        object.__setattr__(self, "columns", tuple(str(column) for column in self.columns))

    # ------------------------------------------------------------------
    # validation / enumeration
    # ------------------------------------------------------------------
    def validate(self) -> "ExperimentSpec":
        if not self.name:
            raise ReproError("an experiment needs a name")
        if (self.sweep is None) == (self.cells is None):
            raise ReproError(
                f"experiment {self.name!r} needs exactly one of 'sweep' and 'cells'"
            )
        if not self.columns:
            raise ReproError(f"experiment {self.name!r} renders no columns")
        return self

    def cell_specs(self) -> List[ScenarioSpec]:
        """The concrete scenarios this experiment runs, in table order."""
        if self.sweep is not None:
            return list(self.sweep.cells())
        return list(self.cells or ())

    def keys(self) -> List[str]:
        """The content-hash store keys of every cell, in table order."""
        return [cell.key() for cell in self.cell_specs()]

    def key(self) -> str:
        """This experiment's content hash (see :func:`experiment_key`)."""
        return experiment_key(self)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "sweep":
                value = None if value is None else value.to_dict()
            elif spec_field.name == "cells":
                value = None if value is None else [cell.to_dict() for cell in value]
            elif isinstance(value, tuple):
                value = list(value)
            data[spec_field.name] = value
        return data

    def to_json(self, **dumps_kwargs: Any) -> str:
        dumps_kwargs.setdefault("indent", 2)
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(f"unknown ExperimentSpec fields: {sorted(unknown)}")
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ReproError("an ExperimentSpec JSON document must be an object")
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """An executed experiment: the raw sweep records plus the aggregated table."""

    spec: ExperimentSpec
    result: SweepResult
    table: TableData

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """The aggregated table rows (plain dicts, in table order)."""
        return [dict(row) for row in self.table.rows]

    @property
    def records(self) -> List[RunRecord]:
        return list(self.result.records)

    @property
    def cache_hits(self) -> int:
        return self.result.cache_hits

    @property
    def executed(self) -> int:
        return self.result.executed

    def render(self, format: str = "markdown") -> str:
        """The table in the requested format (``markdown``/``csv``/``json``).

        The JSON form is the canonical experiment document
        (:func:`experiment_document`) — the **same serializer** the HTTP
        result service answers ``GET /experiments/<name>`` with, so ``repro
        experiment --format json`` and a served response are byte-identical.
        """
        if format == "json":
            return json.dumps(experiment_document(self), indent=2, sort_keys=True)
        return render(self.table, format=format)

    def __str__(self) -> str:
        return self.render()


def experiment_document(result: "ExperimentResult") -> Dict[str, Any]:
    """The canonical JSON document of an aggregated experiment.

    The table document (title, columns, rows, footers) plus the experiment's
    registry name — and nothing run-dependent (no cache/execution counters),
    so a cold run, a warm re-render and a pure store read of the same
    experiment over the same records serialise identically.
    """
    document = result.table.to_dict()
    document["experiment"] = result.spec.name
    return document


def aggregate_records(
    spec: ExperimentSpec, records: Sequence[RunRecord], model: Optional[Any] = None
) -> TableData:
    """Aggregate a record stream through the spec's pipeline into a table."""
    rows = apply_pipeline(list(records), spec.pipeline, model=model)
    return TableData(
        title=spec.title,
        columns=spec.columns,
        rows=tuple(rows),
        footers=tuple(evaluate_footers(rows, spec.footers)),
    )


def run_experiment(
    spec: Union[str, ExperimentSpec],
    *,
    store: Optional[Any] = None,
    resume: bool = True,
    executor: Optional[Executor] = None,
    model: Optional[Any] = None,
    progress: Optional[Any] = None,
) -> ExperimentResult:
    """Execute an experiment (by registered name or spec) and aggregate it.

    The sweep runs through :func:`~repro.runtime.executors.run_sweep`, so a
    ``store`` makes the experiment incremental: cells already stored are
    served without execution, fresh cells are persisted as they complete,
    and a warm invocation re-renders the table with **zero** scenario
    executions (``result.executed == 0``).  ``model`` optionally overrides
    the cells' named cost model — for both execution and any model-based
    derived columns (except where a derive op pins its own ``"model"``
    name: what the spec declares explicitly always wins).
    """
    if isinstance(spec, str):
        spec = experiment_spec(spec)
    spec.validate()
    work = spec.sweep if spec.sweep is not None else spec.cell_specs()
    result = run_sweep(
        work, executor=executor, model=model, progress=progress, store=store, resume=resume
    )
    return ExperimentResult(
        spec=spec, result=result, table=aggregate_records(spec, result.records, model=model)
    )


def aggregate_from_store(
    spec: Union[str, ExperimentSpec], store: Any, model: Optional[Any] = None
) -> ExperimentResult:
    """Re-render an experiment purely from ``store`` — no executor at all.

    Every cell must already be stored (e.g. by a previous
    :func:`run_experiment` or ``repro sweep --store``); missing cells raise
    :class:`~repro.exceptions.ReproError` instead of being executed.
    """
    if isinstance(spec, str):
        spec = experiment_spec(spec)
    spec.validate()
    cells = spec.cell_specs()
    records = store.get_many(cell.key() for cell in cells)
    missing = sum(1 for record in records if record is None)
    if missing:
        raise ReproError(
            f"experiment {spec.name!r}: {missing}/{len(cells)} cells missing from the "
            f"store; run it once with run_experiment(spec, store=...) to populate them"
        )
    result = SweepResult(records=list(records), cache_hits=len(records), executed=0)
    return ExperimentResult(
        spec=spec, result=result, table=aggregate_records(spec, result.records, model=model)
    )


# ----------------------------------------------------------------------
# the experiment registry
# ----------------------------------------------------------------------
#: Registered experiments: ``factory(**params) -> ExperimentSpec``.  The
#: same decorator-registry pattern as graph families / schedulers / problem
#: kinds — ``@experiment("E1")`` on a builder taking keyword overrides.
EXPERIMENTS = Registry("experiment")

#: Decorator: ``@experiment("E1")`` registers a spec builder.
experiment = EXPERIMENTS.register


def experiment_spec(name: str, **params: Any) -> ExperimentSpec:
    """Build the registered experiment ``name`` (case-insensitive), with
    optional parameter overrides; unknown names fail with the registry's
    error message listing what is available."""
    for candidate in (name, name.upper(), name.lower()):
        if candidate in EXPERIMENTS:
            return EXPERIMENTS.create(candidate, **params)
    return EXPERIMENTS.create(name, **params)  # raises with the available names


# ----------------------------------------------------------------------
# shared vocabulary of the registered experiments
# ----------------------------------------------------------------------
#: Mapping between the experiment suite's algorithm names and the runtime's
#: problem kinds (the tables say "rv_asynch_poly", the registry "rendezvous").
_PROBLEM_OF_ALGORITHM = {"rv_asynch_poly": "rendezvous", "baseline": "baseline"}

#: The inverse, as a declarative ``map`` derivation.
_ALGORITHM_MAP = {problem: name for name, problem in _PROBLEM_OF_ALGORITHM.items()}


def _problems_of(algorithms: Sequence[str]) -> Tuple[str, ...]:
    problems = []
    for algorithm in algorithms:
        if algorithm not in _PROBLEM_OF_ALGORITHM:
            raise ReproError(
                f"unknown algorithm {algorithm!r}; "
                f"available: {sorted(_PROBLEM_OF_ALGORITHM)}"
            )
        problems.append(_PROBLEM_OF_ALGORITHM[algorithm])
    return tuple(problems)


_FIGURE_OF_KIND = {"Q": "Figure 1", "Y'": "Figure 2", "Z": "Figure 3", "A'": "Figure 4"}


# ----------------------------------------------------------------------
# the registered experiments (E1 - E6, F1)
# ----------------------------------------------------------------------
@experiment("F1")
def _f1(
    kinds: Sequence[str] = ("Q", "Y'", "Z", "A'"),
    ks: Sequence[int] = (1, 2, 3, 4),
) -> ExperimentSpec:
    """F1–F4: structure of the trajectory constructions (paper Figures 1–4)."""
    cells = tuple(
        ScenarioSpec(
            problem="figures",
            family="ring",
            size=4,
            problem_params={"kind": kind, "k": k},
            name="f1-f4-figure-structures",
        )
        for kind in kinds
        for k in ks
    )
    return ExperimentSpec(
        name="F1",
        title="F1-F4: structure of the trajectory constructions (paper Figures 1-4)",
        description="Decompose Q, Y', Z and A' exactly as the paper's Figures 1-4 draw them.",
        cells=cells,
        pipeline=(
            {
                "op": "extract",
                "columns": ["kind", "k", ["length", "cost"], "composition"],
            },
            {
                "op": "derive",
                "kind": "map",
                "column": "figure",
                "source": "kind",
                "mapping": _FIGURE_OF_KIND,
            },
        ),
        columns=("figure", "kind", "k", "length", "composition"),
    )


@experiment("E1")
def _e1(
    sizes: Sequence[int] = (4, 6, 8, 10, 12),
    families: Sequence[str] = ("ring", "erdos_renyi"),
    labels: Tuple[int, int] = (6, 11),
    schedulers: Sequence[str] = ("round_robin", "avoider"),
    algorithms: Sequence[str] = ("rv_asynch_poly", "baseline"),
    max_traversals: int = 2_000_000,
    seed: int = 0,
) -> ExperimentSpec:
    """E1: measured rendezvous cost versus graph size (Theorem 3.1)."""
    sweep = SweepSpec(
        problems=_problems_of(algorithms),
        families=tuple(families),
        sizes=tuple(sizes),
        seeds=(seed,),
        schedulers=tuple(schedulers),
        label_sets=(tuple(labels),),
        max_traversals=max_traversals,
        name="e1-rendezvous-vs-size",
    )
    return ExperimentSpec(
        name="E1",
        title="E1: measured rendezvous cost vs graph size",
        description="Measure cost-to-meeting versus graph size (Theorem 3.1).",
        sweep=sweep,
        pipeline=(
            {
                "op": "extract",
                "columns": [
                    "family",
                    "n",
                    ["algorithm", "problem"],
                    "scheduler",
                    ["met", "ok"],
                    "cost",
                    "decisions",
                ],
            },
            {
                "op": "derive",
                "kind": "map",
                "column": "algorithm",
                "source": "algorithm",
                "mapping": _ALGORITHM_MAP,
            },
        ),
        columns=("family", "n", "algorithm", "scheduler", "met", "cost", "decisions"),
    )


@experiment("E2")
def _e2(
    small_labels: Sequence[int] = (1, 2, 4, 8, 16, 32),
    big_label_offset: int = 1,
    family: str = "ring",
    n: int = 6,
    scheduler: str = "delay_until_stop",
    max_traversals: int = 2_000_000,
    bound_model: Optional[str] = None,
) -> ExperimentSpec:
    """E2: measured and guaranteed cost as a function of the (smaller) label.

    For every label ``L`` the two agents carry labels ``L`` and
    ``L + offset``; the guaranteed bound is ``Π(n, |L|)`` for RV-asynch-poly
    versus the full exponential trajectory length for the naive baseline.
    ``bound_model`` pins a registered cost-model name for the bound column;
    by default it follows the run's model (live override or per-cell name).
    """
    sweep = SweepSpec(
        problems=("rendezvous", "baseline"),
        families=(family,),
        sizes=(n,),
        schedulers=(scheduler,),
        label_sets=tuple((label, label + big_label_offset) for label in small_labels),
        max_traversals=max_traversals,
        name="e2-rendezvous-vs-label",
    )
    return ExperimentSpec(
        name="E2",
        title=(
            "E2: cost vs label (measured under the delay-until-stop adversary, "
            "plus guarantees)"
        ),
        description="Measure and bound cost as a function of the smaller label.",
        sweep=sweep,
        pipeline=(
            {
                "op": "extract",
                "columns": [
                    "labels",
                    ["algorithm", "problem"],
                    ["met", "ok"],
                    ["measured_cost", "cost"],
                    "n",
                ],
            },
            {"op": "derive", "kind": "item", "column": "label_small", "source": "labels", "index": 0},
            {"op": "derive", "kind": "bit_length", "column": "label_length", "source": "label_small"},
            {
                "op": "derive",
                "kind": "guaranteed_bound",
                "column": "guaranteed_bound",
                "problem": "algorithm",
                "size": "n",
                "label": "label_small",
                **({} if bound_model is None else {"model": bound_model}),
            },
            {
                "op": "derive",
                "kind": "map",
                "column": "algorithm",
                "source": "algorithm",
                "mapping": _ALGORITHM_MAP,
            },
        ),
        columns=(
            "label_small",
            "label_length",
            "algorithm",
            "met",
            "measured_cost",
            "guaranteed_bound",
        ),
    )


def _e3_spec(
    sizes: Sequence[int] = (2, 4, 8, 16, 32),
    labels: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> ExperimentSpec:
    """E3: the analytic worst-case guarantees (pure computation, no simulation)."""
    cells = tuple(
        ScenarioSpec(
            problem="bounds",
            family="path",
            size=n,
            labels=(label, label + 1),
            cost_model="paper",
            name="e3-bound-scaling",
        )
        for n in sizes
        for label in labels
    )
    return ExperimentSpec(
        name="E3",
        title="E3: worst-case guarantees (Theorem 3.1 vs the exponential baseline)",
        description="Tabulate Pi(n, |L|) against the exponential baseline bound.",
        cells=cells,
        pipeline=(
            {
                "op": "extract",
                "columns": [
                    "n",
                    ["label", "label_small"],
                    "label_length",
                    "rv_bound",
                    "baseline_bound",
                ],
            },
        ),
        columns=("n", "label", "label_length", "rv_bound", "baseline_bound"),
        footers=(
            {
                "kind": "classify_growth",
                "x": "label",
                "series": [["RV-asynch-poly", "rv_bound"], ["baseline", "baseline_bound"]],
                "where": {"column": "n", "at": "max"},
                "template": "growth in the label at n={where}: {growth}",
            },
            {
                "kind": "power_law",
                "x": "n",
                "y": "rv_bound",
                "where": {"column": "label", "at": "first"},
                "template": (
                    "growth in the size at L={where}: "
                    "RV-asynch-poly bound ~ n^{slope:.1f} (a polynomial)"
                ),
            },
        ),
    )


EXPERIMENTS.register("E3", _e3_spec)
EXPERIMENTS.register("bounds", _e3_spec)  # the acceptance alias


@experiment("E4")
def _e4(
    sizes: Sequence[int] = (4, 5, 6, 7),
    families: Sequence[str] = ("ring", "path", "erdos_renyi"),
    seed: int = 0,
) -> ExperimentSpec:
    """E4: Procedure ESST cost and termination phase versus graph size."""
    sweep = SweepSpec(
        problems=("esst",),
        families=tuple(families),
        sizes=tuple(sizes),
        seeds=(seed,),
        name="e4-esst-scaling",
    )
    return ExperimentSpec(
        name="E4",
        title="E4: Procedure ESST (exploration with a semi-stationary token)",
        description="Measure Procedure ESST cost and termination phase versus graph size.",
        sweep=sweep,
        pipeline=(
            {
                "op": "extract",
                "columns": [
                    "family",
                    "n",
                    ["edges", "graph_edges"],
                    "final_phase",
                    "phase_bound",
                    "cost",
                    ["all_edges_traversed", "ok"],
                ],
            },
        ),
        columns=(
            "family",
            "n",
            "edges",
            "final_phase",
            "phase_bound",
            "cost",
            "all_edges_traversed",
        ),
    )


@experiment("E5")
def _e5(
    family: str = "ring",
    n: int = 8,
    labels: Tuple[int, int] = (6, 11),
    patiences: Sequence[int] = (4, 16, 64, 256),
    max_traversals: int = 2_000_000,
    seed: int = 0,
) -> ExperimentSpec:
    """E5: adversary ablation (the avoider additionally sweeps its patience).

    The scheduler/patience pairs are not rectangular, so the experiment is
    an explicit cell list; the table's ``patience`` column shows 0 for the
    adversaries that have no such knob.
    """
    pairs = [("round_robin", 0), ("random", 0), ("lazy", 0), ("delay_until_stop", 0)]
    pairs += [("avoider", patience) for patience in patiences]
    cells = tuple(
        ScenarioSpec(
            problem="rendezvous",
            family=family,
            size=n,
            seed=seed,
            labels=tuple(labels),
            scheduler=scheduler_name,
            scheduler_params={"patience": max(patience, 1)},
            max_traversals=max_traversals,
            name="e5-adversary-ablation",
        )
        for scheduler_name, patience in pairs
    )
    return ExperimentSpec(
        name="E5",
        title="E5: adversary ablation (RV-asynch-poly)",
        description="Compare adversaries, including a patience sweep for the avoider.",
        cells=cells,
        pipeline=(
            {
                "op": "extract",
                "columns": [
                    "scheduler",
                    "patience",
                    "family",
                    "n",
                    ["met", "ok"],
                    "cost",
                    "decisions",
                ],
            },
            {
                "op": "derive",
                "kind": "when",
                "column": "patience",
                "source": "patience",
                "equals": ["scheduler", "avoider"],
                "default": 0,
            },
        ),
        columns=("scheduler", "patience", "family", "n", "met", "cost", "decisions"),
    )


def team_scaling_cells(
    sizes: Sequence[int] = (5, 6),
    team_sizes: Sequence[int] = (2, 3),
    family: str = "ring",
    scheduler_name: str = "round_robin",
    max_traversals: int = 6_000_000,
    seed: int = 0,
) -> List[ScenarioSpec]:
    """The E6 grid as explicit cells (not rectangular: team sizes that
    exceed the actually built graph are skipped).  Shared by the registered
    experiment and the E6 benchmark so the skip rule lives in one place."""
    cells: List[ScenarioSpec] = []
    for n in sizes:
        graph_size = named_family(family, n, rng_seed=seed).size
        for k in team_sizes:
            if k > graph_size:
                continue
            cells.append(
                ScenarioSpec(
                    problem="teams",
                    family=family,
                    size=n,
                    seed=seed,
                    team_size=k,
                    scheduler=scheduler_name,
                    max_traversals=max_traversals,
                    name="e6-team-scaling",
                )
            )
    return cells


@experiment("E6")
def _e6(
    sizes: Sequence[int] = (5, 6),
    team_sizes: Sequence[int] = (2, 3),
    family: str = "ring",
    scheduler: str = "round_robin",
    max_traversals: int = 6_000_000,
    seed: int = 0,
) -> ExperimentSpec:
    """E6: Algorithm SGL (hence all four §4 problems) versus n and k."""
    cells = tuple(
        team_scaling_cells(
            sizes=sizes,
            team_sizes=team_sizes,
            family=family,
            scheduler_name=scheduler,
            max_traversals=max_traversals,
            seed=seed,
        )
    )
    return ExperimentSpec(
        name="E6",
        title=(
            "E6: Algorithm SGL / team problems "
            "(team size, leader election, renaming, gossiping)"
        ),
        description="Measure Algorithm SGL and the four team problems versus n and k.",
        cells=cells,
        pipeline=(
            {
                "op": "extract",
                "columns": [
                    "family",
                    "n",
                    "team_size",
                    "scheduler",
                    ["correct", "ok"],
                    "cost",
                    "reason",
                ],
            },
        ),
        columns=("family", "n", "team_size", "scheduler", "correct", "cost", "reason"),
    )
