"""Plain-text result tables.

The paper has no empirical tables, so the reproduction's "tables" are the
experiment summaries defined in EXPERIMENTS.md.  This module renders them as
aligned monospace tables (the benchmarks print them, the CLI shows them, and
EXPERIMENTS.md embeds them).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

__all__ = ["format_table", "format_records"]


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    rendered_rows: List[List[str]] = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(render_line([str(h) for h in headers]))
    lines.append(render_line(["-" * width for width in widths]))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def format_records(records: Iterable[Any], fields: Sequence[str], title: str = "") -> str:
    """Render a list of objects (dataclasses or dicts) as a table of ``fields``."""
    rows = []
    for record in records:
        if isinstance(record, dict):
            rows.append([record.get(field, "") for field in fields])
        else:
            rows.append([getattr(record, field, "") for field in fields])
    return format_table(fields, rows, title=title)
