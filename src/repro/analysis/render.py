"""One rendering path for every experiment table.

The seven hand-rolled ``*_table()`` functions of the seed repository are
replaced by a single :func:`render` over a :class:`TableData` — the uniform
"title + columns + rows + footers" shape the aggregation pipeline produces.
Three output formats:

* ``markdown`` — the aligned monospace table the repository has always
  printed (byte-identical to the historical renderers; EXPERIMENTS.md and
  the benchmark artifacts embed it);
* ``csv`` — RFC-4180 rows for spreadsheets and downstream tooling (footers,
  being prose, are omitted);
* ``json`` — the full document (title, columns, rows, footers), with
  deterministic key order, for machine consumption and golden comparisons.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from ..exceptions import ReproError
from .tables import format_table

__all__ = ["TableData", "FORMATS", "render"]

#: The supported output formats.
FORMATS = ("markdown", "csv", "json")


def _jsonable(value: Any) -> Any:
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


@dataclass(frozen=True)
class TableData:
    """A fully aggregated table, ready to render in any format."""

    title: str = ""
    columns: Tuple[str, ...] = ()
    rows: Tuple[Mapping[str, Any], ...] = ()
    footers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "rows", tuple(dict(row) for row in self.rows))
        object.__setattr__(self, "footers", tuple(str(line) for line in self.footers))

    def cells(self) -> Tuple[Tuple[Any, ...], ...]:
        """The row values in column order (missing cells are ``""``)."""
        return tuple(
            tuple(row.get(column, "") for column in self.columns) for row in self.rows
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [
                {column: _jsonable(row.get(column)) for column in self.columns}
                for row in self.rows
            ],
            "footers": list(self.footers),
        }


def _render_markdown(table: TableData) -> str:
    # Missing cells render blank, exactly like the csv path.
    rows = [["" if cell is None else cell for cell in row] for row in table.cells()]
    text = format_table(table.columns, rows, title=table.title)
    if table.footers:
        text = "\n".join([text, "", *table.footers])
    return text


def _render_csv(table: TableData) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.columns)
    for row in table.cells():
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue().rstrip("\n")


def _render_json(table: TableData) -> str:
    return json.dumps(table.to_dict(), indent=2, sort_keys=True)


_RENDERERS = {
    "markdown": _render_markdown,
    "csv": _render_csv,
    "json": _render_json,
}


def render(table: TableData, format: str = "markdown") -> str:
    """Render ``table`` in the requested ``format`` (see :data:`FORMATS`)."""
    if format not in _RENDERERS:
        raise ReproError(f"unknown table format {format!r}; available: {sorted(_RENDERERS)}")
    return _RENDERERS[format](table)
