"""Growth-rate fitting: polynomial versus exponential.

The paper's claims are asymptotic — "polynomial in the size of the graph and
in the length of the smaller label" versus "exponential".  The reproduction
checks the *shape* of measured and analytic curves with two elementary fits:

* a power-law fit (linear regression in log–log space), whose slope estimates
  the polynomial degree and whose residual is small when the data really is
  polynomial;
* an exponential fit (linear regression in semi-log space), whose residual is
  small when the data really is exponential.

:func:`classify_growth` compares the two fits and labels a curve
``"polynomial"`` or ``"exponential"``, which is what the experiment tables
report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = ["FitResult", "fit_power_law", "fit_exponential", "classify_growth"]


@dataclass(frozen=True)
class FitResult:
    """A least-squares fit of a one-parameter growth model.

    Attributes
    ----------
    kind:
        ``"power"`` (``y ≈ c·x^slope``) or ``"exponential"`` (``y ≈ c·slope^x``
        with ``slope`` the per-unit growth factor).
    slope:
        The fitted exponent (power law) or growth factor (exponential).
    intercept:
        The fitted constant ``c``.
    residual:
        Mean squared residual in the transformed (log) space; lower is better.
    """

    kind: str
    slope: float
    intercept: float
    residual: float


def _linear_regression(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("all x values identical; cannot fit")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    residual = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)) / n
    return slope, intercept, residual


def _validated(xs: Sequence[float], ys: Sequence[float]) -> None:
    if len(xs) != len(ys):
        raise ValueError("x and y must have the same length")
    if len(xs) < 3:
        raise ValueError("need at least three points to classify growth")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("growth fitting needs strictly positive data")


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y ≈ c · x^d`` by regression in log–log space."""
    _validated(xs, ys)
    slope, intercept, residual = _linear_regression(
        [math.log(x) for x in xs], [math.log(y) for y in ys]
    )
    return FitResult("power", slope, math.exp(intercept), residual)


def fit_exponential(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y ≈ c · b^x`` by regression in semi-log space; ``slope`` is ``b``."""
    _validated(xs, ys)
    slope, intercept, residual = _linear_regression(
        list(map(float, xs)), [math.log(y) for y in ys]
    )
    return FitResult("exponential", math.exp(slope), math.exp(intercept), residual)


def classify_growth(xs: Sequence[float], ys: Sequence[float]) -> str:
    """Label a curve ``"polynomial"`` or ``"exponential"`` by comparing fits.

    A constant (or nearly constant) curve is classified as ``"polynomial"``
    (degree ≈ 0 is still a polynomial).  The classification compares the
    residuals of the two fits in their respective transformed spaces.
    """
    power = fit_power_law(xs, ys)
    exponential = fit_exponential(xs, ys)
    # Comparison written without division: the values may be astronomically
    # large integers (the analytic bounds), and converting their ratio to a
    # float would overflow.
    if max(ys) < 4 * min(ys):
        # Too flat to distinguish; flat curves are (degree-0) polynomials.
        return "polynomial"
    return "polynomial" if power.residual <= exponential.residual else "exponential"
