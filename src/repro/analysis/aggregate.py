"""The aggregation layer: rows, reducers, group-by, pivot, derived columns.

Experiment tables are *views* over the uniform
:class:`~repro.runtime.records.RunRecord` stream that ``run_sweep`` and
``store.query()`` return.  This module provides the two halves of that view:

* a small functional toolkit — :func:`rows_from_records`, :func:`group_by`,
  :func:`pivot`, the :data:`REDUCERS` (``mean``/``max``/``min``/``sum``/
  ``count``/``p95``) and programmatic :func:`derive` — operating on plain
  row dicts; and
* a **declarative pipeline**: :func:`apply_pipeline` interprets a JSON list
  of operations (``extract``, ``derive``, ``filter``, ``sort``,
  ``group_by``, ``pivot``) and :func:`evaluate_footers` a JSON list of
  summary lines (growth classification, fitted power-law exponents), which
  is what a frozen :class:`~repro.analysis.experiment_spec.ExperimentSpec`
  stores.

Derived columns cover the experiment suite's needs: bit lengths, value
maps, constants, conditional values, per-row guaranteed bounds from a
registered cost model, cost ratios against a baseline row, and fitted
growth exponents via :func:`~repro.analysis.fitting.fit_power_law`.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ReproError
from ..exploration.cost_model import CostModel
from ..runtime.records import RunRecord
from ..runtime.records import resolve_field as _resolve_field
from ..runtime.registry import COST_MODELS, Registry
from .fitting import classify_growth, fit_power_law

__all__ = [
    "Row",
    "REDUCERS",
    "reduce_values",
    "resolve_field",
    "rows_from_records",
    "group_by",
    "pivot",
    "derive",
    "DERIVATIONS",
    "RowsTransform",
    "FOOTERS",
    "apply_pipeline",
    "evaluate_footers",
]

#: One table row: column name -> plain value.
Row = Dict[str, Any]

_MISSING = object()


# ----------------------------------------------------------------------
# reducers
# ----------------------------------------------------------------------
def _mean(values: Sequence[Any]) -> float:
    return sum(values) / len(values)


def _p95(values: Sequence[Any]) -> Any:
    """The 95th percentile (nearest-rank on the sorted values)."""
    ordered = sorted(values)
    rank = max(0, math.ceil(0.95 * len(ordered)) - 1)
    return ordered[rank]


#: Named reducers usable in ``group_by`` / ``pivot`` operations.
REDUCERS: Dict[str, Callable[[Sequence[Any]], Any]] = {
    "mean": _mean,
    "max": max,
    "min": min,
    "sum": sum,
    "count": len,
    "p95": _p95,
    "first": lambda values: values[0],
    "last": lambda values: values[-1],
}


def reduce_values(reducer: str, values: Sequence[Any]) -> Any:
    """Apply the named reducer to a non-empty list of values."""
    if reducer not in REDUCERS:
        raise ReproError(f"unknown reducer {reducer!r}; available: {sorted(REDUCERS)}")
    if not values:
        raise ReproError(f"reducer {reducer!r} applied to an empty group")
    return REDUCERS[reducer](list(values))


# ----------------------------------------------------------------------
# records -> rows
# ----------------------------------------------------------------------
#: The record/extra/spec/scheduler-params resolution rule, shared with
#: :meth:`~repro.runtime.records.SweepResult.table`.
resolve_field = _resolve_field


def _column_pairs(columns: Sequence[Any]) -> List[Tuple[str, str]]:
    """Normalise a column list: ``"name"`` or ``("out", "source")`` pairs."""
    pairs: List[Tuple[str, str]] = []
    for column in columns:
        if isinstance(column, str):
            pairs.append((column, column))
        else:
            out, source = column
            pairs.append((str(out), str(source)))
    return pairs


def rows_from_records(records: Iterable[RunRecord], columns: Sequence[Any]) -> List[Row]:
    """Extract one row per record; ``columns`` lists names or (out, source) pairs."""
    pairs = _column_pairs(columns)
    return [{out: resolve_field(record, source) for out, source in pairs} for record in records]


# ----------------------------------------------------------------------
# group-by / pivot
# ----------------------------------------------------------------------
def group_by(
    rows: Iterable[Row],
    keys: Sequence[str],
    aggregates: Mapping[str, Any],
) -> List[Row]:
    """Group rows by ``keys`` and reduce columns.

    ``aggregates`` maps each output column to ``(reducer, column)`` (or a
    ``{"reducer": ..., "column": ...}`` mapping); the ``count`` reducer
    accepts a ``None`` column.  Groups come back in first-seen order, each
    as one row carrying the key columns plus the aggregate columns.
    """
    keys = list(keys)
    groups: Dict[Tuple[Any, ...], List[Row]] = {}
    for row in rows:
        group_key = tuple(row.get(key) for key in keys)
        groups.setdefault(group_key, []).append(row)
    out: List[Row] = []
    for group_key, members in groups.items():
        row: Row = dict(zip(keys, group_key))
        for column, how in aggregates.items():
            if isinstance(how, Mapping):
                reducer, source = how.get("reducer", "mean"), how.get("column")
            else:
                reducer, source = how
            if reducer == "count" and source is None:
                row[column] = len(members)
            else:
                row[column] = reduce_values(reducer, [member[source] for member in members])
        out.append(row)
    return out


def pivot(
    rows: Iterable[Row],
    index: str,
    columns: str,
    values: str,
    reducer: str = "first",
) -> List[Row]:
    """Pivot ``rows``: one output row per ``index`` value, one output column
    per ``columns`` value, cells reduced from ``values``.

    Index rows keep first-seen order; pivoted columns are sorted by their
    (stringified) column value for a deterministic layout.  Missing cells
    are ``None``.
    """
    cells: Dict[Any, Dict[Any, List[Any]]] = {}
    column_values: List[Any] = []
    for row in rows:
        cells.setdefault(row.get(index), {}).setdefault(row.get(columns), []).append(
            row.get(values)
        )
        if row.get(columns) not in column_values:
            column_values.append(row.get(columns))
    column_values.sort(key=str)
    out: List[Row] = []
    for index_value, by_column in cells.items():
        row = {index: index_value}
        for column_value in column_values:
            bucket = by_column.get(column_value)
            row[str(column_value)] = None if not bucket else reduce_values(reducer, bucket)
        out.append(row)
    return out


def derive(rows: Iterable[Row], column: str, function: Callable[[Row], Any]) -> List[Row]:
    """Add ``column = function(row)`` to every row (programmatic form)."""
    out = []
    for row in rows:
        row = dict(row)
        row[column] = function(row)
        out.append(row)
    return out


# ----------------------------------------------------------------------
# declarative derivations
# ----------------------------------------------------------------------
#: Derivation kinds usable in ``{"op": "derive", "kind": ...}`` pipeline ops.
#: Each factory receives the op mapping (plus the live cost-model override)
#: and returns either a per-row callable or a :class:`RowsTransform` for
#: kinds that need cross-row context (``ratio``, ``fit_power_law``).
DERIVATIONS = Registry("derivation")


class RowsTransform:
    """Marker wrapper: a derivation that maps the whole row list at once."""

    def __init__(self, function: Callable[[List[Row]], List[Row]]) -> None:
        self.function = function

    def __call__(self, rows: List[Row]) -> List[Row]:
        return self.function(rows)


@DERIVATIONS.register("bit_length")
def _derive_bit_length(op: Mapping[str, Any], model: Optional[CostModel]):
    source = op["source"]
    return lambda row: int(row[source]).bit_length()


@DERIVATIONS.register("item")
def _derive_item(op: Mapping[str, Any], model: Optional[CostModel]):
    source, index = op["source"], int(op.get("index", 0))
    return lambda row: None if row.get(source) is None else row[source][index]


@DERIVATIONS.register("map")
def _derive_map(op: Mapping[str, Any], model: Optional[CostModel]):
    source, mapping = op["source"], dict(op["mapping"])
    default = op.get("default")

    def _mapped(row: Row) -> Any:
        value = row.get(source)
        if value in mapping:
            return mapping[value]
        # JSON round trips stringify mapping keys; look the value up both ways.
        return mapping.get(str(value), default)

    return _mapped


@DERIVATIONS.register("const")
def _derive_const(op: Mapping[str, Any], model: Optional[CostModel]):
    value = op["value"]
    return lambda row: value


@DERIVATIONS.register("when")
def _derive_when(op: Mapping[str, Any], model: Optional[CostModel]):
    """Keep ``source`` where ``equals`` holds, otherwise the ``default``."""
    source = op["source"]
    match_column, match_value = op["equals"]
    default = op.get("default")
    return lambda row: row.get(source) if row.get(match_column) == match_value else default


@DERIVATIONS.register("guaranteed_bound")
def _derive_guaranteed_bound(op: Mapping[str, Any], model: Optional[CostModel]):
    """The worst-case guarantee for a row: ``Π(n, |L|)`` for the rendezvous
    problem, the full exponential trajectory length for the baseline.

    Model precedence: a ``"model"`` name pinned in the op wins (the spec
    declared it), then the live ``model`` override, then ``"simulation"``.
    """
    problem_column = op.get("problem", "problem")
    size_column = op.get("size", "n")
    label_column = op.get("label", "label_small")
    if op.get("model") is not None:
        bound_model = COST_MODELS.create(op["model"])
    elif model is not None:
        bound_model = model
    else:
        bound_model = COST_MODELS.create("simulation")

    def _bound(row: Row) -> int:
        n, label = int(row[size_column]), int(row[label_column])
        if row.get(problem_column) == "baseline":
            return bound_model.baseline_trajectory_length(n, label)
        return bound_model.pi_bound(n, label.bit_length())

    return _bound


@DERIVATIONS.register("ratio")
def _derive_ratio_factory(op: Mapping[str, Any], model: Optional[CostModel]) -> RowsTransform:
    return RowsTransform(lambda rows: _derive_ratio(rows, op))


@DERIVATIONS.register("fit_power_law")
def _derive_fit_factory(op: Mapping[str, Any], model: Optional[CostModel]) -> RowsTransform:
    return RowsTransform(lambda rows: _derive_fit_power_law(rows, op))


def _derive_ratio(rows: List[Row], op: Mapping[str, Any]) -> List[Row]:
    """``column = value / value-of-the-matching-baseline-row``.

    The baseline row shares the ``keys`` columns and has
    ``baseline[0] == baseline[1]``; rows without a baseline get ``None``.
    """
    column, source, keys = op["column"], op["source"], list(op.get("keys", ()))
    match_column, match_value = op["baseline"]
    baselines: Dict[Tuple[Any, ...], Any] = {}
    for row in rows:
        if row.get(match_column) == match_value:
            baselines[tuple(row.get(key) for key in keys)] = row.get(source)
    out = []
    for row in rows:
        row = dict(row)
        base = baselines.get(tuple(row.get(key) for key in keys))
        row[column] = None if base in (None, 0) else row[source] / base
        out.append(row)
    return out


def _derive_fit_power_law(rows: List[Row], op: Mapping[str, Any]) -> List[Row]:
    """Fitted growth exponent of ``y ~ c·x^e`` per group, broadcast to rows.

    Groups with fewer than three distinct ``x`` values get ``None`` (the
    fit needs three points).
    """
    column, x, y = op["column"], op["x"], op["y"]
    keys = list(op.get("group", ()))
    groups: Dict[Tuple[Any, ...], List[Row]] = {}
    for row in rows:
        groups.setdefault(tuple(row.get(key) for key in keys), []).append(row)
    slopes: Dict[Tuple[Any, ...], Optional[float]] = {}
    for group_key, members in groups.items():
        by_x = {member[x]: member[y] for member in members}
        if len(by_x) < 3:
            slopes[group_key] = None
        else:
            xs = sorted(by_x)
            slopes[group_key] = fit_power_law(xs, [by_x[value] for value in xs]).slope
    out = []
    for row in rows:
        row = dict(row)
        row[column] = slopes[tuple(row.get(key) for key in keys)]
        out.append(row)
    return out


# ----------------------------------------------------------------------
# the declarative pipeline
# ----------------------------------------------------------------------
def apply_pipeline(
    records: Sequence[RunRecord],
    pipeline: Sequence[Mapping[str, Any]],
    model: Optional[CostModel] = None,
) -> List[Row]:
    """Run a declarative op list over a record stream, producing rows.

    The first op is normally ``extract`` (records → rows); a pipeline that
    starts with any other op gets an implicit extraction of the default
    table columns.  ``model`` optionally overrides the cost model used by
    model-based derivations (mirroring ``run(spec, model=...)``).
    """
    pipeline = list(pipeline)
    if not pipeline or pipeline[0].get("op") != "extract":
        pipeline.insert(
            0,
            {
                "op": "extract",
                "columns": ["problem", "family", "n", "seed", "scheduler", "ok", "cost"],
            },
        )
    rows: List[Row] = []
    for op in pipeline:
        kind = op.get("op")
        if kind == "extract":
            rows = rows_from_records(records, op["columns"])
        elif kind == "derive":
            derivation = DERIVATIONS.create(op.get("kind"), op, model)
            if isinstance(derivation, RowsTransform):
                rows = derivation(rows)
            else:
                rows = derive(rows, op["column"], derivation)
        elif kind == "filter":
            rows = [
                row
                for row in rows
                if all(row.get(key) == value for key, value in dict(op["where"]).items())
            ]
        elif kind == "sort":
            for key in reversed(list(op["keys"])):
                rows = sorted(rows, key=lambda row: row.get(key))
        elif kind == "group_by":
            rows = group_by(rows, op["keys"], op["aggregates"])
        elif kind == "pivot":
            rows = pivot(
                rows,
                op["index"],
                op["columns"],
                op["values"],
                reducer=op.get("reducer", "first"),
            )
        else:
            raise ReproError(
                f"unknown pipeline op {kind!r}; available: "
                "extract, derive, filter, sort, group_by, pivot"
            )
    return rows


# ----------------------------------------------------------------------
# footers (summary lines under a table)
# ----------------------------------------------------------------------
FOOTERS = Registry("footer")


def _rows_at(rows: List[Row], where: Optional[Mapping[str, Any]]) -> Tuple[List[Row], Any]:
    """Restrict rows per a footer's ``where`` clause.

    ``where`` is ``{"column": c, "at": "max"|"min"|"first"}`` or
    ``{"column": c, "equals": value}``; returns the restricted rows and the
    resolved pivot value (for the line's template).
    """
    if where is None:
        return rows, None
    column = where["column"]
    if "equals" in where:
        value = where["equals"]
    else:
        at = where.get("at", "max")
        candidates = [row[column] for row in rows if row.get(column) is not None]
        if not candidates:
            return [], None
        value = {"max": max, "min": min, "first": lambda seq: seq[0]}[at](candidates)
    return [row for row in rows if row.get(column) == value], value


def _series_points(rows: List[Row], x: str, y: str) -> Tuple[List[Any], List[Any]]:
    """Deduplicate on ``x`` (last row wins) and sort by ``x``."""
    by_x = {row[x]: row[y] for row in rows if row.get(x) is not None}
    xs = sorted(by_x)
    return xs, [by_x[value] for value in xs]


@FOOTERS.register("classify_growth")
def _footer_classify_growth(rows: List[Row], op: Mapping[str, Any]) -> Optional[str]:
    """``"polynomial"``/``"exponential"`` labels for one or more y-series."""
    selected, at = _rows_at(rows, op.get("where"))
    parts = []
    for name, column in op["series"]:
        xs, ys = _series_points(selected, op["x"], column)
        if len(xs) < 3:
            return None
        parts.append(f"{name} -> {classify_growth(xs, ys)}")
    return str(op["template"]).format(where=at, growth=", ".join(parts))


@FOOTERS.register("power_law")
def _footer_power_law(rows: List[Row], op: Mapping[str, Any]) -> Optional[str]:
    """The fitted power-law exponent of one y-series, as a summary line."""
    selected, at = _rows_at(rows, op.get("where"))
    xs, ys = _series_points(selected, op["x"], op["y"])
    if len(xs) < 3:
        return None
    fit = fit_power_law(xs, ys)
    return str(op["template"]).format(where=at, slope=fit.slope, intercept=fit.intercept)


def evaluate_footers(
    rows: Sequence[Row], footers: Sequence[Mapping[str, Any]]
) -> List[str]:
    """Evaluate footer ops over the final rows; ops that decline (too few
    points) contribute no line."""
    lines: List[str] = []
    for op in footers:
        line = FOOTERS.create(op.get("kind"), list(rows), op)
        if line is not None:
            lines.append(line)
    return lines
