"""Analysis toolkit: the declarative experiment pipeline.

Public API
----------
* aggregate: :func:`~repro.analysis.aggregate.group_by`,
  :func:`~repro.analysis.aggregate.pivot`, the named reducers
  (``mean``/``max``/``min``/``sum``/``count``/``p95``), declarative
  :func:`~repro.analysis.aggregate.apply_pipeline` and derived columns
* experiment specs: :class:`~repro.analysis.experiment_spec.ExperimentSpec`,
  the :data:`~repro.analysis.experiment_spec.EXPERIMENTS` registry
  (``@experiment("E1")`` … ``"E6"``, ``"F1"``, ``"bounds"``),
  :func:`~repro.analysis.experiment_spec.experiment_spec`,
  :func:`~repro.analysis.experiment_spec.run_experiment` and
  :func:`~repro.analysis.experiment_spec.aggregate_from_store`
* render: :func:`~repro.analysis.render.render` over
  :class:`~repro.analysis.render.TableData` (markdown / csv / json)
* fitting: :func:`~repro.analysis.fitting.fit_power_law`,
  :func:`~repro.analysis.fitting.fit_exponential`,
  :func:`~repro.analysis.fitting.classify_growth`
* tables: :func:`~repro.analysis.tables.format_table`,
  :func:`~repro.analysis.tables.format_records`
* experiments: backwards-compatible wrappers
  (:mod:`repro.analysis.experiments`)
"""

from .aggregate import (
    REDUCERS,
    apply_pipeline,
    evaluate_footers,
    group_by,
    pivot,
    rows_from_records,
)
from .experiment_spec import (
    EXPERIMENTS,
    ExperimentResult,
    ExperimentSpec,
    aggregate_from_store,
    experiment,
    experiment_document,
    experiment_key,
    experiment_spec,
    run_experiment,
)
from .fitting import FitResult, classify_growth, fit_exponential, fit_power_law
from .render import FORMATS, TableData, render
from .tables import format_records, format_table
from . import experiments
from ..ticksim import experiments as _tick_experiments  # noqa: F401  (registers T1-T3)

__all__ = [
    "REDUCERS",
    "apply_pipeline",
    "evaluate_footers",
    "group_by",
    "pivot",
    "rows_from_records",
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentSpec",
    "aggregate_from_store",
    "experiment",
    "experiment_document",
    "experiment_key",
    "experiment_spec",
    "run_experiment",
    "FitResult",
    "classify_growth",
    "fit_exponential",
    "fit_power_law",
    "FORMATS",
    "TableData",
    "render",
    "format_records",
    "format_table",
    "experiments",
]
