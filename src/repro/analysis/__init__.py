"""Analysis toolkit: growth fitting, result tables, experiment drivers.

Public API
----------
* fitting: :func:`~repro.analysis.fitting.fit_power_law`,
  :func:`~repro.analysis.fitting.fit_exponential`,
  :func:`~repro.analysis.fitting.classify_growth`
* tables: :func:`~repro.analysis.tables.format_table`,
  :func:`~repro.analysis.tables.format_records`
* experiments: the E1–E6 / F1–F4 drivers of
  :mod:`repro.analysis.experiments`
"""

from .fitting import FitResult, classify_growth, fit_exponential, fit_power_law
from .tables import format_records, format_table
from . import experiments

__all__ = [
    "FitResult",
    "classify_growth",
    "fit_exponential",
    "fit_power_law",
    "format_records",
    "format_table",
    "experiments",
]
