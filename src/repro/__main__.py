"""``python -m repro`` — the CLI without an installed console script.

The queue executor spawns its worker processes this way, so a bare checkout
(plus ``PYTHONPATH=src``) can run a distributed sweep with no install step.
"""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
