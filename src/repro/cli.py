"""Command-line interface: run scenarios and sweeps through the runtime.

Every subcommand builds a declarative
:class:`~repro.runtime.spec.ScenarioSpec` (or
:class:`~repro.runtime.spec.SweepSpec`) and executes it through the unified
scenario runtime — the same facade the experiment drivers, benchmarks and
examples use.

Examples
--------
Run a single rendezvous on an 8-node ring under the avoiding adversary::

    repro rendezvous --family ring --size 8 --labels 6 11 --scheduler avoider

Run a scenario stored as JSON, or write one out without running it::

    repro run --spec scenario.json
    repro rendezvous --size 8 --dump-spec scenario.json

Sweep a grid of scenarios over two worker processes::

    repro sweep --family ring --sizes 4 8 12 --schedulers round_robin avoider \
        --seeds 3 --jobs 2

Run Procedure ESST on a random graph::

    repro esst --family erdos_renyi --size 7

Run Algorithm SGL (and hence the four team problems) for 3 agents::

    repro teams --family ring --size 6 --team-size 3

Regenerate an experiment table::

    repro experiment e3
    repro experiment f1
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .analysis import experiments
from .exceptions import ReproError
from .runtime import (
    GRAPH_FAMILIES,
    PROBLEMS,
    SCHEDULERS,
    RunRecord,
    ScenarioSpec,
    SweepSpec,
)
from .runtime.executors import make_executor, run_sweep
from .runtime.runner import run

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'How to Meet Asynchronously at Polynomial Cost' "
            "(Dieudonné, Pelc, Villain, PODC 2013)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--family",
            default="ring",
            choices=sorted(GRAPH_FAMILIES),
            help="graph family (default: ring)",
        )
        sub.add_argument("--size", type=int, default=6, help="graph size (default: 6)")
        sub.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
        sub.add_argument(
            "--max-traversals",
            type=int,
            default=2_000_000,
            help="total edge-traversal budget (default: 2,000,000)",
        )
        sub.add_argument(
            "--dump-spec",
            metavar="FILE",
            default=None,
            help="write the scenario spec as JSON to FILE instead of running it",
        )

    rendezvous = subparsers.add_parser(
        "rendezvous", help="run Algorithm RV-asynch-poly for two agents"
    )
    add_common(rendezvous)
    rendezvous.add_argument(
        "--labels", type=int, nargs=2, default=(6, 11), help="the two agent labels"
    )
    rendezvous.add_argument(
        "--scheduler",
        default="round_robin",
        choices=sorted(SCHEDULERS),
        help="adversary strategy (default: round_robin)",
    )
    rendezvous.add_argument(
        "--baseline",
        action="store_true",
        help="run the naive exponential baseline instead of RV-asynch-poly",
    )

    esst = subparsers.add_parser(
        "esst", help="run Procedure ESST (exploration with a semi-stationary token)"
    )
    add_common(esst)
    esst.add_argument(
        "--token-node",
        type=int,
        default=None,
        help="node holding the token (default: the highest-numbered node)",
    )

    teams = subparsers.add_parser(
        "teams", help="run Algorithm SGL and the four team problems"
    )
    add_common(teams)
    teams.add_argument("--team-size", type=int, default=3, help="number of agents (default: 3)")
    teams.add_argument(
        "--scheduler",
        default="round_robin",
        choices=sorted(SCHEDULERS),
        help="adversary strategy (default: round_robin)",
    )

    run_cmd = subparsers.add_parser(
        "run", help="run one scenario described by a JSON ScenarioSpec file"
    )
    run_cmd.add_argument(
        "--spec", required=True, metavar="FILE", help="path to the ScenarioSpec JSON"
    )
    run_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the full RunRecord as JSON instead of a summary",
    )

    sweep = subparsers.add_parser(
        "sweep", help="run a grid of scenarios (sizes x schedulers x seeds x ...)"
    )
    sweep.add_argument(
        "--spec", default=None, metavar="FILE", help="path to a SweepSpec JSON (overrides the grid flags)"
    )
    sweep.add_argument(
        "--problem",
        default="rendezvous",
        choices=sorted(PROBLEMS),
        help="problem kind run at every grid cell (default: rendezvous)",
    )
    sweep.add_argument(
        "--family",
        nargs="+",
        default=["ring"],
        choices=sorted(GRAPH_FAMILIES),
        help="graph families (default: ring)",
    )
    sweep.add_argument(
        "--sizes", type=int, nargs="+", default=[6], help="graph sizes (default: 6)"
    )
    sweep.add_argument(
        "--schedulers",
        nargs="+",
        default=["round_robin"],
        choices=sorted(SCHEDULERS),
        help="adversary strategies (default: round_robin)",
    )
    sweep.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="number of seeds: the grid uses seeds 0 .. N-1 (default: 1)",
    )
    sweep.add_argument(
        "--labels", type=int, nargs="+", default=None, help="agent labels (default: per-problem)"
    )
    sweep.add_argument(
        "--team-size", type=int, default=None, help="team size for --problem teams"
    )
    sweep.add_argument(
        "--max-traversals",
        type=int,
        default=2_000_000,
        help="per-cell edge-traversal budget (default: 2,000,000)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial; default: 1)",
    )
    sweep.add_argument(
        "--json", metavar="FILE", default=None, help="also write the SweepResult JSON to FILE"
    )
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the experiment tables (EXPERIMENTS.md)"
    )
    experiment.add_argument(
        "name",
        choices=["f1", "e1", "e2", "e3", "e4", "e5", "e6"],
        help="experiment identifier",
    )
    return parser


# ----------------------------------------------------------------------
# record printers (one per problem kind)
# ----------------------------------------------------------------------
def _print_graph_line(record: RunRecord) -> None:
    print(
        f"graph: {record.graph_name} "
        f"({record.graph_size} nodes, {record.graph_edges} edges)"
    )


def _print_rendezvous(record: RunRecord) -> None:
    algorithm = (
        "naive exponential baseline"
        if record.problem == "baseline"
        else "RV-asynch-poly"
    )
    _print_graph_line(record)
    print(f"algorithm: {algorithm}; adversary: {record.scheduler}")
    print(f"result: {record.summary()}")


def _print_esst(record: RunRecord) -> None:
    extra = record.extra_dict
    _print_graph_line(record)
    print(f"token at node {extra['token_node']}, agent starts at node {extra['start']}")
    print(
        f"ESST finished in phase {extra['final_phase']} "
        f"(bound 9n+3 = {extra['phase_bound']}) after {record.cost} edge traversals"
    )
    print(f"all edges traversed: {record.ok}")


def _print_teams(record: RunRecord) -> None:
    extra = record.extra_dict
    labels = list(extra["team_labels"])
    print(f"graph: {record.graph_name}; team labels: {labels}")
    print(f"all agents output: {extra['all_output']}; outputs correct: {record.ok}")
    print(f"total cost (edge traversals until every agent output): {record.cost}")
    if record.ok:
        print(f"team size: {len(labels)}; leader: {extra['leader']}")
        renaming = {label: rank + 1 for rank, label in enumerate(labels)}
        print(f"perfect renaming: {renaming}")


_PRINTERS = {
    "rendezvous": _print_rendezvous,
    "baseline": _print_rendezvous,
    "esst": _print_esst,
    "teams": _print_teams,
}


def _print_record(record: RunRecord) -> None:
    _PRINTERS.get(record.problem, _print_rendezvous)(record)


def _execute_or_dump(spec: ScenarioSpec, dump_spec: Optional[str]) -> int:
    """Run ``spec`` (or write it to disk when ``--dump-spec`` was given)."""
    if dump_spec is not None:
        Path(dump_spec).write_text(spec.to_json() + "\n", encoding="utf-8")
        print(f"wrote scenario spec to {dump_spec}")
        return 0
    record = run(spec)
    _print_record(record)
    return 0 if record.ok else 1


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _run_rendezvous(args: argparse.Namespace) -> int:
    spec = ScenarioSpec(
        problem="baseline" if args.baseline else "rendezvous",
        family=args.family,
        size=args.size,
        seed=args.seed,
        labels=tuple(args.labels),
        scheduler=args.scheduler,
        max_traversals=args.max_traversals,
    )
    return _execute_or_dump(spec, args.dump_spec)


def _run_esst(args: argparse.Namespace) -> int:
    spec = ScenarioSpec(
        problem="esst",
        family=args.family,
        size=args.size,
        seed=args.seed,
        token_node=args.token_node,
        max_traversals=args.max_traversals,
    )
    return _execute_or_dump(spec, args.dump_spec)


def _run_teams(args: argparse.Namespace) -> int:
    spec = ScenarioSpec(
        problem="teams",
        family=args.family,
        size=args.size,
        seed=args.seed,
        team_size=args.team_size,
        scheduler=args.scheduler,
        max_traversals=args.max_traversals,
    )
    return _execute_or_dump(spec, args.dump_spec)


def _run_spec_file(args: argparse.Namespace) -> int:
    spec = ScenarioSpec.from_json(Path(args.spec).read_text(encoding="utf-8"))
    record = run(spec)
    if args.json:
        print(record.to_json())
    else:
        _print_record(record)
        print(f"ok: {record.ok}")
    return 0 if record.ok else 1


def _run_sweep(args: argparse.Namespace) -> int:
    if args.spec is not None:
        sweep = SweepSpec.from_json(Path(args.spec).read_text(encoding="utf-8"))
    else:
        sweep = SweepSpec(
            problems=(args.problem,),
            families=tuple(args.family),
            sizes=tuple(args.sizes),
            seeds=tuple(range(args.seeds)),
            schedulers=tuple(args.schedulers),
            label_sets=(None if args.labels is None else tuple(args.labels),),
            team_sizes=(args.team_size,),
            max_traversals=args.max_traversals,
        )
    total = len(sweep)

    def progress(done: int, _total: int, record: RunRecord) -> None:
        if not args.quiet:
            status = "ok " if record.ok else "FAIL"
            print(
                f"[{done}/{total}] {status} {record.problem} {record.family} "
                f"n={record.graph_size} seed={record.seed} "
                f"scheduler={record.scheduler} cost={record.cost}"
            )

    executor = make_executor(args.jobs)
    result = run_sweep(sweep, executor=executor, progress=progress)
    print()
    print(result.table(title=f"sweep: {total} cells, jobs={args.jobs}"))
    print()
    print(
        f"ok: {sum(1 for record in result if record.ok)}/{len(result)}  "
        f"max cost: {result.max_cost()}  mean cost: {result.mean_cost():.1f}"
    )
    if args.json is not None:
        Path(args.json).write_text(result.to_json() + "\n", encoding="utf-8")
        print(f"wrote SweepResult JSON to {args.json}")
    return 0 if result.all_ok else 1


def _run_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name == "f1":
        print(experiments.figure_structures_table(experiments.figure_structures()))
    elif name == "e1":
        print(experiments.rendezvous_vs_size_table(experiments.rendezvous_vs_size()))
    elif name == "e2":
        print(experiments.rendezvous_vs_label_table(experiments.rendezvous_vs_label()))
    elif name == "e3":
        print(experiments.bound_scaling_table(experiments.bound_scaling()))
    elif name == "e4":
        print(experiments.esst_scaling_table(experiments.esst_scaling()))
    elif name == "e5":
        print(experiments.adversary_ablation_table(experiments.adversary_ablation()))
    elif name == "e6":
        print(experiments.team_scaling_table(experiments.team_scaling()))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "rendezvous": _run_rendezvous,
        "esst": _run_esst,
        "teams": _run_teams,
        "run": _run_spec_file,
        "sweep": _run_sweep,
        "experiment": _run_experiment,
    }
    handler = handlers.get(args.command)
    if handler is None:
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return handler(args)
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
