"""Command-line interface: run scenarios and sweeps through the runtime.

Every subcommand builds a declarative
:class:`~repro.runtime.spec.ScenarioSpec` (or
:class:`~repro.runtime.spec.SweepSpec`) and executes it through the unified
scenario runtime — the same facade the experiment drivers, benchmarks and
examples use.

Examples
--------
Run a single rendezvous on an 8-node ring under the avoiding adversary::

    repro rendezvous --family ring --size 8 --labels 6 11 --scheduler avoider

Run a scenario stored as JSON, or write one out without running it::

    repro run --spec scenario.json
    repro rendezvous --size 8 --dump-spec scenario.json

Sweep a grid of scenarios over two worker processes::

    repro sweep --family ring --sizes 4 8 12 --schedulers round_robin avoider \
        --seeds 3 --jobs 2

Sweep against the content-addressed result store (the second invocation
serves every cell from the store and executes nothing; an interrupted sweep
resumes where it stopped)::

    repro sweep --sizes 4 8 12 --seeds 3 --store .repro-store
    repro sweep --sizes 4 8 12 --seeds 3 --store .repro-store

Profile a run (span table attributing the engine's wall time), or dump
every metric a command produced (``--format prom`` for Prometheus text)::

    repro run --spec scenario.json --profile
    repro metrics dump --format prom sweep --sizes 4 8 --seeds 2

Inspect and maintain a store::

    repro store ls
    repro store show 3fa9c1
    repro store gc --max-records 10000

Run a sweep over the distributed work-queue fabric — one shot (spawns 2
local worker processes), or as the full dispatch/worker/merge lifecycle
whose pieces may run on different machines::

    repro sweep --sizes 4 8 12 --seeds 3 --jobs 2 --executor queue

    repro queue dispatch --sizes 4 8 12 --seeds 3 --queue /shared/q
    repro worker --queue /shared/q          # on any machine, any number
    repro queue status --queue /shared/q    # add --json for machines
    repro store merge /shared/q/results/* --into .repro-store

Watch the fleet while it runs (workers heartbeat into the queue's durable
event journal), or replay the journal afterwards::

    repro top --queue /shared/q             # live view; --once for scripts
    repro tail --queue /shared/q            # the event stream; -f to follow

Aggregate the traces a ``--trace``'d sweep persisted, or attribute the
wall-time difference between two stored runs to named spans::

    repro trace top --store .repro-store
    repro trace diff KEY1 KEY2 --store .repro-store

Serve the store, the experiment registry and the queue fabric over HTTP
(GET /experiments/<name> renders with an ETag so warm clients get 304s;
POST /sweeps dispatches onto the queue for workers to drain)::

    repro serve --store .repro-store --queue /shared/q --port 8642

Run Procedure ESST on a random graph::

    repro esst --family erdos_renyi --size 7

Run Algorithm SGL (and hence the four team problems) for 3 agents::

    repro teams --family ring --size 6 --team-size 3

Run a tick-asynchronous scenario (leader election, gossip, gathering) under
an interleaving model with crash/message faults, or sweep one over a grid
of fault configurations::

    repro tick --problem tick_leader --size 8 --interleaving random
    repro tick --problem tick_gathering --fault-rate 0.25 --crash-window 20
    repro sweep --problem tick_leader --sizes 4 6 --seeds 5 \
        --problem-params '{"interleaving": "random", "fault_rate": 0.25}'

Regenerate experiment tables (spec-driven: every table is a registered
:class:`~repro.analysis.experiment_spec.ExperimentSpec`; with ``--store``
a warm invocation re-renders without executing a single scenario)::

    repro experiment --list
    repro experiment e3 f1
    repro experiment E4 --store .repro-store --format csv
    repro experiment E1 E4 --store .repro-store --format json
    repro experiment --spec my_experiment.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .analysis.experiment_spec import (
    EXPERIMENTS,
    ExperimentSpec,
    experiment_spec,
    run_experiment,
)
from .analysis.render import FORMATS
from .analysis.tables import format_table
from .exceptions import ReproError
from .obs.analytics import (
    format_trace_diff,
    format_trace_top,
    load_traces,
    trace_diff,
    trace_of,
    trace_top,
)
from .obs.events import fleet_summary, format_event, format_fleet
from .obs.metrics import MetricsRegistry, enable_metrics, set_registry
from .obs.profile import format_profile
from .runtime import (
    GRAPH_FAMILIES,
    INTERLEAVERS,
    PROBLEMS,
    SCHEDULERS,
    RunRecord,
    ScenarioSpec,
    SweepSpec,
)
from .distrib import DEFAULT_LEASE_TTL, Dispatcher, Worker, WorkQueue
from .runtime.executors import make_executor, run_sweep
from .runtime.runner import run
from .serve import DEFAULT_PORT as SERVE_DEFAULT_PORT
from .serve import ResultService, make_server
from .store import DEFAULT_STORE_DIR, FileStore, merge_stores
from .store.merge import ON_CONFLICT_CHOICES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'How to Meet Asynchronously at Polynomial Cost' "
            "(Dieudonné, Pelc, Villain, PODC 2013)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--family",
            default="ring",
            choices=sorted(GRAPH_FAMILIES),
            help="graph family (default: ring)",
        )
        sub.add_argument("--size", type=int, default=6, help="graph size (default: 6)")
        sub.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
        sub.add_argument(
            "--max-traversals",
            type=int,
            default=2_000_000,
            help="total edge-traversal budget (default: 2,000,000)",
        )
        sub.add_argument(
            "--dump-spec",
            metavar="FILE",
            default=None,
            help="write the scenario spec as JSON to FILE instead of running it",
        )

    rendezvous = subparsers.add_parser(
        "rendezvous", help="run Algorithm RV-asynch-poly for two agents"
    )
    add_common(rendezvous)
    rendezvous.add_argument(
        "--labels", type=int, nargs=2, default=(6, 11), help="the two agent labels"
    )
    rendezvous.add_argument(
        "--scheduler",
        default="round_robin",
        choices=sorted(SCHEDULERS),
        help="adversary strategy (default: round_robin)",
    )
    rendezvous.add_argument(
        "--baseline",
        action="store_true",
        help="run the naive exponential baseline instead of RV-asynch-poly",
    )

    esst = subparsers.add_parser(
        "esst", help="run Procedure ESST (exploration with a semi-stationary token)"
    )
    add_common(esst)
    esst.add_argument(
        "--token-node",
        type=int,
        default=None,
        help="node holding the token (default: the highest-numbered node)",
    )

    teams = subparsers.add_parser(
        "teams", help="run Algorithm SGL and the four team problems"
    )
    add_common(teams)
    teams.add_argument("--team-size", type=int, default=3, help="number of agents (default: 3)")
    teams.add_argument(
        "--scheduler",
        default="round_robin",
        choices=sorted(SCHEDULERS),
        help="adversary strategy (default: round_robin)",
    )

    tick = subparsers.add_parser(
        "tick",
        help="run one tick-asynchronous scenario (leader election, gossip, gathering)",
    )
    tick.add_argument(
        "--problem",
        default="tick_leader",
        choices=sorted(name for name in PROBLEMS if name.startswith("tick_")),
        help="tick problem kind (default: tick_leader)",
    )
    tick.add_argument(
        "--family",
        default="ring",
        choices=sorted(GRAPH_FAMILIES),
        help="graph family (default: ring)",
    )
    tick.add_argument("--size", type=int, default=6, help="graph size (default: 6)")
    tick.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    tick.add_argument(
        "--interleaving",
        default="synchronous",
        choices=sorted(INTERLEAVERS),
        help="tick interleaving model (default: synchronous)",
    )
    tick.add_argument(
        "--patience",
        type=int,
        default=None,
        help="starvation window for --interleaving lag (ticks a victim is held back)",
    )
    tick.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-agent crash probability (default: 0.0)",
    )
    tick.add_argument(
        "--crash-window",
        type=int,
        default=None,
        help="crash ticks are drawn from [1, WINDOW] (default: --max-ticks)",
    )
    tick.add_argument(
        "--drop-rate",
        type=float,
        default=0.0,
        help="per-message drop probability (default: 0.0)",
    )
    tick.add_argument(
        "--max-ticks",
        type=int,
        default=1000,
        help="tick budget before the run stops (default: 1000)",
    )
    tick.add_argument(
        "--team-size",
        type=int,
        default=None,
        help="number of agents for tick_gathering (default: 3)",
    )
    tick.add_argument(
        "--no-ticks",
        action="store_true",
        help="skip the per-tick DataCollector payload (extra['ticks'])",
    )
    tick.add_argument(
        "--json",
        action="store_true",
        help="print the full RunRecord as JSON instead of a summary",
    )
    tick.add_argument(
        "--dump-spec",
        metavar="FILE",
        default=None,
        help="write the scenario spec as JSON to FILE instead of running it",
    )

    run_cmd = subparsers.add_parser(
        "run", help="run one scenario described by a JSON ScenarioSpec file"
    )
    run_cmd.add_argument(
        "--spec", required=True, metavar="FILE", help="path to the ScenarioSpec JSON"
    )
    run_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the full RunRecord as JSON instead of a summary",
    )
    run_cmd.add_argument(
        "--trace",
        action="store_true",
        help="record a RunTrace and attach it to the record's extra bag",
    )
    run_cmd.add_argument(
        "--profile",
        action="store_true",
        help="trace the run and print a wall-time profile table (implies --trace)",
    )

    def add_grid(sub: argparse.ArgumentParser) -> None:
        """The sweep-grid flags (shared by ``sweep`` and ``queue dispatch``)."""
        sub.add_argument(
            "--spec", default=None, metavar="FILE", help="path to a SweepSpec JSON (overrides the grid flags)"
        )
        sub.add_argument(
            "--problem",
            default="rendezvous",
            choices=sorted(PROBLEMS),
            help="problem kind run at every grid cell (default: rendezvous)",
        )
        sub.add_argument(
            "--family",
            nargs="+",
            default=["ring"],
            choices=sorted(GRAPH_FAMILIES),
            help="graph families (default: ring)",
        )
        sub.add_argument(
            "--sizes", type=int, nargs="+", default=[6], help="graph sizes (default: 6)"
        )
        sub.add_argument(
            "--schedulers",
            nargs="+",
            default=["round_robin"],
            choices=sorted(SCHEDULERS),
            help="adversary strategies (default: round_robin)",
        )
        sub.add_argument(
            "--seeds",
            type=int,
            default=1,
            help="number of seeds: the grid uses seeds 0 .. N-1 (default: 1)",
        )
        sub.add_argument(
            "--labels", type=int, nargs="+", default=None, help="agent labels (default: per-problem)"
        )
        sub.add_argument(
            "--team-size", type=int, default=None, help="team size for --problem teams"
        )
        sub.add_argument(
            "--max-traversals",
            type=int,
            default=2_000_000,
            help="per-cell edge-traversal budget (default: 2,000,000)",
        )
        sub.add_argument(
            "--problem-params",
            nargs="+",
            default=None,
            metavar="JSON",
            help="problem-parameter sets as JSON objects, one grid dimension "
            "entry each, e.g. "
            "'{\"interleaving\": \"random\", \"fault_rate\": 0.25}' "
            "(default: a single empty set)",
        )

    sweep = subparsers.add_parser(
        "sweep", help="run a grid of scenarios (sizes x schedulers x seeds x ...)"
    )
    add_grid(sweep)
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial; default: 1)",
    )
    sweep.add_argument(
        "--executor",
        choices=("serial", "pool", "queue"),
        default=None,
        help="execution backend (default: serial for --jobs 1, pool otherwise; "
        "queue = distributed work-queue with --jobs local worker processes)",
    )
    sweep.add_argument(
        "--queue",
        metavar="DIR",
        default=None,
        help="queue directory for --executor queue (default: a temporary one)",
    )
    sweep.add_argument(
        "--unit-size",
        type=int,
        default=4,
        help="cells per leased work unit for --executor queue (default: 4)",
    )
    sweep.add_argument(
        "--json", metavar="FILE", default=None, help="also write the SweepResult JSON to FILE"
    )
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    sweep.add_argument(
        "--trace",
        action="store_true",
        help="attach a RunTrace to every executed cell (serial/pool executors only)",
    )
    sweep.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persist results in (and serve cached cells from) the result store at DIR",
    )
    sweep.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve cells already in the store without executing them (default: on)",
    )

    worker = subparsers.add_parser(
        "worker", help="drain a distributed work queue (one worker process)"
    )
    worker.add_argument(
        "--queue", required=True, metavar="DIR", help="the work-queue directory"
    )
    worker.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="worker shards root: this worker writes its own shard store at "
        "DIR/<worker-id> (default: QUEUE/results)",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="this worker's identity (default: <host>-<pid>); must name at "
        "most one live process, and a restart under the same id reclaims "
        "its leases immediately",
    )
    worker.add_argument(
        "--lease-ttl",
        type=float,
        default=300.0,
        help="lease seconds per claimed unit; an expired lease is stolen and "
        "its partial shard salvaged (default: 300)",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds between queue scans while other workers hold the "
        "remaining units (default: 0.5)",
    )
    worker.add_argument(
        "--max-units", type=int, default=None, help="stop after N units (default: drain)"
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-unit progress lines"
    )
    worker.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds between heartbeats (journal event + mid-unit lease "
        "renewal; default: lease-ttl/3 capped at 15)",
    )
    worker.add_argument(
        "--no-journal",
        action="store_true",
        help="do not emit fleet events into QUEUE/journal (heartbeat-driven "
        "lease renewal still happens)",
    )

    queue_cmd = subparsers.add_parser(
        "queue", help="dispatch and inspect a distributed work queue"
    )
    queue_sub = queue_cmd.add_subparsers(dest="queue_command", required=True)

    dispatch = queue_sub.add_parser(
        "dispatch", help="partition a sweep into leaseable work units"
    )
    add_grid(dispatch)
    dispatch.add_argument(
        "--queue", required=True, metavar="DIR", help="the work-queue directory (created if missing)"
    )
    dispatch.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="result store: cells it already holds are not dispatched",
    )
    dispatch.add_argument(
        "--unit-size", type=int, default=4, help="cells per work unit (default: 4)"
    )

    queue_status = queue_sub.add_parser("status", help="summarise a queue's progress")
    queue_status.add_argument(
        "--queue", required=True, metavar="DIR", help="the work-queue directory"
    )
    queue_status.add_argument(
        "--json",
        action="store_true",
        help="emit the status counters as one JSON object (machine-readable)",
    )
    queue_status.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        help="staleness threshold: a worker whose heartbeat is older than "
        f"this is flagged stale (default: {DEFAULT_LEASE_TTL:g})",
    )

    top = subparsers.add_parser(
        "top", help="live fleet view of a work queue (workers, leases, ETA)"
    )
    top.add_argument(
        "--queue", required=True, metavar="DIR", help="the work-queue directory"
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render one snapshot and exit (for scripts and CI)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    top.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        help="staleness threshold for worker heartbeats "
        f"(default: {DEFAULT_LEASE_TTL:g})",
    )

    tail = subparsers.add_parser(
        "tail", help="print (and follow) a work queue's event journal"
    )
    tail.add_argument(
        "--queue", required=True, metavar="DIR", help="the work-queue directory"
    )
    tail.add_argument(
        "-f",
        "--follow",
        action="store_true",
        help="keep streaming new events until interrupted",
    )
    tail.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="print only the last N matching events (default: all)",
    )
    tail.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="poll interval while following (default: 0.5)",
    )
    tail.add_argument("--type", default=None, help="only events of this type")
    tail.add_argument("--worker", default=None, help="only events of this worker")
    tail.add_argument("--unit", default=None, help="only events of this unit id")

    trace_cmd = subparsers.add_parser(
        "trace", help="cross-run trace analytics over a result store"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)

    trace_diff_cmd = trace_sub.add_parser(
        "diff",
        help="attribute the wall-time delta between two traced runs to spans",
    )
    trace_diff_cmd.add_argument("key_a", metavar="KEY1", help="spec key (or unique prefix)")
    trace_diff_cmd.add_argument("key_b", metavar="KEY2", help="spec key (or unique prefix)")
    trace_diff_cmd.add_argument(
        "--store",
        metavar="DIR",
        default=DEFAULT_STORE_DIR,
        help=f"result store holding the traced records (default: {DEFAULT_STORE_DIR})",
    )
    trace_diff_cmd.add_argument(
        "--limit", type=int, default=None, help="show only the top N components"
    )

    trace_top_cmd = trace_sub.add_parser(
        "top", help="which spans dominate wall time across a store's traced runs"
    )
    trace_top_cmd.add_argument(
        "--store",
        metavar="DIR",
        default=DEFAULT_STORE_DIR,
        help=f"result store to aggregate (default: {DEFAULT_STORE_DIR})",
    )
    trace_top_cmd.add_argument(
        "--limit", type=int, default=15, help="rows to show (default: 15)"
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve the result store, experiments and work queue over HTTP",
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        default=DEFAULT_STORE_DIR,
        help=f"result store to serve (default: {DEFAULT_STORE_DIR}; created if missing)",
    )
    serve.add_argument(
        "--queue",
        metavar="DIR",
        default=None,
        help="work-queue directory enabling POST /sweeps (default: no queue — "
        "the sweep endpoints answer 503)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=SERVE_DEFAULT_PORT,
        help=f"TCP port; 0 picks a free one (default: {SERVE_DEFAULT_PORT})",
    )
    serve.add_argument(
        "--unit-size",
        type=int,
        default=4,
        help="cells per dispatched work unit for POST /sweeps (default: 4)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each request to stderr"
    )

    experiment = subparsers.add_parser(
        "experiment",
        help="regenerate experiment tables (EXPERIMENTS.md) from registered specs",
    )
    experiment.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="registered experiment names (case-insensitive: E1-E6, F1, bounds)",
    )
    experiment.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="path to an ExperimentSpec JSON to run instead of a registered name",
    )
    experiment.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list the registered experiments and exit",
    )
    experiment.add_argument(
        "--format",
        choices=list(FORMATS),
        default="markdown",
        help="table output format (default: markdown)",
    )
    experiment.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="result store: cells already stored are served without execution",
    )
    experiment.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve cells already in the store without executing them (default: on)",
    )
    experiment.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the underlying sweep (default: 1)",
    )
    experiment.add_argument(
        "--executor",
        choices=("serial", "pool", "queue"),
        default=None,
        help="execution backend for the underlying sweep (default: serial "
        "for --jobs 1, pool otherwise)",
    )

    metrics_cmd = subparsers.add_parser(
        "metrics", help="run a repro command instrumented and dump its metrics"
    )
    metrics_sub = metrics_cmd.add_subparsers(dest="metrics_command", required=True)
    metrics_dump = metrics_sub.add_parser(
        "dump",
        help="enable the process-global metrics registry, run the given repro "
        "command, then dump every collected metric",
    )
    metrics_dump.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        dest="metrics_format",
        help="registry rendering: json (default) or Prometheus text format",
    )
    metrics_dump.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        metavar="COMMAND",
        help="repro command line to run instrumented, e.g. "
        "'repro metrics dump sweep --sizes 4 8'; omit to dump an empty registry",
    )

    store_cmd = subparsers.add_parser(
        "store", help="inspect and maintain a content-addressed result store"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)

    def add_store_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store",
            metavar="DIR",
            default=DEFAULT_STORE_DIR,
            help=f"store directory (default: {DEFAULT_STORE_DIR})",
        )

    store_ls = store_sub.add_parser("ls", help="list the stored run records")
    add_store_dir(store_ls)
    store_ls.add_argument(
        "--problem",
        default=None,
        help="filter by problem kind (prefix match, e.g. 'tick' selects all tick_* kinds)",
    )
    store_ls.add_argument("--family", default=None, help="filter by graph family")
    store_ls.add_argument("--scheduler", default=None, help="filter by adversary name")
    store_ls.add_argument(
        "--n-min", type=int, default=None, help="smallest graph size to list (inclusive)"
    )
    store_ls.add_argument(
        "--n-max", type=int, default=None, help="largest graph size to list (inclusive)"
    )
    store_ls.add_argument(
        "--stat",
        action="store_true",
        help="print only the summary line (records, shards, writers, bytes)",
    )
    store_ls.add_argument(
        "--keys",
        action="store_true",
        help="print only the matching full spec keys, sorted, one per line",
    )

    store_show = store_sub.add_parser("show", help="print one stored record as JSON")
    add_store_dir(store_show)
    store_show.add_argument("key", help="spec key (any unambiguous prefix)")

    store_gc = store_sub.add_parser(
        "gc", help="compact the store: drop corrupt/duplicate lines, rewrite the index"
    )
    add_store_dir(store_gc)
    store_gc.add_argument(
        "--max-records",
        type=int,
        default=None,
        help="evict least-recently-accessed records beyond this count",
    )
    store_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict least-recently-accessed records until the shards fit",
    )

    store_merge = store_sub.add_parser(
        "merge",
        help="fold shipped worker stores into one (dedup by spec key, loud on divergence)",
    )
    store_merge.add_argument(
        "sources", nargs="+", metavar="SRC", help="source store directories"
    )
    store_merge.add_argument(
        "--into", required=True, metavar="DST", help="destination store (created if missing)"
    )
    store_merge.add_argument(
        "--on-conflict",
        choices=list(ON_CONFLICT_CHOICES),
        default="error",
        help="divergent-payload policy: error (default), ours (keep DST's), "
        "theirs (take SRC's)",
    )
    store_merge.add_argument(
        "--salvage",
        action="store_true",
        help="tolerate corrupt source shard lines (skip them) instead of aborting",
    )
    return parser


# ----------------------------------------------------------------------
# record printers (one per problem kind)
# ----------------------------------------------------------------------
def _print_graph_line(record: RunRecord) -> None:
    print(
        f"graph: {record.graph_name} "
        f"({record.graph_size} nodes, {record.graph_edges} edges)"
    )


def _print_rendezvous(record: RunRecord) -> None:
    algorithm = (
        "naive exponential baseline"
        if record.problem == "baseline"
        else "RV-asynch-poly"
    )
    _print_graph_line(record)
    print(f"algorithm: {algorithm}; adversary: {record.scheduler}")
    print(f"result: {record.summary()}")


def _print_esst(record: RunRecord) -> None:
    extra = record.extra_dict
    _print_graph_line(record)
    if extra["token_node"] is not None:
        token = f"at node {extra['token_node']}"
    else:
        token = (
            f"inside edge {tuple(extra['token_edge'])} "
            f"at fraction {extra['token_fraction']}"
        )
    print(f"token {token}, agent starts at node {extra['start']}")
    print(
        f"ESST finished in phase {extra['final_phase']} "
        f"(bound 9n+3 = {extra['phase_bound']}) after {record.cost} edge traversals"
    )
    print(f"all edges traversed: {record.ok}")


def _print_teams(record: RunRecord) -> None:
    extra = record.extra_dict
    labels = list(extra["team_labels"])
    print(f"graph: {record.graph_name}; team labels: {labels}")
    print(f"all agents output: {extra['all_output']}; outputs correct: {record.ok}")
    print(f"total cost (edge traversals until every agent output): {record.cost}")
    if record.ok:
        print(f"team size: {len(labels)}; leader: {extra['leader']}")
        renaming = {label: rank + 1 for rank, label in enumerate(labels)}
        print(f"perfect renaming: {renaming}")


def _print_tick(record: RunRecord) -> None:
    extra = record.extra_dict
    _print_graph_line(record)
    print(
        f"interleaving: {extra['interleaving']}; "
        f"fault_rate={extra['fault_rate']} drop_rate={extra['drop_rate']}"
    )
    print(
        f"stopped: {record.reason} after {record.cost} ticks "
        f"({record.decisions} activations)"
    )
    crashed = list(extra.get("crashed", ()))
    if crashed:
        print(f"crashed agents: {crashed}")
    print(
        f"messages: {extra['messages_sent']} sent, "
        f"{extra['messages_dropped']} dropped; moves: {extra['moves']}"
    )
    if record.problem == "tick_leader":
        leader = extra["leader"] if extra["leader"] is not None else "(none)"
        print(
            f"consensus: {extra['consensus']} "
            f"(leaders: {extra['leaders']}, agreed: {extra['agreed']}, "
            f"leader label: {leader})"
        )
    elif record.problem == "tick_gossip":
        print(
            f"covered: {extra['covered']} "
            f"({extra['informed']}/{extra['alive']} alive agents informed)"
        )
    elif record.problem == "tick_gathering":
        node = extra["meeting_node"] if extra["meeting_node"] is not None else "(none)"
        print(
            f"gathered: {extra['gathered']} "
            f"({extra['alive']}/{extra['team_size']} agents alive, at node {node})"
        )
    ticks = extra.get("ticks")
    if ticks is not None:
        dropped = ticks.get("ticks_dropped", 0)
        suffix = f" (+{dropped} past the cap)" if dropped else ""
        print(f"tick snapshots: {len(ticks['ticks'])} recorded{suffix}")


_PRINTERS = {
    "rendezvous": _print_rendezvous,
    "baseline": _print_rendezvous,
    "esst": _print_esst,
    "teams": _print_teams,
    "tick_leader": _print_tick,
    "tick_gossip": _print_tick,
    "tick_gathering": _print_tick,
}


def _print_record(record: RunRecord) -> None:
    _PRINTERS.get(record.problem, _print_rendezvous)(record)


def _execute_or_dump(spec: ScenarioSpec, dump_spec: Optional[str]) -> int:
    """Run ``spec`` (or write it to disk when ``--dump-spec`` was given)."""
    if dump_spec is not None:
        Path(dump_spec).write_text(spec.to_json() + "\n", encoding="utf-8")
        print(f"wrote scenario spec to {dump_spec}")
        return 0
    record = run(spec)
    _print_record(record)
    return 0 if record.ok else 1


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _run_rendezvous(args: argparse.Namespace) -> int:
    spec = ScenarioSpec(
        problem="baseline" if args.baseline else "rendezvous",
        family=args.family,
        size=args.size,
        seed=args.seed,
        labels=tuple(args.labels),
        scheduler=args.scheduler,
        max_traversals=args.max_traversals,
    )
    return _execute_or_dump(spec, args.dump_spec)


def _run_esst(args: argparse.Namespace) -> int:
    spec = ScenarioSpec(
        problem="esst",
        family=args.family,
        size=args.size,
        seed=args.seed,
        token_node=args.token_node,
        max_traversals=args.max_traversals,
    )
    return _execute_or_dump(spec, args.dump_spec)


def _run_teams(args: argparse.Namespace) -> int:
    spec = ScenarioSpec(
        problem="teams",
        family=args.family,
        size=args.size,
        seed=args.seed,
        team_size=args.team_size,
        scheduler=args.scheduler,
        max_traversals=args.max_traversals,
    )
    return _execute_or_dump(spec, args.dump_spec)


def _run_tick(args: argparse.Namespace) -> int:
    problem_params = {}
    if args.interleaving != "synchronous":
        problem_params["interleaving"] = args.interleaving
    if args.patience is not None:
        if args.interleaving != "lag":
            raise ReproError("--patience only applies to --interleaving lag")
        problem_params["interleaving_params"] = {"patience": args.patience}
    if args.fault_rate:
        problem_params["fault_rate"] = args.fault_rate
    if args.crash_window is not None:
        problem_params["crash_window"] = args.crash_window
    if args.drop_rate:
        problem_params["drop_rate"] = args.drop_rate
    if args.max_ticks != 1000:
        problem_params["max_ticks"] = args.max_ticks
    if args.no_ticks:
        problem_params["record_ticks"] = False
    spec = ScenarioSpec(
        problem=args.problem,
        family=args.family,
        size=args.size,
        seed=args.seed,
        team_size=args.team_size,
        problem_params=problem_params,
    )
    if args.dump_spec is not None:
        Path(args.dump_spec).write_text(spec.to_json() + "\n", encoding="utf-8")
        print(f"wrote scenario spec to {args.dump_spec}")
        return 0
    record = run(spec)
    if args.json:
        print(record.to_json())
    else:
        _print_record(record)
    return 0 if record.ok else 1


def _run_spec_file(args: argparse.Namespace) -> int:
    spec = ScenarioSpec.from_json(Path(args.spec).read_text(encoding="utf-8"))
    record = run(spec, trace=args.trace or args.profile)
    if args.json:
        print(record.to_json())
    else:
        _print_record(record)
        print(f"ok: {record.ok}")
    if args.profile:
        print()
        print(format_profile(record.extra_dict["trace"]))
    return 0 if record.ok else 1


def _problem_param_sets(tokens: Optional[Sequence[str]]):
    """Parse ``--problem-params`` JSON-object tokens into a grid dimension."""
    if tokens is None:
        return ((),)
    param_sets = []
    for token in tokens:
        params = json.loads(token)
        if not isinstance(params, dict):
            raise ReproError(
                f"--problem-params entries must be JSON objects, got {token!r}"
            )
        param_sets.append(params)
    return tuple(param_sets)


def _sweep_from_args(args: argparse.Namespace) -> SweepSpec:
    """Build the SweepSpec the shared grid flags describe (or load --spec)."""
    if args.spec is not None:
        return SweepSpec.from_json(Path(args.spec).read_text(encoding="utf-8"))
    return SweepSpec(
        problems=(args.problem,),
        families=tuple(args.family),
        sizes=tuple(args.sizes),
        seeds=tuple(range(args.seeds)),
        schedulers=tuple(args.schedulers),
        problem_param_sets=_problem_param_sets(args.problem_params),
        label_sets=(None if args.labels is None else tuple(args.labels),),
        team_sizes=(args.team_size,),
        max_traversals=args.max_traversals,
    )


def _run_sweep(args: argparse.Namespace) -> int:
    sweep = _sweep_from_args(args)
    total = len(sweep)

    def progress(done: int, _total: int, record: RunRecord, cached: bool) -> None:
        if not args.quiet:
            status = ("hit " if cached else "ok  ") if record.ok else "FAIL"
            print(
                f"[{done}/{total}] {status} {record.problem} {record.family} "
                f"n={record.graph_size} seed={record.seed} "
                f"scheduler={record.scheduler} cost={record.cost}"
            )

    store = None if args.store is None else FileStore(args.store)
    if args.executor == "queue":
        executor = make_executor(
            args.jobs, kind="queue", queue_dir=args.queue, unit_size=args.unit_size
        )
    else:
        executor = make_executor(args.jobs, kind=args.executor)
    try:
        result = run_sweep(
            sweep,
            executor=executor,
            progress=progress,
            store=store,
            resume=args.resume,
            trace=args.trace,
        )
    finally:
        if store is not None:
            store.close()
    print()
    print(result.table(title=f"sweep: {total} cells, jobs={args.jobs}"))
    print()
    print(
        f"ok: {sum(1 for record in result if record.ok)}/{len(result)}  "
        f"max cost: {result.max_cost()}  mean cost: {result.mean_cost():.1f}"
    )
    if store is not None:
        print(
            f"store {args.store}: cached {result.cache_hits}/{total}, "
            f"executed {result.executed}"
        )
    if args.json is not None:
        Path(args.json).write_text(result.to_json() + "\n", encoding="utf-8")
        print(f"wrote SweepResult JSON to {args.json}")
    return 0 if result.all_ok else 1


def _run_worker(args: argparse.Namespace) -> int:
    def unit_progress(uid: str, counts: dict) -> None:
        if not args.quiet:
            print(
                f"unit {uid}: {counts['executed']} executed, "
                f"{counts['salvaged']} salvaged, {counts['cached']} cached "
                f"of {counts['total']} cells",
                flush=True,
            )

    worker = Worker(
        args.queue,
        worker_id=args.worker_id,
        results_root=args.store,
        lease_ttl=args.lease_ttl,
        poll=args.poll,
        max_units=args.max_units,
        progress=unit_progress,
        heartbeat_interval=args.heartbeat,
        journal=not args.no_journal,
    )
    totals = worker.run()
    print(
        f"worker {worker.worker_id}: {totals['units']} units — "
        f"{totals['executed']} executed, {totals['salvaged']} salvaged, "
        f"{totals['cached']} cached (shard: {worker.store_dir})"
    )
    return 0


def _run_queue(args: argparse.Namespace) -> int:
    if args.queue_command == "dispatch":
        queue = WorkQueue(args.queue, create=True)
        store = None if args.store is None else FileStore(args.store, create=False)
        try:
            report = Dispatcher(queue, unit_size=args.unit_size).dispatch(
                _sweep_from_args(args), store=store
            )
        finally:
            if store is not None:
                store.close()
        print(
            f"dispatched {report['cells']} cells into {args.queue}: "
            f"{report['new_units']} new units, {report['existing_units']} already "
            f"queued, {report['skipped_cached']} cells already stored"
        )
        return 0
    if args.queue_command == "status":
        queue = WorkQueue(args.queue)
        status = queue.status()
        workers = _worker_observability(queue, args.lease_ttl)
        drained = status["units"] == status["done"] + status["cancelled"]
        if args.json:
            print(
                json.dumps(
                    {**status, "drained": drained, "heartbeats": workers},
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0 if drained else 1
        cancelled = (
            f", {status['cancelled']} cancelled" if status["cancelled"] else ""
        )
        print(
            f"queue {args.queue}: {status['done']}/{status['units']} units done"
            f"{cancelled}, {status['claimed']} claimed, {status['pending']} pending "
            f"({status['workers']} worker shards)"
        )
        print(
            f"cells: executed {status['executed']}/{status['cells']}, "
            f"salvaged {status['salvaged']}, cached {status['cached']}"
        )
        print(
            f"leases: {status['steals']} stolen, {status['expired']} expired"
        )
        for entry in workers:
            stale = "  STALE (heartbeat older than the lease TTL)" if entry["stale"] else ""
            last_event = (
                f", last event {entry['last_event_age']:.0f}s ago"
                if entry.get("last_event_age") is not None
                else ""
            )
            print(
                f"worker {entry['worker']}: heartbeat "
                f"{entry['heartbeat_age']:.0f}s ago{last_event}{stale}"
            )
        return 0 if drained else 1
    return 2  # pragma: no cover (argparse enforces the sub-command)


def _worker_observability(
    queue: WorkQueue, lease_ttl: float, now: Optional[float] = None
) -> List[Dict[str, Any]]:
    """Per-worker heartbeat age / last-event timestamp / staleness rows.

    The ``repro queue status`` (and ``--json``) observability section: one
    entry per worker that ever heartbeat into the queue's journal, flagged
    ``stale`` when the heartbeat is older than the lease TTL — the same
    threshold after which the worker's leases become stealable.
    """
    now = time.time() if now is None else now
    journal = queue.journal()
    beats = journal.latest_heartbeats()
    last_by_worker: Dict[str, float] = {}
    for event in journal.events():
        name = event.get("worker") or event.get("writer")
        if name:
            last_by_worker[name] = max(
                last_by_worker.get(name, 0.0), float(event.get("ts", 0.0))
            )
    rows: List[Dict[str, Any]] = []
    for name in sorted(beats):
        beat = beats[name]
        beat_ts = float(beat.get("ts", 0.0))
        age = max(0.0, now - beat_ts)
        last_ts = last_by_worker.get(name)
        rows.append(
            {
                "worker": name,
                "heartbeat_ts": beat_ts,
                "heartbeat_age": round(age, 3),
                "last_event_ts": last_ts,
                "last_event_age": (
                    round(max(0.0, now - last_ts), 3) if last_ts else None
                ),
                "unit": beat.get("unit"),
                "phase": beat.get("phase"),
                "stale": age > lease_ttl,
            }
        )
    return rows


def _run_top(args: argparse.Namespace) -> int:
    queue = WorkQueue(args.queue)

    def snapshot() -> str:
        journal = queue.journal()
        summary = fleet_summary(
            queue.status(),
            journal.latest_heartbeats(),
            events=journal.events(),
            lease_ttl=args.lease_ttl,
        )
        return format_fleet(summary)

    if args.once:
        print(snapshot())
        return 0
    try:
        while True:  # pragma: no cover - interactive loop (CI uses --once)
            print("\x1b[2J\x1b[H", end="")
            print(f"repro top — {args.queue}  ({time.strftime('%H:%M:%S')})\n")
            print(snapshot(), flush=True)
            time.sleep(max(args.interval, 0.1))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        return 0


def _run_tail(args: argparse.Namespace) -> int:
    queue = WorkQueue(args.queue)
    journal = queue.journal()
    filters = {"type": args.type, "worker": args.worker, "unit": args.unit}
    events = journal.events(**filters)
    for event in events if args.limit is None else events[-args.limit :]:
        print(format_event(event))
    if not args.follow:
        return 0
    seen = {(event.get("writer"), event.get("seq")) for event in events}
    try:
        while True:  # pragma: no cover - interactive loop
            time.sleep(max(args.interval, 0.05))
            for event in journal.events(**filters):
                stamp = (event.get("writer"), event.get("seq"))
                if stamp not in seen:
                    seen.add(stamp)
                    print(format_event(event), flush=True)
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        return 0


def _resolve_store_key(store: FileStore, key: str) -> str:
    """Resolve a full spec key or a unique prefix against ``store``."""
    if len(key) == 64 and store.get(key) is not None:
        return key
    hits = sorted(stored for stored in store.keys() if stored.startswith(key))
    if not hits:
        raise ReproError(f"no stored record matches key {key!r}")
    if len(hits) > 1:
        raise ReproError(f"key prefix {key!r} is ambiguous ({len(hits)} matches)")
    return hits[0]


def _run_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "diff":
        with FileStore(args.store, create=False) as store:
            traces = []
            for raw in (args.key_a, args.key_b):
                key = _resolve_store_key(store, raw)
                trace = trace_of(store.get(key))
                if trace is None:
                    raise ReproError(
                        f"record {key[:12]}… holds no trace; re-run the cell "
                        "with --trace (or a traced sweep) first"
                    )
                traces.append(trace)
        print(format_trace_diff(trace_diff(*traces), limit=args.limit))
        return 0
    if args.trace_command == "top":
        with FileStore(args.store, create=False) as store:
            traced = load_traces(store)
        if not traced:
            print(f"no traced records in {args.store} (sweep with --trace first)")
            return 1
        print(format_trace_top(trace_top(traced, limit=args.limit)))
        return 0
    return 2  # pragma: no cover (argparse enforces the sub-command)


def _run_serve(args: argparse.Namespace) -> int:
    store = FileStore(args.store, create=True)
    try:
        service = ResultService(store, queue=args.queue, unit_size=args.unit_size)
        server = make_server(
            service, args.host, args.port, quiet=not args.verbose
        )
        host, port = server.server_address[:2]
        mode = f"queue: {args.queue}" if args.queue else "read-only (no queue)"
        print(
            f"repro serve: http://{host}:{port}/ — store: {args.store}, {mode}",
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            server.server_close()
    finally:
        store.close()
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    if args.list_experiments:
        rows = []
        for name in EXPERIMENTS.names():
            spec = experiment_spec(name)
            rows.append([name, len(spec.cell_specs()), spec.title])
        print(format_table(["name", "cells", "title"], rows, title="registered experiments"))
        return 0
    specs = [experiment_spec(name) for name in args.names]
    if args.spec is not None:
        specs.append(ExperimentSpec.from_json(Path(args.spec).read_text(encoding="utf-8")))
    if not specs:
        print("error: name an experiment, or pass --spec / --list", file=sys.stderr)
        return 2
    store = None if args.store is None else FileStore(args.store)
    executor = make_executor(args.jobs, kind=args.executor)
    try:
        # Each table prints as soon as it is ready, so a failure in a later
        # experiment never discards the finished work of earlier ones.
        for index, spec in enumerate(specs):
            result = run_experiment(
                spec, store=store, resume=args.resume, executor=executor
            )
            if index:
                print()
            print(result.render(args.format))
            if store is not None:
                print(
                    f"experiment {spec.name}: {len(result.records)} cells, "
                    f"cached {result.cache_hits}, executed {result.executed}",
                    file=sys.stderr,
                )
    finally:
        if store is not None:
            store.close()
    return 0


def _run_metrics(args: argparse.Namespace) -> int:
    """``repro metrics dump``: instrument a nested repro invocation.

    The process-global registry is enabled *before* the nested command runs,
    so every instrumentation site (engine, runner, store, queue, worker)
    records into it; the registry is then rendered after the command's own
    output.  With no nested command this dumps an (empty) registry — useful
    to see the exposition format.
    """
    rest = list(args.rest)
    if rest and rest[0] == "--":  # argparse.REMAINDER keeps the separator
        rest = rest[1:]
    # A fresh registry per dump (not the idempotent enable_metrics): the dump
    # reports what *this* command produced, even inside a long-lived process.
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        code = main(rest) if rest else 0
    finally:
        set_registry(previous)
    rendered = (
        registry.render_prom()
        if args.metrics_format == "prom"
        else registry.render_json()
    )
    if rest:
        print()
    print(rendered, end="" if rendered.endswith("\n") else "\n")
    return code


# ----------------------------------------------------------------------
# store maintenance
# ----------------------------------------------------------------------
def _run_store(args: argparse.Namespace) -> int:
    if args.store_command == "merge":
        with FileStore(args.into, create=True) as dest:
            report = merge_stores(
                args.sources, dest, on_conflict=args.on_conflict, salvage=args.salvage
            )
        conflicts = report["conflicts"]
        print(
            f"merged {report['merged']} of {report['scanned']} records from "
            f"{report['sources']} store(s) into {args.into}: "
            f"{report['duplicates']} duplicates, {len(conflicts)} conflicts"
            + (f" (resolved: {args.on_conflict})" if conflicts else "")
        )
        return 0
    # gc opens tolerantly: its whole point is repairing a damaged store.
    salvage = args.store_command == "gc"
    with FileStore(args.store, create=False, salvage=salvage) as store:
        if args.store_command == "ls":
            if args.stat:
                stats = store.stats()
                print(
                    f"store {args.store}: {stats['records']} records, "
                    f"{stats['shards']} shards, {stats['writers']} writer "
                    f"namespace(s), {stats['bytes']:,} bytes, "
                    f"{stats['last_read_tracked']} access stamps"
                )
                return 0
            matches = {}
            if args.problem is not None:
                matches["problem"] = args.problem
            if args.family is not None:
                matches["family"] = args.family
            if args.scheduler is not None:
                matches["scheduler"] = args.scheduler
            if args.n_min is not None or args.n_max is not None:
                matches["n_range"] = (
                    args.n_min if args.n_min is not None else 0,
                    args.n_max if args.n_max is not None else sys.maxsize,
                )
            result = store.query(**matches)
            if args.keys:
                for key in sorted(record.spec.key() for record in result):
                    print(key)
                return 0
            rows = [
                [
                    record.spec.key()[:12],
                    record.problem,
                    record.family,
                    record.graph_size,
                    record.seed,
                    record.scheduler,
                    "yes" if record.ok else "no",
                    record.cost,
                ]
                for record in result
            ]
            stats = store.stats()
            print(
                format_table(
                    ["key", "problem", "family", "n", "seed", "scheduler", "ok", "cost"],
                    rows,
                    title=f"result store {args.store}",
                )
            )
            print()
            print(
                f"{stats['records']} records in {stats['shards']} shards "
                f"({stats['bytes']:,} bytes)"
            )
            return 0
        if args.store_command == "show":
            hits = [key for key in store.keys() if key.startswith(args.key)]
            if len(hits) > 1:
                print(
                    f"error: key prefix {args.key!r} is ambiguous "
                    f"({len(hits)} matches):",
                    file=sys.stderr,
                )
                for key in sorted(hits):
                    print(f"  {key}", file=sys.stderr)
                return 1
            # An indexed key may still miss if its shard record was lost
            # (the index is a recoverable cache; shards are the truth).
            record = store.get(hits[0]) if hits else None
            if record is None:
                print(f"error: no stored record matches key prefix {args.key!r}", file=sys.stderr)
                return 1
            print(record.to_json())
            return 0
        if args.store_command == "gc":
            report = store.gc(max_records=args.max_records, max_bytes=args.max_bytes)
            print(
                f"gc {args.store}: kept {report['kept']} records, "
                f"dropped {report['dropped_corrupt']} corrupt and "
                f"{report['dropped_duplicate']} duplicate lines, "
                f"evicted {report['evicted']} LRU records, "
                f"reclaimed {report['reclaimed_bytes']:,} bytes"
            )
            return 0
    return 2  # pragma: no cover (argparse enforces the sub-command)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro`` command.

    ``REPRO_METRICS=1`` in the environment enables the process-global
    metrics registry for any subcommand (workers spawned by the queue
    executor inherit it), exactly as ``repro metrics dump`` does explicitly.
    """
    if os.environ.get("REPRO_METRICS", "").strip() not in ("", "0"):
        enable_metrics()
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "rendezvous": _run_rendezvous,
        "esst": _run_esst,
        "teams": _run_teams,
        "tick": _run_tick,
        "run": _run_spec_file,
        "sweep": _run_sweep,
        "worker": _run_worker,
        "queue": _run_queue,
        "top": _run_top,
        "tail": _run_tail,
        "trace": _run_trace,
        "serve": _run_serve,
        "experiment": _run_experiment,
        "metrics": _run_metrics,
        "store": _run_store,
    }
    handler = handlers.get(args.command)
    if handler is None:
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return handler(args)
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
