"""Command-line interface: run the algorithms and the experiment suite.

Examples
--------
Run a single rendezvous on an 8-node ring under the avoiding adversary::

    repro rendezvous --family ring --size 8 --labels 6 11 --scheduler avoider

Run Procedure ESST on a random graph::

    repro esst --family erdos_renyi --size 7

Run Algorithm SGL (and hence the four team problems) for 3 agents::

    repro teams --family ring --size 6 --team-size 3

Regenerate an experiment table::

    repro experiment e3
    repro experiment f1
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import experiments
from .analysis.tables import format_records
from .core.baseline import run_baseline_rendezvous
from .core.rendezvous import run_rendezvous
from .exploration.cost_model import SimulationCostModel
from .exploration.esst import run_esst
from .graphs.families import FAMILY_BUILDERS, named_family
from .sim.position import Position
from .teams.problems import TeamMember, run_sgl

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'How to Meet Asynchronously at Polynomial Cost' "
            "(Dieudonné, Pelc, Villain, PODC 2013)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--family",
            default="ring",
            choices=sorted(FAMILY_BUILDERS),
            help="graph family (default: ring)",
        )
        sub.add_argument("--size", type=int, default=6, help="graph size (default: 6)")
        sub.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
        sub.add_argument(
            "--max-traversals",
            type=int,
            default=2_000_000,
            help="total edge-traversal budget (default: 2,000,000)",
        )

    rendezvous = subparsers.add_parser(
        "rendezvous", help="run Algorithm RV-asynch-poly for two agents"
    )
    add_common(rendezvous)
    rendezvous.add_argument(
        "--labels", type=int, nargs=2, default=(6, 11), help="the two agent labels"
    )
    rendezvous.add_argument(
        "--scheduler",
        default="round_robin",
        choices=experiments.SCHEDULER_NAMES,
        help="adversary strategy (default: round_robin)",
    )
    rendezvous.add_argument(
        "--baseline",
        action="store_true",
        help="run the naive exponential baseline instead of RV-asynch-poly",
    )

    esst = subparsers.add_parser(
        "esst", help="run Procedure ESST (exploration with a semi-stationary token)"
    )
    add_common(esst)
    esst.add_argument(
        "--token-node",
        type=int,
        default=None,
        help="node holding the token (default: the highest-numbered node)",
    )

    teams = subparsers.add_parser(
        "teams", help="run Algorithm SGL and the four team problems"
    )
    add_common(teams)
    teams.add_argument("--team-size", type=int, default=3, help="number of agents (default: 3)")
    teams.add_argument(
        "--scheduler",
        default="round_robin",
        choices=experiments.SCHEDULER_NAMES,
        help="adversary strategy (default: round_robin)",
    )

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the experiment tables (EXPERIMENTS.md)"
    )
    experiment.add_argument(
        "name",
        choices=["f1", "e1", "e2", "e3", "e4", "e5", "e6"],
        help="experiment identifier",
    )
    return parser


def _run_rendezvous(args: argparse.Namespace) -> int:
    graph = named_family(args.family, args.size, rng_seed=args.seed)
    model = SimulationCostModel()
    scheduler = experiments.make_scheduler(args.scheduler, seed=args.seed)
    placements = [(args.labels[0], 0), (args.labels[1], graph.size // 2)]
    runner = run_baseline_rendezvous if args.baseline else run_rendezvous
    result = runner(
        graph,
        placements,
        scheduler=scheduler,
        model=model,
        max_traversals=args.max_traversals,
        on_cost_limit="return",
    )
    algorithm = "naive exponential baseline" if args.baseline else "RV-asynch-poly"
    print(f"graph: {graph.name} ({graph.size} nodes, {graph.num_edges} edges)")
    print(f"algorithm: {algorithm}; adversary: {args.scheduler}")
    print(f"result: {result.summary()}")
    return 0 if result.met else 1


def _run_esst(args: argparse.Namespace) -> int:
    graph = named_family(args.family, args.size, rng_seed=args.seed)
    model = SimulationCostModel()
    token_node = args.token_node if args.token_node is not None else max(graph.nodes())
    start = 0 if token_node != 0 else 1
    result = run_esst(graph, start, Position.at_node(token_node), model)
    print(f"graph: {graph.name} ({graph.size} nodes, {graph.num_edges} edges)")
    print(f"token at node {token_node}, agent starts at node {start}")
    print(
        f"ESST finished in phase {result.final_phase} "
        f"(bound 9n+3 = {9 * graph.size + 3}) after {result.traversals} edge traversals"
    )
    print(f"all edges traversed: {result.all_edges_traversed}")
    return 0 if result.all_edges_traversed else 1


def _run_teams(args: argparse.Namespace) -> int:
    graph = named_family(args.family, args.size, rng_seed=args.seed)
    model = SimulationCostModel()
    nodes = sorted(graph.nodes())
    k = args.team_size
    members = [
        TeamMember(label=3 + 2 * index, start_node=nodes[(index * graph.size) // k])
        for index in range(k)
    ]
    scheduler = experiments.make_scheduler(args.scheduler, seed=args.seed)
    outcome = run_sgl(
        graph,
        members,
        scheduler=scheduler,
        model=model,
        max_traversals=args.max_traversals,
        on_cost_limit="return",
    )
    labels = sorted(member.label for member in members)
    print(f"graph: {graph.name}; team labels: {labels}")
    print(f"all agents output: {outcome.all_output}; outputs correct: {outcome.correct}")
    print(f"total cost (edge traversals until every agent output): {outcome.cost}")
    if outcome.correct:
        print(f"team size: {len(labels)}; leader: {min(labels)}")
        renaming = {label: rank + 1 for rank, label in enumerate(labels)}
        print(f"perfect renaming: {renaming}")
    return 0 if outcome.correct else 1


def _run_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name == "f1":
        print(experiments.figure_structures_table(experiments.figure_structures()))
    elif name == "e1":
        print(experiments.rendezvous_vs_size_table(experiments.rendezvous_vs_size()))
    elif name == "e2":
        print(experiments.rendezvous_vs_label_table(experiments.rendezvous_vs_label()))
    elif name == "e3":
        print(experiments.bound_scaling_table(experiments.bound_scaling()))
    elif name == "e4":
        print(experiments.esst_scaling_table(experiments.esst_scaling()))
    elif name == "e5":
        print(experiments.adversary_ablation_table(experiments.adversary_ablation()))
    elif name == "e6":
        print(experiments.team_scaling_table(experiments.team_scaling()))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "rendezvous":
        return _run_rendezvous(args)
    if args.command == "esst":
        return _run_esst(args)
    if args.command == "teams":
        return _run_teams(args)
    if args.command == "experiment":
        return _run_experiment(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
