"""Universal exploration sequences (UXS) and the walk ``R(k, v)``.

The paper relies on Reingold's log-space construction [34]: for every ``k``
there is a fixed sequence of integers of polynomial length ``P(k)`` such that
the walk it induces — from any start node of any graph of size at most ``k``,
exit by port ``(p + x_i) mod d`` after entering a degree-``d`` node by port
``p`` — traverses **all edges** of the graph.  The trajectory so obtained from
start node ``v`` is written ``R(k, v)`` and is called *integral* when it
indeed covers every edge.

Reingold's explicit construction is galactic, so this module substitutes a
deterministic pseudorandom sequence (documented in DESIGN.md §2): a fixed
splitmix64 stream keyed by ``(seed, k)``.  Sequences of length ``Θ(k³)`` are
universal with overwhelming probability, and :func:`is_integral` /
:func:`first_covering_prefix` let tests and experiments verify coverage on the
graphs actually used.

The module also provides :func:`next_port` (the single-step rule shared by the
on-line agent programs) and :func:`walk_trajectory`, a fast simulator-side
walk used by the exploration experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..exceptions import ExplorationError
from ..graphs.port_graph import EdgeKey, PortLabeledGraph, edge_key

__all__ = [
    "next_port",
    "UXSProvider",
    "PseudoRandomUXS",
    "ExplicitUXS",
    "WalkResult",
    "walk_trajectory",
    "is_integral",
    "first_covering_prefix",
]


def next_port(entry_port: Optional[int], increment: int, degree: int) -> int:
    """Return the exit port prescribed by a UXS term.

    After entering a node of degree ``degree`` by port ``entry_port``, the
    agent exits by port ``(entry_port + increment) mod degree``.  At the very
    first node of a walk there is no entry port; the convention (also used by
    the paper's references) is to treat it as ``0``.
    """
    if degree <= 0:
        raise ExplorationError("cannot take a step from an isolated node")
    base = 0 if entry_port is None else entry_port
    return (base + increment) % degree


class UXSProvider:
    """Interface of a universal-exploration-sequence provider.

    A provider maps a parameter ``k`` to a fixed, graph-oblivious sequence of
    non-negative integers of length exactly ``length(k)``; the same sequence
    is returned every time, which is what makes trajectories such as
    ``R(k, v)`` well defined independently of the graph.
    """

    def length(self, k: int) -> int:
        """Return ``P(k)``: the number of terms (edge traversals) for ``k``."""
        raise NotImplementedError

    def terms(self, k: int) -> Sequence[int]:
        """Return the full sequence of increments for parameter ``k``."""
        raise NotImplementedError

    def iter_terms(self, k: int) -> Iterator[int]:
        """Iterate over the increments for parameter ``k`` (lazily if possible)."""
        return iter(self.terms(k))


def _splitmix64(state: int) -> Tuple[int, int]:
    """Advance a splitmix64 state; return ``(new_state, output)``."""
    mask = (1 << 64) - 1
    state = (state + 0x9E3779B97F4A7C15) & mask
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
    z = z ^ (z >> 31)
    return state, z


class PseudoRandomUXS(UXSProvider):
    """Deterministic pseudorandom exploration sequences (splitmix64 stream).

    Parameters
    ----------
    length_coefficient, length_exponent, length_offset:
        The sequence for parameter ``k`` has length
        ``length_coefficient * k**length_exponent + length_offset`` — this is
        the polynomial ``P`` of the paper, with tunable constants so the
        experiments stay tractable (see DESIGN.md §2, substitution 1).
    seed:
        Global seed.  Different seeds give different (but individually fixed)
        sequence families.

    The sequences are cached per ``k``, and additionally in a process-wide
    cache keyed by the full parameterisation: a sequence is a pure function of
    ``(seed, polynomial, k)``, and experiment sweeps build a fresh provider
    per run, so without the shared cache every run regenerates the same
    ``Θ(k³)`` streams.
    """

    #: Process-wide memo shared by all equal-parameter providers.
    _SHARED_CACHE: Dict[Tuple[int, int, int, int, int], Tuple[int, ...]] = {}

    def __init__(
        self,
        length_coefficient: int = 4,
        length_exponent: int = 2,
        length_offset: int = 12,
        seed: int = 2013,
    ) -> None:
        if length_coefficient < 1 or length_exponent < 1 or length_offset < 0:
            raise ExplorationError("UXS length polynomial must be positive and non-trivial")
        self._coefficient = length_coefficient
        self._exponent = length_exponent
        self._offset = length_offset
        self._seed = seed
        self._cache: Dict[int, Tuple[int, ...]] = {}

    @property
    def seed(self) -> int:
        """The global seed of this provider."""
        return self._seed

    def length(self, k: int) -> int:
        if k < 1:
            raise ExplorationError(f"UXS parameter must be >= 1, got {k}")
        return self._coefficient * (k ** self._exponent) + self._offset

    def terms(self, k: int) -> Tuple[int, ...]:
        cached = self._cache.get(k)
        if cached is None:
            shared_key = (self._seed, self._coefficient, self._exponent, self._offset, k)
            cached = self._SHARED_CACHE.get(shared_key)
            if cached is None:
                cached = self._SHARED_CACHE[shared_key] = tuple(self._generate(k))
            self._cache[k] = cached
        return cached

    def _generate(self, k: int) -> Iterator[int]:
        count = self.length(k)
        state = (self._seed * 0x9E3779B97F4A7C15 + k * 0xD1B54A32D192ED03) & ((1 << 64) - 1)
        for _ in range(count):
            state, output = _splitmix64(state)
            # A 30-bit increment is astronomically larger than any degree we
            # will ever see; the modulo in :func:`next_port` does the rest.
            yield output >> 34

    def describe(self) -> str:
        """Return a human-readable description of the length polynomial."""
        return (
            f"P(k) = {self._coefficient} * k^{self._exponent} + {self._offset} "
            f"(seed {self._seed})"
        )


class ExplicitUXS(UXSProvider):
    """A provider backed by explicitly supplied sequences (used in tests).

    ``sequences[k]`` must be the full list of increments for parameter ``k``.
    """

    def __init__(self, sequences: Dict[int, Sequence[int]]) -> None:
        self._sequences = {k: tuple(seq) for k, seq in sequences.items()}

    def length(self, k: int) -> int:
        try:
            return len(self._sequences[k])
        except KeyError:
            raise ExplorationError(f"no explicit UXS stored for parameter {k}") from None

    def terms(self, k: int) -> Tuple[int, ...]:
        try:
            return self._sequences[k]
        except KeyError:
            raise ExplorationError(f"no explicit UXS stored for parameter {k}") from None


@dataclass(frozen=True)
class WalkResult:
    """Outcome of simulating ``R(k, v)`` directly on a known graph.

    Attributes
    ----------
    nodes:
        The trajectory as a sequence of node ids, starting with the start
        node; its length is ``len(ports) + 1``.
    ports:
        The exit port used for each step, in order.
    entry_ports:
        The port by which the walk entered the node reached by each step
        (what an agent would need to backtrack).
    visited_nodes:
        Set of distinct nodes visited.
    traversed_edges:
        Set of distinct undirected edges traversed.
    """

    nodes: Tuple[int, ...]
    ports: Tuple[int, ...]
    entry_ports: Tuple[int, ...]
    visited_nodes: frozenset
    traversed_edges: frozenset

    @property
    def length(self) -> int:
        """Number of edge traversals of the walk."""
        return len(self.ports)

    @property
    def end(self) -> int:
        """Final node of the walk."""
        return self.nodes[-1]


def walk_trajectory(
    graph: PortLabeledGraph,
    start: int,
    increments: Sequence[int],
    initial_entry_port: Optional[int] = None,
) -> WalkResult:
    """Simulate the UXS walk defined by ``increments`` from ``start``.

    This is the *simulator-side* walk: it uses the graph directly (which an
    agent cannot do) and is used to verify coverage, to compute trajectories
    ``R(k, v)`` for analysis, and by the fast ESST runner.
    """
    nodes: List[int] = [start]
    ports: List[int] = []
    entry_ports: List[int] = []
    visited: Set[int] = {start}
    edges: Set[EdgeKey] = set()
    current = start
    entry: Optional[int] = initial_entry_port
    for increment in increments:
        degree = graph.degree(current)
        port = next_port(entry, increment, degree)
        nxt, entry_port = graph.traverse(current, port)
        ports.append(port)
        entry_ports.append(entry_port)
        edges.add(edge_key(current, nxt))
        visited.add(nxt)
        nodes.append(nxt)
        current = nxt
        entry = entry_port
    return WalkResult(
        nodes=tuple(nodes),
        ports=tuple(ports),
        entry_ports=tuple(entry_ports),
        visited_nodes=frozenset(visited),
        traversed_edges=frozenset(edges),
    )


def is_integral(
    graph: PortLabeledGraph,
    start: int,
    increments: Sequence[int],
) -> bool:
    """Return whether the walk from ``start`` traverses *all* edges of ``graph``.

    This is the paper's notion of an *integral* trajectory.
    """
    result = walk_trajectory(graph, start, increments)
    return len(result.traversed_edges) == graph.num_edges


def first_covering_prefix(
    graph: PortLabeledGraph,
    start: int,
    increments: Sequence[int],
) -> Optional[int]:
    """Return the length of the shortest prefix of the walk covering all edges.

    Returns ``None`` if even the full sequence does not cover the graph.
    Useful for calibrating the UXS length polynomial.
    """
    remaining = set(graph.edges())
    current = start
    entry: Optional[int] = None
    for index, increment in enumerate(increments):
        degree = graph.degree(current)
        port = next_port(entry, increment, degree)
        nxt, entry_port = graph.traverse(current, port)
        remaining.discard(edge_key(current, nxt))
        if not remaining:
            return index + 1
        current = nxt
        entry = entry_port
    return None
