"""Graph exploration substrate: exploration sequences, cost model, ESST.

Public API
----------
* :class:`~repro.exploration.uxs.PseudoRandomUXS`,
  :func:`~repro.exploration.uxs.walk_trajectory`,
  :func:`~repro.exploration.uxs.is_integral`
* :class:`~repro.exploration.cost_model.CostModel`,
  :class:`~repro.exploration.cost_model.SimulationCostModel`,
  :class:`~repro.exploration.cost_model.PaperCostModel`
* walker primitives: :class:`~repro.exploration.walker.Tape`,
  :func:`~repro.exploration.walker.step`,
  :func:`~repro.exploration.walker.backtrack`,
  :func:`~repro.exploration.walker.follow_exploration`
* Procedure ESST: :func:`~repro.exploration.esst.run_esst`,
  :func:`~repro.exploration.esst.esst_procedure`
"""

from .uxs import (
    ExplicitUXS,
    PseudoRandomUXS,
    UXSProvider,
    WalkResult,
    first_covering_prefix,
    is_integral,
    next_port,
    walk_trajectory,
)
from .cost_model import (
    CostModel,
    PaperCostModel,
    SimulationCostModel,
    default_cost_model,
)
from .walker import Tape, backtrack, follow_exploration, step
from .esst import ESSTResult, TokenTracker, esst_procedure, run_esst

__all__ = [
    "ESSTResult",
    "TokenTracker",
    "esst_procedure",
    "run_esst",
    "ExplicitUXS",
    "PseudoRandomUXS",
    "UXSProvider",
    "WalkResult",
    "first_covering_prefix",
    "is_integral",
    "next_port",
    "walk_trajectory",
    "CostModel",
    "PaperCostModel",
    "SimulationCostModel",
    "default_cost_model",
    "Tape",
    "backtrack",
    "follow_exploration",
    "step",
]
