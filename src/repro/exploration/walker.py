"""Generator building blocks for agent programs.

Agent programs in this library are Python generators that yield
:class:`~repro.sim.actions.Move` actions and receive
:class:`~repro.sim.actions.Observation` objects.  The paper's trajectory
constructions constantly do two things:

* follow an exploration walk ``R(k, ·)`` forward, and
* *backtrack* — retrace a stretch of the walk in reverse.

Backtracking only needs the ports by which the agent *entered* each node of
the stretch: re-taking those ports in reverse order retraces the path.  The
:class:`Tape` records exactly that, and :func:`backtrack` replays a recorded
slice.  Because backtracking moves are themselves recorded on the tape, a
later, outer backtrack (e.g. the reversal of ``A'`` which internally contains
reversals of ``Y'``) retraces the full node path, exactly as in the paper's
definitions.

All helpers are written with ``yield from`` composition in mind, so the
nested trajectory definitions of §3.1 translate almost literally into code
(see :mod:`repro.core.trajectories`).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from ..exceptions import ExplorationError
from ..sim.actions import Action, Move, Observation

__all__ = ["Tape", "step", "backtrack", "follow_exploration", "WalkProgram"]

#: Type alias of the generator protocol used by agent programs: yields
#: actions, receives observations, returns a value when the sub-walk is done.
WalkProgram = Generator[Action, Observation, Observation]


class Tape:
    """Record of the entry ports of every move an agent has made.

    The tape is append-only; sub-walks remember ``len(tape)`` when they start
    and can later be reversed with :func:`backtrack`.
    """

    __slots__ = ("entry_ports",)

    def __init__(self) -> None:
        self.entry_ports: List[int] = []

    def __len__(self) -> int:
        return len(self.entry_ports)

    def mark(self) -> int:
        """Return the current length, to be used later as a backtrack mark."""
        return len(self.entry_ports)

    def slice_since(self, mark: int) -> Sequence[int]:
        """Return the entry ports recorded since ``mark`` (oldest first)."""
        return self.entry_ports[mark:]


#: Shared, effectively-immutable :class:`Move` actions for the small port
#: numbers every realistic graph uses.  One agent step is one ``Move``; the
#: cache keeps the per-step allocation off the engine's hot path.
_MOVES = tuple(Move(port) for port in range(64))

_NO_ENTRY_PORT = "engine returned an observation without an entry port after a move"


def step(tape: Tape, port: int) -> WalkProgram:
    """Perform one edge traversal through ``port`` and record it on ``tape``.

    Returns the observation at the node reached.
    """
    observation = yield _MOVES[port] if 0 <= port < 64 else Move(port)
    if observation.entry_port is None:
        raise ExplorationError(_NO_ENTRY_PORT)
    tape.entry_ports.append(observation.entry_port)
    return observation


def backtrack(tape: Tape, mark: int, observation: Observation) -> WalkProgram:
    """Retrace, in reverse, every move recorded on ``tape`` since ``mark``.

    The agent ends up where it was when the tape had length ``mark``.  The
    backtracking moves are themselves appended to the tape (they are moves),
    which is what makes nested reversals — ``A(k) = A'(k)`` followed by the
    reverse of ``A'(k)``, where ``A'`` internally contains reversals — behave
    exactly like the paper's definitions.
    """
    # The body of :func:`step` is inlined: a sub-generator per move would
    # dominate the cost of the move itself on the engine's hot path.
    ports = list(tape.slice_since(mark))
    moves = _MOVES
    entry_ports = tape.entry_ports
    for port in reversed(ports):
        observation = yield moves[port] if 0 <= port < 64 else Move(port)
        entry = observation.entry_port
        if entry is None:
            raise ExplorationError(_NO_ENTRY_PORT)
        entry_ports.append(entry)
    return observation


def follow_exploration(
    tape: Tape,
    increments: Sequence[int],
    observation: Observation,
    initial_entry_port: Optional[int] = None,
) -> WalkProgram:
    """Follow the UXS walk defined by ``increments`` from the current node.

    This is the on-line, agent-side counterpart of
    :func:`repro.exploration.uxs.walk_trajectory`: after entering a node of
    degree ``d`` by port ``p`` the agent exits by ``(p + x_i) mod d``.  A fresh
    application of ``R(k, v)`` is a function of the start node alone (that is
    what makes the paper's trunk nodes well defined), so the first step uses
    ``initial_entry_port`` — ``None`` by default, which acts as port 0 — and
    *not* the port by which the agent happened to arrive at the node.

    Returns the observation at the final node of the walk.
    """
    # Both :func:`repro.exploration.uxs.next_port` and :func:`step` are
    # inlined (same arithmetic, same error messages): exploration walks are
    # the bulk of every agent's moves, and a function call plus a
    # sub-generator per move would double their cost.
    entry = initial_entry_port
    moves = _MOVES
    entry_ports = tape.entry_ports
    for increment in increments:
        degree = observation.degree
        if degree <= 0:
            raise ExplorationError("cannot take a step from an isolated node")
        port = (increment if entry is None else entry + increment) % degree
        observation = yield moves[port] if 0 <= port < 64 else Move(port)
        entry = observation.entry_port
        if entry is None:
            raise ExplorationError(_NO_ENTRY_PORT)
        entry_ports.append(entry)
    return observation
