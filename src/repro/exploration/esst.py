"""Procedure ESST — exploration with a semi-stationary token (§2).

A single agent explores an unknown graph with the help of a unique *token*
that sits on one extended edge ``u – v`` (the edge plus its endpoints) and
never leaves it.  Terminating exploration of anonymous graphs of unknown size
is impossible without such help; in the paper the token role is played by an
agent in state *ghost* (Algorithm SGL), and the exploring agent is an agent in
state *explorer*.

The procedure works in phases ``i = 3, 6, 9, ...``:

1. the agent follows the trunk ``R(2i, v)`` from its current node ``v``,
   checking that the application is *clean* (every visited node has degree at
   most ``i - 1``) and that the token is seen at least once; otherwise the
   phase is aborted and phase ``i + 3`` starts;
2. it backtracks to the first trunk node and then, at every trunk node
   ``u_j``, runs ``R(i, u_j)`` until the token is sighted, records the *code*
   (the sequence of ports from ``u_j`` to the sighting; empty if the token is
   at ``u_j``), backtracks to ``u_j`` and moves on to ``u_{j+1}``;
3. the phase is aborted as soon as an ``R(i, u_j)`` ends without a sighting or
   the number of *distinct* codes recorded in the phase reaches ``i / 3``;
4. if the whole phase completes, the procedure stops: by Theorem 2.1 every
   edge of the graph has been traversed and the final phase index ``t``
   satisfies ``n < t``, so ``t`` is an upper bound on the size of the graph.

Two ways of running the procedure are provided:

* :func:`esst_procedure` — the agent-program generator, used by Algorithm SGL
  inside the full asynchronous engine (token sightings are reported through a
  :class:`TokenTracker` by the agent's controller);
* :func:`run_esst` — a fast stand-alone driver against a known graph with a
  stationary token, used by the Theorem-2.1 experiments (E4) and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..exceptions import ExplorationError
from ..graphs.port_graph import EdgeKey, PortLabeledGraph, edge_key
from ..sim.actions import Move, Observation
from ..sim.position import Position
from .cost_model import CostModel
from .uxs import next_port
from .walker import _MOVES, _NO_ENTRY_PORT, Tape, WalkProgram, backtrack, step

__all__ = [
    "TokenTracker",
    "esst_procedure",
    "ESSTResult",
    "run_esst",
    "run_esst_reference",
]


class TokenTracker:
    """Communication channel reporting token sightings to the ESST program.

    Whoever drives the program (the stand-alone driver, or the agent's
    controller inside the engine) calls :meth:`record_sighting` every time the
    exploring agent's point coincides with the token; the program reads
    :attr:`sightings` and :attr:`last_was_at_node` to decide when the token
    has been seen and whether it was found exactly at a node.
    """

    __slots__ = ("sightings", "last_was_at_node")

    def __init__(self) -> None:
        #: Total number of sightings so far.
        self.sightings = 0
        #: Whether the most recent sighting happened at a node (as opposed to
        #: strictly inside an edge).
        self.last_was_at_node = False

    def record_sighting(self, at_node: bool) -> None:
        """Record one coincidence of the agent with the token."""
        self.sightings += 1
        self.last_was_at_node = at_node


@dataclass
class _PhaseOutcome:
    """Result of a single ESST phase."""

    observation: Observation
    success: bool
    codes: Tuple[Tuple[int, ...], ...]


def _phase(
    index: int,
    model: CostModel,
    tape: Tape,
    obs: Observation,
    tracker: TokenTracker,
):
    """Run one phase of Procedure ESST; generator returning a :class:`_PhaseOutcome`."""
    # The body of :func:`step` is inlined at every move site below (same
    # tape protocol, same error message): ESST is the explorer's inner loop,
    # and a sub-generator per move would dominate the cost of the move.
    moves = _MOVES
    entry_ports = tape.entry_ports
    # ------------------------------------------------------------------
    # 1. the trunk R(2i, v)
    # ------------------------------------------------------------------
    sightings_at_phase_start = tracker.sightings
    trunk_mark = tape.mark()
    trunk_exit_ports: List[int] = []
    clean = obs.degree <= index - 1
    # A fresh application of R(2i, v) is a function of v alone: its first
    # step uses port base 0 rather than the port by which the agent arrived.
    entry: Optional[int] = None
    for increment in model.uxs_terms(2 * index):
        port = next_port(entry, increment, obs.degree)
        trunk_exit_ports.append(port)
        obs = yield moves[port] if 0 <= port < 64 else Move(port)
        entry = obs.entry_port
        if entry is None:
            raise ExplorationError(_NO_ENTRY_PORT)
        entry_ports.append(entry)
        if obs.degree > index - 1:
            clean = False
    if not clean or tracker.sightings == sightings_at_phase_start:
        return _PhaseOutcome(obs, False, ())

    # ------------------------------------------------------------------
    # 2. backtrack to the first trunk node u1, tracking the final arrival
    # ------------------------------------------------------------------
    trunk_entry_ports = list(tape.slice_since(trunk_mark))
    arrived_on_token_node = False
    for port in reversed(trunk_entry_ports):
        before = tracker.sightings
        obs = yield moves[port] if 0 <= port < 64 else Move(port)
        entry = obs.entry_port
        if entry is None:
            raise ExplorationError(_NO_ENTRY_PORT)
        entry_ports.append(entry)
        sighted = tracker.sightings > before
        arrived_on_token_node = sighted and tracker.last_was_at_node

    # ------------------------------------------------------------------
    # 3. run R(i, u_j) from every trunk node u_j
    # ------------------------------------------------------------------
    codes: Set[Tuple[int, ...]] = set()
    max_codes = index // 3
    trunk_position = 0  # we are at u_1; trunk nodes are u_1 .. u_{P(2i)+1}
    total_trunk_nodes = len(trunk_exit_ports) + 1
    while True:
        # -- run R(index, u_j), interrupted at the first token sighting.
        code: Optional[Tuple[int, ...]] = None
        if arrived_on_token_node:
            code = ()
        else:
            sub_mark = tape.mark()
            ports_taken: List[int] = []
            entry = None  # fresh application of R(i, u_j): port base 0
            base_sightings = tracker.sightings
            for increment in model.uxs_terms(index):
                port = next_port(entry, increment, obs.degree)
                ports_taken.append(port)
                obs = yield moves[port] if 0 <= port < 64 else Move(port)
                entry = obs.entry_port
                if entry is None:
                    raise ExplorationError(_NO_ENTRY_PORT)
                entry_ports.append(entry)
                if tracker.sightings > base_sightings:
                    code = tuple(ports_taken)
                    break
            obs = yield from backtrack(tape, sub_mark, obs)
        if code is None:
            return _PhaseOutcome(obs, False, tuple(sorted(codes)))
        codes.add(code)
        if len(codes) >= max_codes:
            return _PhaseOutcome(obs, False, tuple(sorted(codes)))

        # -- advance to the next trunk node, replaying the recorded exit port.
        trunk_position += 1
        if trunk_position >= total_trunk_nodes:
            break
        port = trunk_exit_ports[trunk_position - 1]
        before = tracker.sightings
        obs = yield moves[port] if 0 <= port < 64 else Move(port)
        entry = obs.entry_port
        if entry is None:
            raise ExplorationError(_NO_ENTRY_PORT)
        entry_ports.append(entry)
        sighted = tracker.sightings > before
        arrived_on_token_node = sighted and tracker.last_was_at_node

    return _PhaseOutcome(obs, True, tuple(sorted(codes)))


def esst_procedure(
    model: CostModel,
    tape: Tape,
    obs: Observation,
    tracker: TokenTracker,
    max_phase: Optional[int] = None,
):
    """The ESST agent program.

    Yields :class:`~repro.sim.actions.Move` actions; returns a pair
    ``(observation, final_phase_index)`` when the procedure terminates.  The
    final phase index ``t`` satisfies ``n < t`` (proof of Theorem 2.1) and is
    therefore the size bound Algorithm SGL uses.

    ``max_phase`` is a safety valve for tests (the procedure provably
    terminates by phase ``9n + 3``, but a mis-reported token would otherwise
    loop forever).
    """
    phase_index = 3
    while True:
        outcome = yield from _phase(phase_index, model, tape, obs, tracker)
        obs = outcome.observation
        if outcome.success:
            return obs, phase_index
        phase_index += 3
        if max_phase is not None and phase_index > max_phase:
            raise ExplorationError(
                f"ESST did not terminate by phase {max_phase}; "
                "the token is probably not being reported correctly"
            )


@dataclass
class ESSTResult:
    """Outcome of a stand-alone run of Procedure ESST.

    Attributes
    ----------
    final_phase:
        Index ``t`` of the successful phase; satisfies ``n < t``.
    traversals:
        Total number of edge traversals performed by the exploring agent.
    visited_nodes:
        Set of node ids visited.
    traversed_edges:
        Set of undirected edges traversed.
    all_edges_traversed:
        Whether every edge of the graph was traversed (Theorem 2.1 says it
        must be).
    sightings:
        Number of token sightings that occurred during the run.
    """

    final_phase: int
    traversals: int
    visited_nodes: frozenset
    traversed_edges: frozenset
    all_edges_traversed: bool
    sightings: int


def run_esst(
    graph: PortLabeledGraph,
    start: int,
    token: Position,
    model: CostModel,
    max_phase: Optional[int] = None,
) -> ESSTResult:
    """Run Procedure ESST directly against ``graph`` with a stationary token.

    The token is a point of the embedding (a node or an interior point of an
    edge) that never moves; this matches the semi-stationary-token setting of
    §2 with the adversary keeping the token still, and the ghost tokens of
    Algorithm SGL.  No adversarial scheduler is involved because a single
    moving agent's cost does not depend on its speed.

    This driver is a *flat* transliteration of :func:`esst_procedure` +
    :func:`_phase`: the same walks, the same abort rules, the same tape
    discipline, but as plain loops over the adjacency table instead of the
    generator tower (program → phase → step) that the in-engine agent needs.
    Driving a generator step costs more than an entire flat iteration, so the
    Theorem-2.1 experiments run an order of magnitude faster this way.
    :func:`run_esst_reference` keeps the generator-driven driver;
    ``tests/test_engine_equivalence.py`` checks the two produce identical
    results.
    """
    if start not in graph:
        raise ExplorationError(f"start node {start} is not in the graph")
    if token.is_at_node and token.node not in graph:
        raise ExplorationError(f"token node {token.node} is not in the graph")
    if max_phase is None:
        max_phase = 9 * graph.size + 3

    adj = graph.adjacency()
    token_node = token.node

    # An agent can only ever stand on an isolated node at the very start (any
    # other node is reached through an edge), so the per-step degree check of
    # the generator driver reduces to this one precheck.
    if not adj[start]:
        raise ExplorationError("cannot take a step from an isolated node")

    # Traversed edges are tracked as single ints ``u * stride + v`` (u < v) —
    # one multiply-add instead of a tuple allocation per step.  A token edge
    # with an endpoint outside the graph can never be traversed, hence the
    # ``-1`` (matches nothing) rather than a potentially colliding encoding.
    stride = max(adj) + 1
    if token.edge is not None and token.edge[0] in adj and token.edge[1] in adj:
        token_edge_int = token.edge[0] * stride + token.edge[1]
    else:
        token_edge_int = -1

    # With contiguous node ids (every standard family) the adjacency rows go
    # into a list: subscription stays identical, indexing gets cheaper.
    if set(adj) == set(range(len(adj))):
        adj = [adj[node] for node in range(len(adj))]

    edge_ints: Set[int] = set()
    tape: List[int] = []  # entry port of every move, append-only
    edges_add = edge_ints.add
    tape_append = tape.append

    def run_phase(index: int, current: int, sightings: int, last_at_node: bool):
        """One phase of the procedure; returns (success, current, sightings, last_at_node).

        Every edge traversal is spelled out inline (index the adjacency row,
        record the sighting, push the entry port on the tape): a traversal is
        a handful of int operations, so even one function call per step
        doubles its cost.  The step bodies below are the flat counterpart of
        ``step(tape, port)`` in the generator implementation plus the
        driver-side sighting checks; the int comparisons against
        ``token_edge_int`` / ``token_node`` match nothing when the token sits
        on the other kind of point (or, for ``-1``, outside the graph).
        """
        # -- 1. the trunk R(2i, v); clean = every visited degree <= i - 1.
        phase_start_sightings = sightings
        trunk_mark = len(tape)
        trunk_exit_ports: List[int] = []
        trunk_ports_append = trunk_exit_ports.append
        row = adj[current]
        degree = len(row)
        clean = degree <= index - 1
        walk_entry: Optional[int] = None  # fresh application: port base 0
        for increment in model.uxs_terms(2 * index):
            port = (increment if walk_entry is None else walk_entry + increment) % degree
            trunk_ports_append(port)
            target, entry_port = row[port]
            key = (
                current * stride + target
                if current < target
                else target * stride + current
            )
            if key == token_edge_int:
                sightings += 1
                last_at_node = False
            elif target == token_node:
                sightings += 1
                last_at_node = True
            current = target
            edges_add(key)
            tape_append(entry_port)
            walk_entry = entry_port
            row = adj[target]
            degree = len(row)
            if degree > index - 1:
                clean = False
        if not clean or sightings == phase_start_sightings:
            return False, current, sightings, last_at_node

        # -- 2. backtrack to the first trunk node u1.
        arrived_on_token_node = False
        for port in reversed(tape[trunk_mark:]):
            before = sightings
            target, entry_port = adj[current][port]
            key = (
                current * stride + target
                if current < target
                else target * stride + current
            )
            if key == token_edge_int:
                sightings += 1
                last_at_node = False
            elif target == token_node:
                sightings += 1
                last_at_node = True
            current = target
            edges_add(key)
            tape_append(entry_port)
            arrived_on_token_node = sightings > before and last_at_node

        # -- 3. run R(i, u_j) from every trunk node u_j.
        #
        # With a stationary token, the probe R(i, u_j) + its backtrack is a
        # pure function of u_j within a phase: same path, same sightings, same
        # code, back at u_j either way.  Trunks revisit the same few nodes
        # over and over (a trunk has P(2i) steps but at most n distinct
        # nodes), so repeated probes replay a memo — the tape entries and
        # traversed edges are appended in bulk and the sighting delta is
        # added, keeping the traversal count, edge set and sighting total
        # exactly what step-by-step re-execution would produce.  When the
        # replayed probe saw no sighting, ``last_at_node`` keeps its current
        # value, exactly like a sighting-free re-execution would.
        codes: Set[Tuple[int, ...]] = set()
        max_codes = index // 3
        probe_terms = model.uxs_terms(index)
        probe_memo: Dict[int, Tuple] = {}
        trunk_position = 0
        total_trunk_nodes = len(trunk_exit_ports) + 1
        while True:
            code: Optional[Tuple[int, ...]] = None
            if arrived_on_token_node:
                code = ()
            else:
                cached = probe_memo.get(current)
                if cached is not None:
                    code, entries, keys, delta, cached_last_at_node = cached
                    tape.extend(entries)
                    edge_ints.update(keys)
                    if delta:
                        sightings += delta
                        last_at_node = cached_last_at_node
                else:
                    memo_node = current
                    sub_mark = len(tape)
                    probe_keys: List[int] = []
                    probe_keys_append = probe_keys.append
                    ports_taken: List[int] = []
                    walk_entry = None  # fresh application of R(i, u_j)
                    base_sightings = sightings
                    row = adj[current]
                    degree = len(row)
                    for increment in probe_terms:
                        port = (
                            increment if walk_entry is None else walk_entry + increment
                        ) % degree
                        ports_taken.append(port)
                        target, entry_port = row[port]
                        key = (
                            current * stride + target
                            if current < target
                            else target * stride + current
                        )
                        if key == token_edge_int:
                            sightings += 1
                            last_at_node = False
                        elif target == token_node:
                            sightings += 1
                            last_at_node = True
                        current = target
                        edges_add(key)
                        probe_keys_append(key)
                        tape_append(entry_port)
                        walk_entry = entry_port
                        row = adj[target]
                        degree = len(row)
                        if sightings > base_sightings:
                            code = tuple(ports_taken)
                            break
                    for port in reversed(tape[sub_mark:]):
                        target, entry_port = adj[current][port]
                        key = (
                            current * stride + target
                            if current < target
                            else target * stride + current
                        )
                        if key == token_edge_int:
                            sightings += 1
                            last_at_node = False
                        elif target == token_node:
                            sightings += 1
                            last_at_node = True
                        current = target
                        edges_add(key)
                        probe_keys_append(key)
                        tape_append(entry_port)
                    probe_memo[memo_node] = (
                        code,
                        tape[sub_mark:],
                        probe_keys,
                        sightings - base_sightings,
                        last_at_node,
                    )
            if code is None:
                return False, current, sightings, last_at_node
            codes.add(code)
            if len(codes) >= max_codes:
                return False, current, sightings, last_at_node

            # -- advance to the next trunk node along the recorded exit port.
            trunk_position += 1
            if trunk_position >= total_trunk_nodes:
                break
            before = sightings
            port = trunk_exit_ports[trunk_position - 1]
            target, entry_port = adj[current][port]
            key = (
                current * stride + target
                if current < target
                else target * stride + current
            )
            if key == token_edge_int:
                sightings += 1
                last_at_node = False
            elif target == token_node:
                sightings += 1
                last_at_node = True
            current = target
            edges_add(key)
            tape_append(entry_port)
            arrived_on_token_node = sightings > before and last_at_node
        return True, current, sightings, last_at_node

    current = start
    sightings = 0
    last_at_node = False
    # If the agent starts exactly at the token, that first coincidence is a
    # sighting (the agent can see a token it is standing on).
    if token_node is not None and token_node == start:
        sightings = 1
        last_at_node = True

    phase_index = 3
    while True:
        success, current, sightings, last_at_node = run_phase(
            phase_index, current, sightings, last_at_node
        )
        if success:
            final_phase = phase_index
            break
        phase_index += 3
        if phase_index > max_phase:
            raise ExplorationError(
                f"ESST did not terminate by phase {max_phase}; "
                "the token is probably not being reported correctly"
            )
    edges = frozenset((key // stride, key % stride) for key in edge_ints)
    # Every node the walk reached (other than the start) is an endpoint of a
    # traversed edge, so the visited set needs no per-step bookkeeping.
    visited = {start}
    for u, v in edges:
        visited.add(u)
        visited.add(v)
    return ESSTResult(
        final_phase=final_phase,
        traversals=len(tape),
        visited_nodes=frozenset(visited),
        traversed_edges=edges,
        all_edges_traversed=len(edges) == graph.num_edges,
        sightings=sightings,
    )


def run_esst_reference(
    graph: PortLabeledGraph,
    start: int,
    token: Position,
    model: CostModel,
    max_phase: Optional[int] = None,
) -> ESSTResult:
    """Generator-driven stand-alone ESST driver.

    Drives :func:`esst_procedure` exactly the way the asynchronous engine
    drives the in-agent program (actions out, observations in), against a
    known graph with a stationary token.  Slower than :func:`run_esst` but
    structurally identical to the engine-side execution; the equivalence
    tests run both and compare.
    """
    if start not in graph:
        raise ExplorationError(f"start node {start} is not in the graph")
    if token.is_at_node and token.node not in graph:
        raise ExplorationError(f"token node {token.node} is not in the graph")
    if max_phase is None:
        max_phase = 9 * graph.size + 3

    tracker = TokenTracker()
    tape = Tape()
    current = start
    entry: Optional[int] = None
    traversals = 0
    visited = {start}
    edges: Set[EdgeKey] = set()

    def observe() -> Observation:
        return Observation(
            degree=graph.degree(current),
            entry_port=entry,
            traversals=traversals,
        )

    # If the agent starts exactly at the token, that first coincidence is a
    # sighting (the agent can see a token it is standing on).
    if token.is_at_node and token.node == start:
        tracker.record_sighting(at_node=True)

    program = esst_procedure(model, tape, observe(), tracker, max_phase=max_phase)
    try:
        action = next(program)
        while True:
            if not isinstance(action, Move):
                raise ExplorationError(
                    f"ESST produced an unexpected action {action!r}"
                )
            target, entry_port = graph.traverse(current, action.port)
            key = edge_key(current, target)
            # Token sightings caused by this traversal: passing through the
            # interior of the token's edge, or arriving at the token's node.
            if token.is_inside_edge and token.edge == key:
                tracker.record_sighting(at_node=False)
            if token.is_at_node and token.node == target:
                tracker.record_sighting(at_node=True)
            current = target
            entry = entry_port
            traversals += 1
            visited.add(current)
            edges.add(key)
            action = program.send(observe())
    except StopIteration as stop:
        _final_obs, final_phase = stop.value
    return ESSTResult(
        final_phase=final_phase,
        traversals=traversals,
        visited_nodes=frozenset(visited),
        traversed_edges=frozenset(edges),
        all_edges_traversed=len(edges) == graph.num_edges,
        sightings=tracker.sightings,
    )
