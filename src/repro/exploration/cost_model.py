"""Cost models: the polynomial ``P``, trajectory lengths, and analytic bounds.

Every trajectory of the paper (Definitions 3.1–3.8) traverses a number of
edges that depends only on its parameter ``k`` — never on the graph or the
start node — because the underlying exploration sequence for parameter ``k``
has fixed length ``P(k)``.  This module computes those lengths *exactly* by
the same recurrences the constructions use:

====================  =====================================================
trajectory            number of edge traversals
====================  =====================================================
``R(k)``              ``P(k)``
``X(k)``              ``2 P(k)``
``Q(k)``              ``Σ_{i=1..k} |X(i)|``
``Y'(k)``             ``(P(k)+1) |Q(k)| + P(k)``
``Y(k)``              ``2 |Y'(k)|``
``Z(k)``              ``Σ_{i=1..k} |Y(i)|``
``A'(k)``             ``(P(k)+1) |Z(k)| + P(k)``
``A(k)``              ``2 |A'(k)|``
``B(k)``              ``2 |A(4k)| · |Y(k)|``
``K(k)``              ``2 (|B(4k)| + |A(8k)|) · |X(k)|``
``Ω(k)``              ``(2k-1) |K(k)| · |X(k)|``
====================  =====================================================

On top of the lengths it provides the analytic quantities of the paper:

* ``esst_bound(n)`` — the cost bound of Theorem 2.1;
* ``pi_bound(n, m)`` — the rendezvous bound ``Π(n, m)`` of Theorem 3.1;
* ``baseline_trajectory_length(n, L)`` — the cost of the naive exponential
  algorithm sketched at the beginning of §3.

Two concrete models are provided.  :class:`SimulationCostModel` uses a small
configurable ``P`` so that trajectories can actually be executed, and a
calibrated (non-worst-case) budget for Algorithm SGL.  :class:`PaperCostModel`
uses a larger, Reingold-flavoured ``P`` and the honest worst-case budgets; it
is meant for computing bounds (experiment E3), not for running agents.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..exceptions import ExplorationError
from ..runtime.registry import COST_MODELS
from .uxs import PseudoRandomUXS, UXSProvider

__all__ = [
    "CostModel",
    "SimulationCostModel",
    "PaperCostModel",
    "default_cost_model",
]


class CostModel:
    """Bundle of the exploration-sequence provider and all derived lengths.

    Parameters
    ----------
    uxs:
        The universal-exploration-sequence provider; ``P(k)`` is defined as
        ``uxs.length(k)``.
    name:
        Identifier used in reports.
    """

    def __init__(self, uxs: UXSProvider, name: str = "cost-model") -> None:
        self._uxs = uxs
        self._name = name
        self._cache: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Identifier of the model (used in tables)."""
        return self._name

    @property
    def uxs(self) -> UXSProvider:
        """The exploration-sequence provider backing this model."""
        return self._uxs

    def P(self, k: int) -> int:  # noqa: N802 - matches the paper's notation
        """Number of edge traversals of ``R(k, ·)`` (the paper's ``P(k)``)."""
        return self._uxs.length(k)

    def uxs_terms(self, k: int) -> Sequence[int]:
        """The exploration sequence for parameter ``k``."""
        return self._uxs.terms(k)

    # ------------------------------------------------------------------
    # exact trajectory lengths (Definitions 3.1 - 3.8)
    # ------------------------------------------------------------------
    def _memo(self, key: str, k: int, compute) -> int:
        cache_key = (key, k)
        if cache_key not in self._cache:
            self._cache[cache_key] = compute(k)
        return self._cache[cache_key]

    def len_R(self, k: int) -> int:
        """Length of ``R(k, ·)``."""
        return self.P(k)

    def len_X(self, k: int) -> int:
        """Length of ``X(k, ·) = R(k, ·) then backtrack`` (Definition 3.1)."""
        return self._memo("X", k, lambda k: 2 * self.P(k))

    def len_Q(self, k: int) -> int:
        """Length of ``Q(k, ·) = X(1)X(2)...X(k)`` (Definition 3.2)."""
        return self._memo("Q", k, lambda k: sum(self.len_X(i) for i in range(1, k + 1)))

    def len_Y_prime(self, k: int) -> int:
        """Length of ``Y'(k, ·)`` (Definition 3.3): ``Q`` at every trunk node."""
        return self._memo(
            "Y'", k, lambda k: (self.P(k) + 1) * self.len_Q(k) + self.P(k)
        )

    def len_Y(self, k: int) -> int:
        """Length of ``Y(k, ·) = Y'(k, ·) then backtrack`` (Definition 3.3)."""
        return self._memo("Y", k, lambda k: 2 * self.len_Y_prime(k))

    def len_Z(self, k: int) -> int:
        """Length of ``Z(k, ·) = Y(1)Y(2)...Y(k)`` (Definition 3.4)."""
        return self._memo("Z", k, lambda k: sum(self.len_Y(i) for i in range(1, k + 1)))

    def len_A_prime(self, k: int) -> int:
        """Length of ``A'(k, ·)`` (Definition 3.5): ``Z`` at every trunk node."""
        return self._memo(
            "A'", k, lambda k: (self.P(k) + 1) * self.len_Z(k) + self.P(k)
        )

    def len_A(self, k: int) -> int:
        """Length of ``A(k, ·) = A'(k, ·) then backtrack`` (Definition 3.5)."""
        return self._memo("A", k, lambda k: 2 * self.len_A_prime(k))

    def len_B(self, k: int) -> int:
        """Length of ``B(k, ·) = Y(k, ·)^{2|A(4k)|}`` (Definition 3.6)."""
        return self._memo("B", k, lambda k: 2 * self.len_A(4 * k) * self.len_Y(k))

    def repetitions_B(self, k: int) -> int:
        """Number of copies of ``Y(k)`` inside ``B(k)`` (= ``2 |A(4k)|``)."""
        return 2 * self.len_A(4 * k)

    def len_K(self, k: int) -> int:
        """Length of ``K(k, ·) = X(k, ·)^{2(|B(4k)| + |A(8k)|)}`` (Def. 3.7)."""
        return self._memo(
            "K", k, lambda k: self.repetitions_K(k) * self.len_X(k)
        )

    def repetitions_K(self, k: int) -> int:
        """Number of copies of ``X(k)`` inside ``K(k)``."""
        return 2 * (self.len_B(4 * k) + self.len_A(8 * k))

    def len_Omega(self, k: int) -> int:
        """Length of ``Ω(k, ·) = X(k, ·)^{(2k-1)|K(k)|}`` (Definition 3.8)."""
        return self._memo(
            "Omega", k, lambda k: self.repetitions_Omega(k) * self.len_X(k)
        )

    def repetitions_Omega(self, k: int) -> int:
        """Number of copies of ``X(k)`` inside ``Ω(k)`` (= ``(2k-1)|K(k)|``)."""
        return (2 * k - 1) * self.len_K(k)

    # ------------------------------------------------------------------
    # Algorithm RV-asynch-poly structure
    # ------------------------------------------------------------------
    def segment_length(self, k: int, bit: int) -> int:
        """Length of the segment processing ``bit`` in iteration ``k``.

        Processing bit 1 means following ``B(2k)`` twice, bit 0 means
        following ``A(4k)`` twice (§3.1, pseudocode).
        """
        if bit not in (0, 1):
            raise ExplorationError(f"bit must be 0 or 1, got {bit}")
        return 2 * self.len_B(2 * k) if bit == 1 else 2 * self.len_A(4 * k)

    def piece_length(self, k: int, bits: Sequence[int]) -> int:
        """Exact length of the ``k``-th piece for a modified label ``bits``.

        A *piece* is everything between two consecutive fences (§3.2): the
        segments for bits ``1 .. min(k, s)`` separated by borders ``K(k)``.
        The fence ``Ω(k)`` that follows the piece is *not* included.
        """
        s = len(bits)
        limit = min(k, s)
        total = 0
        for i in range(1, limit + 1):
            total += self.segment_length(k, bits[i - 1])
            if i < limit:
                total += self.len_K(k)
        return total

    def rv_length_through_piece(self, bits: Sequence[int], last_piece: int) -> int:
        """Total trajectory length through the end of piece ``last_piece``.

        Includes every earlier piece and every earlier fence, plus the last
        piece itself (but not the fence following it) — i.e. the number of
        edge traversals an agent with modified label ``bits`` has performed
        when it completes its ``last_piece``-th piece.
        """
        total = 0
        for k in range(1, last_piece + 1):
            total += self.piece_length(k, bits)
            if k < last_piece:
                total += self.len_Omega(k)
        return total

    # ------------------------------------------------------------------
    # analytic bounds of the paper
    # ------------------------------------------------------------------
    def esst_phase_cost(self, i: int) -> int:
        """Upper bound on the cost of phase ``i`` of Procedure ESST.

        The agent walks at most three times along the trunk ``R(2i, ·)`` and at
        most twice along each ``R(i, ·)`` launched from the ``P(2i)+1`` trunk
        nodes (proof of Theorem 2.1), plus one edge traversal to finish the
        current edge when a phase is aborted mid-edge.
        """
        if i < 3 or i % 3 != 0:
            raise ExplorationError("ESST phases are the multiples of 3, starting at 3")
        return 3 * self.P(2 * i) + (self.P(2 * i) + 1) * 2 * self.P(i) + 1

    def esst_bound(self, n: int) -> int:
        """Bound of Theorem 2.1 on the total cost of ESST in a graph of size ``n``."""
        if n < 1:
            raise ExplorationError("graph size must be >= 1")
        last_phase = 9 * n + 3
        return sum(self.esst_phase_cost(i) for i in range(3, last_phase + 1, 3))

    def modified_label_length(self, label_length: int) -> int:
        """Length ``l`` of the modified label of a label of binary length ``m``.

        The transformation doubles every bit and appends ``01``:
        ``l = 2 m + 2`` (§3.1).
        """
        if label_length < 1:
            raise ExplorationError("label length must be >= 1")
        return 2 * label_length + 2

    def final_piece_index(self, n: int, label_length: int) -> int:
        """The piece index ``2(n + l) + 1`` by which meeting is guaranteed."""
        l = self.modified_label_length(label_length)
        return 2 * (n + l) + 1

    def pi_bound(self, n: int, label_length: int) -> int:
        """The polynomial bound ``Π(n, m)`` of Theorem 3.1.

        ``n`` is the size of the graph and ``label_length`` is
        ``m = min(|L1|, |L2|)``, the binary length of the smaller label.
        Follows the proof's estimate: meeting is guaranteed by the time one
        agent completes its ``N = 2(n + l) + 1``-th piece, and each piece ``k``
        is bounded by ``N (2|A(4k)| + 2|B(2k)| + |K(k)|)``.
        """
        if n < 1:
            raise ExplorationError("graph size must be >= 1")
        N = self.final_piece_index(n, label_length)
        total = 0
        for k in range(1, N + 1):
            piece_bound = N * (
                2 * self.len_A(4 * k) + 2 * self.len_B(2 * k) + self.len_K(k)
            )
            total += piece_bound + self.len_Omega(k)
        return total

    def baseline_trajectory_length(self, n: int, label: int) -> int:
        """Cost of the naive exponential algorithm's full trajectory.

        The simple algorithm sketched at the start of §3: an agent with label
        ``L`` in a graph of known size ``n`` follows
        ``(R(n, v) R̄(n, v))^{(2P(n)+1)^L}`` and stops.  Its trajectory length
        is ``(2P(n)+1)^L · 2P(n)`` — exponential in ``L``.
        """
        if label < 1:
            raise ExplorationError("labels are strictly positive integers")
        repetitions = (2 * self.P(n) + 1) ** label
        return repetitions * 2 * self.P(n)

    def baseline_repetitions(self, n: int, label: int) -> int:
        """Number of ``X(n)`` repetitions of the naive algorithm: ``(2P(n)+1)^L``."""
        if label < 1:
            raise ExplorationError("labels are strictly positive integers")
        return (2 * self.P(n) + 1) ** label

    # ------------------------------------------------------------------
    # Algorithm SGL budget (pluggable; see DESIGN.md substitution 3)
    # ------------------------------------------------------------------
    def rendezvous_budget(self, size_bound: int, label_length: int) -> int:
        """The number of RV-asynch-poly traversals an explorer performs in SGL.

        In the paper this is ``Π(E(n), |L|)``.  Subclasses may override it
        with a smaller calibrated budget so that Algorithm SGL can actually be
        executed (the honest ``Π`` has polynomial degree ≈ 25).
        """
        return self.pi_bound(size_bound, label_length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self._name!r})"


class SimulationCostModel(CostModel):
    """Cost model sized for actually *running* the algorithms.

    Uses a small pseudo-UXS length polynomial (default ``P(k) = 2k² + 8``)
    and a calibrated SGL budget.  The structure of every trajectory is exactly
    the paper's; only the constants of ``P`` differ, which is what makes
    end-to-end simulation tractable (DESIGN.md §2).
    """

    def __init__(
        self,
        length_coefficient: int = 2,
        length_exponent: int = 2,
        length_offset: int = 8,
        seed: int = 2013,
        sgl_budget_coefficient: int = 25,
    ) -> None:
        uxs = PseudoRandomUXS(
            length_coefficient=length_coefficient,
            length_exponent=length_exponent,
            length_offset=length_offset,
            seed=seed,
        )
        super().__init__(uxs, name=f"simulation[{uxs.describe()}]")
        self._sgl_budget_coefficient = sgl_budget_coefficient

    def rendezvous_budget(self, size_bound: int, label_length: int) -> int:
        """A calibrated polynomial budget ``c · s² · (ℓ + 2) + 8 P(s)``.

        ``s`` is the size bound the explorer derived from ESST (the final
        phase index, which exceeds the true size ``n``), and ``ℓ`` is the
        binary length of the agent's own label.  The budget is intentionally
        generous for the graph sizes used in tests and benchmarks while being
        executable; DESIGN.md §2 (substitution 3) discusses the trade-off.
        """
        if size_bound < 1:
            raise ExplorationError("size bound must be >= 1")
        return (
            self._sgl_budget_coefficient * size_bound * size_bound * (label_length + 2)
            + 4 * self.P(size_bound)
        )


class PaperCostModel(CostModel):
    """Cost model with a Reingold-flavoured ``P`` for analytic bounds.

    ``P(k) = coefficient · k^exponent`` with a cubic default.  Intended for
    computing the exact values of the paper's bounds (experiment E3); running
    agents under this model is possible but pointless — the whole point of
    the paper is that the bound is a *polynomial*, not that it is small.
    """

    def __init__(self, length_coefficient: int = 1, length_exponent: int = 3) -> None:
        uxs = PseudoRandomUXS(
            length_coefficient=length_coefficient,
            length_exponent=length_exponent,
            length_offset=0,
            seed=1973,
        )
        super().__init__(
            uxs,
            name=f"paper[P(k) = {length_coefficient} * k^{length_exponent}]",
        )


def default_cost_model() -> SimulationCostModel:
    """Return the cost model used by examples and tests unless overridden."""
    return SimulationCostModel()


# ----------------------------------------------------------------------
# runtime registry entries
# ----------------------------------------------------------------------
COST_MODELS.register("simulation", SimulationCostModel)
COST_MODELS.register("default", SimulationCostModel)
COST_MODELS.register("paper", PaperCostModel)
