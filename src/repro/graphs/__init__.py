"""Port-labeled anonymous graphs: the network substrate of the paper.

Public API
----------
* :class:`~repro.graphs.port_graph.PortLabeledGraph` — the immutable graph
  model (anonymous nodes, local port numbers).
* :class:`~repro.graphs.port_graph.PortGraphBuilder` — incremental builder.
* :mod:`repro.graphs.families` — the graph families used in the experiments
  (``ring``, ``path``, ``complete_graph``, ``lollipop``, ``random_connected``,
  ...).
* :class:`~repro.graphs.embedding.GraphEmbedding` — explicit 3D embedding
  (reporting / visualisation only).
"""

from .port_graph import EdgeKey, PortGraphBuilder, PortLabeledGraph, edge_key
from .embedding import GraphEmbedding, Point3D
from . import families

__all__ = [
    "EdgeKey",
    "PortGraphBuilder",
    "PortLabeledGraph",
    "edge_key",
    "GraphEmbedding",
    "Point3D",
    "families",
]
