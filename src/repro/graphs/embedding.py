"""Geometric embedding of a port-labeled graph.

The paper embeds the graph in three-dimensional Euclidean space so that edges
are pairwise disjoint segments and agents are points moving inside the
embedding; this is what gives meaning to "meeting inside an edge".

For the simulation itself the only geometric fact that matters is that each
edge is a unit segment on which positions can be compared (see
:mod:`repro.sim.position`).  This module provides an explicit embedding —
coordinates for nodes and parametric points on edges — which is used by the
examples for reporting and by tests asserting that the segment view and the
coordinate view agree.  Nodes are placed on a circle and each edge ``{u, v}``
is lifted to a distinct height ``z`` so that non-incident edges never cross,
mirroring the paper's assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Tuple

from ..exceptions import GraphError
from .port_graph import EdgeKey, PortLabeledGraph

__all__ = ["Point3D", "GraphEmbedding"]


@dataclass(frozen=True)
class Point3D:
    """A point of the embedding, with float coordinates (reporting only)."""

    x: float
    y: float
    z: float

    def distance_to(self, other: "Point3D") -> float:
        """Euclidean distance to ``other``."""
        return math.sqrt(
            (self.x - other.x) ** 2 + (self.y - other.y) ** 2 + (self.z - other.z) ** 2
        )


class GraphEmbedding:
    """A concrete 3D embedding of a :class:`PortLabeledGraph`.

    Nodes sit on the unit circle in the ``z = 0`` plane (in node-id order).
    The midpoint of edge number ``i`` is lifted to height ``z = (i + 1) * h``
    where ``h`` is a small constant, which guarantees that the *open* segments
    of distinct edges are disjoint, as required by the paper's model.
    """

    def __init__(self, graph: PortLabeledGraph, lift: float = 0.01) -> None:
        self._graph = graph
        self._lift = lift
        nodes = sorted(graph.nodes())
        n = len(nodes)
        self._node_points: Dict[int, Point3D] = {}
        for index, v in enumerate(nodes):
            angle = 2.0 * math.pi * index / n
            self._node_points[v] = Point3D(math.cos(angle), math.sin(angle), 0.0)
        self._edge_height: Dict[EdgeKey, float] = {}
        for index, key in enumerate(sorted(graph.edges())):
            self._edge_height[key] = (index + 1) * lift

    @property
    def graph(self) -> PortLabeledGraph:
        """The embedded graph."""
        return self._graph

    def node_point(self, v: int) -> Point3D:
        """Return the coordinates of node ``v``."""
        try:
            return self._node_points[v]
        except KeyError:
            raise GraphError(f"unknown node {v}") from None

    def edge_point(self, key: EdgeKey, fraction: Fraction) -> Point3D:
        """Return the point at parametric position ``fraction`` on edge ``key``.

        ``fraction`` is measured from the endpoint with the smaller node id
        (the canonical orientation used throughout the simulator); it must lie
        in ``[0, 1]``.  Interior points are lifted off the ``z = 0`` plane by a
        tent function so that distinct edges do not intersect.
        """
        if key not in self._edge_height:
            raise GraphError(f"unknown edge {key}")
        if not (0 <= fraction <= 1):
            raise GraphError(f"edge fraction {fraction} outside [0, 1]")
        u, v = key
        start = self._node_points[u]
        end = self._node_points[v]
        t = float(fraction)
        # Tent-shaped lift: zero at both endpoints, maximal at the midpoint.
        height = self._edge_height[key] * (1.0 - abs(2.0 * t - 1.0))
        return Point3D(
            start.x + (end.x - start.x) * t,
            start.y + (end.y - start.y) * t,
            height,
        )
