"""Anonymous port-labeled graphs — the network model of the paper.

The paper models the network as a finite simple undirected connected graph
whose *nodes are unlabeled*, but where the edges incident to a node ``v`` have
distinct local labels in ``{0, ..., deg(v) - 1}`` called *port numbers*.
Every undirected edge ``{u, v}`` therefore carries two port numbers, one at
``u`` and one at ``v``, and there is no relation between them.

Agents navigating the graph never observe node identities; they only learn the
degree of the node they are at and the port by which they entered it.  Node
identifiers in this module exist purely for the benefit of the simulator and
of test code — the agent-facing API (:mod:`repro.sim`) never exposes them.

The central class is :class:`PortLabeledGraph`.  Graphs are immutable once
built; use :class:`PortGraphBuilder` (or the family constructors in
:mod:`repro.graphs.families`) to create them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import GraphError, InvalidPortError

__all__ = [
    "EdgeKey",
    "PortLabeledGraph",
    "PortGraphBuilder",
    "edge_key",
]

#: Canonical identifier of an undirected edge: the pair of endpoint ids with
#: the smaller id first.  Used throughout the simulator to refer to edges
#: independently of traversal direction.
EdgeKey = Tuple[int, int]


def edge_key(u: int, v: int) -> EdgeKey:
    """Return the canonical (sorted) key of the undirected edge ``{u, v}``."""
    if u == v:
        raise GraphError(f"self-loops are not allowed (node {u})")
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class _HalfEdge:
    """One direction of an undirected edge, as seen from its source node."""

    source: int
    target: int
    port_at_source: int
    port_at_target: int

    @property
    def key(self) -> EdgeKey:
        return edge_key(self.source, self.target)


class PortLabeledGraph:
    """An immutable, connected, simple, undirected port-labeled graph.

    Parameters
    ----------
    adjacency:
        Mapping ``node -> list of (neighbour, port_at_neighbour)`` indexed by
        local port: ``adjacency[v][i]`` is the pair ``(u, j)`` such that the
        edge with port ``i`` at ``v`` leads to node ``u`` and has port ``j``
        at ``u``.
    name:
        Optional human-readable name (e.g. ``"ring(8)"``), used in reports.

    Notes
    -----
    The constructor validates the whole structure: ports must form a
    contiguous range at every node, the port labeling must be symmetric
    (if port ``i`` at ``v`` leads to ``u`` with port ``j``, then port ``j`` at
    ``u`` must lead back to ``v`` with port ``i``), the graph must be simple
    and connected.  Construction is ``O(n + m)``.
    """

    __slots__ = ("_adjacency", "_name", "_edges", "_half_edges", "_degrees")

    def __init__(
        self,
        adjacency: Dict[int, Sequence[Tuple[int, int]]],
        name: str = "graph",
    ) -> None:
        if not adjacency:
            raise GraphError("a graph must have at least one node")
        self._name = name
        self._adjacency: Dict[int, Tuple[Tuple[int, int], ...]] = {
            node: tuple(neigh) for node, neigh in adjacency.items()
        }
        self._degrees: Dict[int, int] = {
            node: len(neigh) for node, neigh in self._adjacency.items()
        }
        self._half_edges: Dict[Tuple[int, int], _HalfEdge] = {}
        self._edges: FrozenSet[EdgeKey] = frozenset()
        self._validate_and_index()

    # ------------------------------------------------------------------
    # construction-time validation
    # ------------------------------------------------------------------
    def _validate_and_index(self) -> None:
        edges = set()
        half_edges: Dict[Tuple[int, int], _HalfEdge] = {}
        nodes = set(self._adjacency)
        for v, neighbours in self._adjacency.items():
            seen_targets = set()
            for port, entry in enumerate(neighbours):
                if not (isinstance(entry, tuple) and len(entry) == 2):
                    raise GraphError(
                        f"adjacency[{v}][{port}] must be a (neighbour, port) pair"
                    )
                u, back_port = entry
                if u not in nodes:
                    raise GraphError(f"node {v} references unknown neighbour {u}")
                if u == v:
                    raise GraphError(f"self-loop at node {v} is not allowed")
                if u in seen_targets:
                    raise GraphError(
                        f"multiple edges between {v} and {u} are not allowed"
                    )
                seen_targets.add(u)
                # Check symmetry of the port labeling.
                back_neighbours = self._adjacency[u]
                if not (0 <= back_port < len(back_neighbours)):
                    raise InvalidPortError(
                        f"port {back_port} at node {u} is out of range "
                        f"(degree {len(back_neighbours)})"
                    )
                back_target, back_back_port = back_neighbours[back_port]
                if back_target != v or back_back_port != port:
                    raise GraphError(
                        f"port labeling is not symmetric on edge {{{u}, {v}}}: "
                        f"port {port} at {v} -> ({u}, {back_port}) but "
                        f"port {back_port} at {u} -> ({back_target}, {back_back_port})"
                    )
                half_edges[(v, port)] = _HalfEdge(
                    source=v, target=u, port_at_source=port, port_at_target=back_port
                )
                edges.add(edge_key(u, v))
        self._edges = frozenset(edges)
        self._half_edges = half_edges
        self._check_connected()

    def _check_connected(self) -> None:
        nodes = list(self._adjacency)
        seen = {nodes[0]}
        stack = [nodes[0]]
        while stack:
            v = stack.pop()
            for (u, _port) in self._adjacency[v]:
                if u not in seen:
                    seen.add(u)
                    stack.append(u)
        if len(seen) != len(nodes):
            missing = sorted(set(nodes) - seen)
            raise GraphError(
                f"graph is not connected; unreachable nodes: {missing[:5]}"
                + ("..." if len(missing) > 5 else "")
            )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable name of the graph (used in reports and tables)."""
        return self._name

    @property
    def size(self) -> int:
        """Number of nodes — called the *size* of the graph in the paper."""
        return len(self._adjacency)

    @property
    def num_nodes(self) -> int:
        """Alias of :attr:`size`."""
        return self.size

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    def nodes(self) -> Iterator[int]:
        """Iterate over node identifiers (simulator-side only)."""
        return iter(self._adjacency)

    def edges(self) -> Iterator[EdgeKey]:
        """Iterate over canonical undirected edge keys."""
        return iter(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether the undirected edge ``{u, v}`` exists."""
        return edge_key(u, v) in self._edges

    def degree(self, v: int) -> int:
        """Return the degree of node ``v``."""
        try:
            return self._degrees[v]
        except KeyError:
            raise GraphError(f"unknown node {v}") from None

    def max_degree(self) -> int:
        """Return the maximum degree over all nodes."""
        return max(self._degrees.values())

    def min_degree(self) -> int:
        """Return the minimum degree over all nodes."""
        return min(self._degrees.values())

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def succ(self, v: int, port: int) -> int:
        """Return ``succ(v, i)``: the neighbour of ``v`` behind port ``port``.

        This is the paper's ``succ`` function (§1, "The model").
        """
        half = self._half_edge(v, port)
        return half.target

    def traverse(self, v: int, port: int) -> Tuple[int, int]:
        """Traverse the edge with port ``port`` at ``v``.

        Returns the pair ``(u, entry_port)`` where ``u = succ(v, port)`` and
        ``entry_port`` is the port number of the same edge at ``u`` — exactly
        the information an agent acquires when entering a node.
        """
        half = self._half_edge(v, port)
        return half.target, half.port_at_target

    def port_towards(self, v: int, u: int) -> int:
        """Return the port at ``v`` of the edge ``{v, u}``.

        Raises :class:`GraphError` if ``u`` is not a neighbour of ``v``.  This
        is a simulator-side convenience (agents cannot call it, because they
        do not see node identities).
        """
        for port, (target, _back) in enumerate(self._adjacency[v]):
            if target == u:
                return port
        raise GraphError(f"{u} is not a neighbour of {v}")

    def edge_endpoints_of_port(self, v: int, port: int) -> EdgeKey:
        """Return the canonical key of the edge behind ``port`` at ``v``."""
        half = self._half_edge(v, port)
        return half.key

    def ports_of_edge(self, key: EdgeKey) -> Tuple[int, int]:
        """Return ``(port at key[0], port at key[1])`` of the edge ``key``."""
        u, v = key
        return self.port_towards(u, v), self.port_towards(v, u)

    def neighbours(self, v: int) -> List[int]:
        """Return the neighbours of ``v`` in port order."""
        return [target for (target, _back) in self._adjacency[v]]

    def adjacency(self) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        """The validated adjacency table: node → ``(neighbour, entry_port)`` per port.

        ``adjacency()[v][p]`` is exactly ``traverse(v, p)`` — the constructor
        proved the two agree — as one dict lookup and one tuple index.  Hot
        loops (the engine's action handler, the stand-alone ESST driver)
        resolve ports through this table instead of paying per-step validation.
        The tuples are immutable; callers must treat the dict as read-only.
        """
        return self._adjacency

    def _half_edge(self, v: int, port: int) -> _HalfEdge:
        if v not in self._adjacency:
            raise GraphError(f"unknown node {v}")
        degree = self._degrees[v]
        if not (0 <= port < degree):
            raise InvalidPortError(
                f"port {port} is invalid at node {v} (degree {degree})"
            )
        return self._half_edges[(v, port)]

    # ------------------------------------------------------------------
    # structural analysis helpers (simulator / test side)
    # ------------------------------------------------------------------
    def shortest_path_lengths(self, source: int) -> Dict[int, int]:
        """Return BFS distances from ``source`` to every node."""
        if source not in self._adjacency:
            raise GraphError(f"unknown node {source}")
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt: List[int] = []
            for v in frontier:
                for (u, _back) in self._adjacency[v]:
                    if u not in dist:
                        dist[u] = dist[v] + 1
                        nxt.append(u)
            frontier = nxt
        return dist

    def diameter(self) -> int:
        """Return the diameter (longest shortest path) of the graph."""
        best = 0
        for v in self._adjacency:
            dist = self.shortest_path_lengths(v)
            best = max(best, max(dist.values()))
        return best

    def is_regular(self) -> bool:
        """Return whether all nodes have the same degree."""
        degrees = set(self._degrees.values())
        return len(degrees) == 1

    def relabeled(self, mapping: Dict[int, int], name: Optional[str] = None) -> "PortLabeledGraph":
        """Return an isomorphic copy with node ids replaced via ``mapping``.

        Port numbers are preserved, so the copy is indistinguishable from the
        original for any agent (agents never see node ids).  Useful for
        property tests asserting that algorithms are oblivious to node
        identities.
        """
        if set(mapping) != set(self._adjacency):
            raise GraphError("mapping must cover exactly the nodes of the graph")
        if len(set(mapping.values())) != len(mapping):
            raise GraphError("mapping must be injective")
        new_adj: Dict[int, List[Tuple[int, int]]] = {}
        for v, neighbours in self._adjacency.items():
            new_adj[mapping[v]] = [(mapping[u], back) for (u, back) in neighbours]
        return PortLabeledGraph(new_adj, name=name or f"{self._name}~relabel")

    # ------------------------------------------------------------------
    # dunder methods
    # ------------------------------------------------------------------
    def __contains__(self, node: int) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PortLabeledGraph(name={self._name!r}, nodes={self.size}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortLabeledGraph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __hash__(self) -> int:
        return hash(tuple(sorted((v, tuple(adj)) for v, adj in self._adjacency.items())))


class PortGraphBuilder:
    """Incremental builder of :class:`PortLabeledGraph` instances.

    Ports are assigned in the order edges are added at each endpoint: the
    first edge added at a node gets port 0 there, the next port 1, and so on.
    This matches the usual convention for constructing port-labeled test
    graphs, and the resulting numbering can afterwards be permuted with
    :meth:`PortLabeledGraph.relabeled` or by shuffling insertion order.

    Example
    -------
    >>> builder = PortGraphBuilder(name="triangle")
    >>> for u, v in [(0, 1), (1, 2), (2, 0)]:
    ...     builder.add_edge(u, v)
    >>> graph = builder.build()
    >>> graph.size
    3
    """

    def __init__(self, name: str = "graph") -> None:
        self._name = name
        self._adjacency: Dict[int, List[Tuple[int, int]]] = {}

    def add_node(self, v: int) -> "PortGraphBuilder":
        """Declare a node (no-op if already present). Returns ``self``."""
        self._adjacency.setdefault(v, [])
        return self

    def add_edge(self, u: int, v: int) -> "PortGraphBuilder":
        """Add the undirected edge ``{u, v}``, assigning the next free ports.

        Returns ``self`` so calls can be chained.
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (node {u})")
        self.add_node(u)
        self.add_node(v)
        for (target, _p) in self._adjacency[u]:
            if target == v:
                raise GraphError(f"edge {{{u}, {v}}} already present")
        port_at_u = len(self._adjacency[u])
        port_at_v = len(self._adjacency[v])
        self._adjacency[u].append((v, port_at_v))
        self._adjacency[v].append((u, port_at_u))
        return self

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> "PortGraphBuilder":
        """Add every edge in ``edges``. Returns ``self``."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    def build(self) -> PortLabeledGraph:
        """Validate and return the finished immutable graph."""
        return PortLabeledGraph(self._adjacency, name=self._name)
