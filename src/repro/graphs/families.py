"""Standard graph families used by the test suite and the benchmarks.

Every constructor returns a :class:`~repro.graphs.port_graph.PortLabeledGraph`
whose port numbering is deterministic, so that experiments are reproducible.
An optional ``rng_seed`` (where applicable) controls the randomised families.

The families cover the situations the paper's analysis cares about:

* ``ring`` / ``oriented_ring`` — the classic hard case for symmetry breaking
  (an oriented ring is the paper's example of a graph where a single agent
  cannot even detect it is alone).
* ``path``, ``star``, ``complete_graph``, ``binary_tree``, ``grid``,
  ``hypercube`` — structured topologies of varying degree and diameter.
* ``lollipop`` — the worst case for random-walk cover time, used to stress
  the pseudo-UXS coverage.
* ``random_connected`` (Erdős–Rényi conditioned on connectivity) and
  ``random_regular`` — irregular and regular random instances.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import GraphError
from ..runtime.registry import GRAPH_FAMILIES
from .port_graph import PortGraphBuilder, PortLabeledGraph

__all__ = [
    "ring",
    "oriented_ring",
    "path",
    "star",
    "complete_graph",
    "binary_tree",
    "grid",
    "torus",
    "hypercube",
    "lollipop",
    "barbell",
    "random_connected",
    "random_regular",
    "random_tree",
    "named_family",
    "FAMILY_BUILDERS",
]


def ring(n: int, name: Optional[str] = None) -> PortLabeledGraph:
    """Return a cycle on ``n >= 3`` nodes with builder-assigned ports."""
    if n < 3:
        raise GraphError("a ring needs at least 3 nodes")
    builder = PortGraphBuilder(name=name or f"ring({n})")
    builder.add_edges((i, (i + 1) % n) for i in range(n))
    return builder.build()


def oriented_ring(n: int, name: Optional[str] = None) -> PortLabeledGraph:
    """Return a *consistently oriented* ring: port 0 is clockwise at every node.

    This is the paper's canonical example (footnote in §4) of a symmetric
    graph in which a single agent can never discover it is alone.
    """
    if n < 3:
        raise GraphError("a ring needs at least 3 nodes")
    adjacency: Dict[int, List[Tuple[int, int]]] = {}
    for i in range(n):
        clockwise = (i + 1) % n
        counter = (i - 1) % n
        # port 0 -> clockwise neighbour (entering it by its port 1),
        # port 1 -> counter-clockwise neighbour (entering it by its port 0).
        adjacency[i] = [(clockwise, 1), (counter, 0)]
    return PortLabeledGraph(adjacency, name=name or f"oriented_ring({n})")


def path(n: int, name: Optional[str] = None) -> PortLabeledGraph:
    """Return a simple path on ``n >= 2`` nodes."""
    if n < 2:
        raise GraphError("a path needs at least 2 nodes")
    builder = PortGraphBuilder(name=name or f"path({n})")
    builder.add_edges((i, i + 1) for i in range(n - 1))
    return builder.build()


def star(n: int, name: Optional[str] = None) -> PortLabeledGraph:
    """Return a star with one centre (node 0) and ``n - 1`` leaves."""
    if n < 2:
        raise GraphError("a star needs at least 2 nodes")
    builder = PortGraphBuilder(name=name or f"star({n})")
    builder.add_edges((0, i) for i in range(1, n))
    return builder.build()


def complete_graph(n: int, name: Optional[str] = None) -> PortLabeledGraph:
    """Return the complete graph ``K_n`` for ``n >= 2``."""
    if n < 2:
        raise GraphError("a complete graph needs at least 2 nodes")
    builder = PortGraphBuilder(name=name or f"complete({n})")
    builder.add_edges((i, j) for i in range(n) for j in range(i + 1, n))
    return builder.build()


def binary_tree(n: int, name: Optional[str] = None) -> PortLabeledGraph:
    """Return the first ``n`` nodes of a complete binary tree (heap layout)."""
    if n < 2:
        raise GraphError("a tree needs at least 2 nodes")
    builder = PortGraphBuilder(name=name or f"binary_tree({n})")
    builder.add_edges((((i + 1) // 2) - 1, i) for i in range(1, n))
    return builder.build()


def grid(rows: int, cols: int, name: Optional[str] = None) -> PortLabeledGraph:
    """Return a ``rows x cols`` grid (4-neighbour mesh, no wraparound)."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise GraphError("a grid needs at least 2 nodes")
    builder = PortGraphBuilder(name=name or f"grid({rows}x{cols})")

    def node(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node(r, c), node(r, c + 1)))
            if r + 1 < rows:
                edges.append((node(r, c), node(r + 1, c)))
    builder.add_edges(edges)
    return builder.build()


def torus(rows: int, cols: int, name: Optional[str] = None) -> PortLabeledGraph:
    """Return a ``rows x cols`` torus (grid with wraparound); needs both >= 3."""
    if rows < 3 or cols < 3:
        raise GraphError("a torus needs rows >= 3 and cols >= 3")
    builder = PortGraphBuilder(name=name or f"torus({rows}x{cols})")

    def node(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((node(r, c), node(r, (c + 1) % cols)))
            edges.append((node(r, c), node((r + 1) % rows, c)))
    builder.add_edges(edges)
    return builder.build()


def hypercube(dimension: int, name: Optional[str] = None) -> PortLabeledGraph:
    """Return the ``dimension``-dimensional hypercube (2^dimension nodes)."""
    if dimension < 1:
        raise GraphError("hypercube dimension must be >= 1")
    n = 1 << dimension
    builder = PortGraphBuilder(name=name or f"hypercube({dimension})")
    builder.add_edges(
        (v, v ^ (1 << bit)) for v in range(n) for bit in range(dimension) if v < (v ^ (1 << bit))
    )
    return builder.build()


def lollipop(clique_size: int, tail_length: int, name: Optional[str] = None) -> PortLabeledGraph:
    """Return a lollipop graph: a clique with a path ("tail") attached.

    Lollipops maximise random-walk cover time and are therefore the stress
    test for the pseudo-UXS coverage guarantees.
    """
    if clique_size < 3:
        raise GraphError("lollipop clique must have at least 3 nodes")
    if tail_length < 1:
        raise GraphError("lollipop tail must have at least 1 node")
    builder = PortGraphBuilder(name=name or f"lollipop({clique_size},{tail_length})")
    builder.add_edges(
        (i, j) for i in range(clique_size) for j in range(i + 1, clique_size)
    )
    previous = 0
    for t in range(tail_length):
        tail_node = clique_size + t
        builder.add_edge(previous, tail_node)
        previous = tail_node
    return builder.build()


def barbell(clique_size: int, bridge_length: int, name: Optional[str] = None) -> PortLabeledGraph:
    """Return two cliques of ``clique_size`` nodes joined by a path."""
    if clique_size < 3:
        raise GraphError("barbell cliques must have at least 3 nodes")
    if bridge_length < 1:
        raise GraphError("barbell bridge must have at least 1 edge")
    builder = PortGraphBuilder(name=name or f"barbell({clique_size},{bridge_length})")
    offset = clique_size + bridge_length - 1
    builder.add_edges(
        (i, j) for i in range(clique_size) for j in range(i + 1, clique_size)
    )
    builder.add_edges(
        (offset + i, offset + j)
        for i in range(clique_size)
        for j in range(i + 1, clique_size)
    )
    previous = 0
    for t in range(bridge_length - 1):
        bridge_node = clique_size + t
        builder.add_edge(previous, bridge_node)
        previous = bridge_node
    builder.add_edge(previous, offset)
    return builder.build()


def random_connected(
    n: int,
    edge_probability: float = 0.4,
    rng_seed: int = 0,
    name: Optional[str] = None,
) -> PortLabeledGraph:
    """Return a connected Erdős–Rényi-style graph on ``n`` nodes.

    A uniform random spanning tree guarantees connectivity; each remaining
    pair of nodes is joined independently with probability
    ``edge_probability``.  The construction is fully determined by
    ``rng_seed``.
    """
    if n < 2:
        raise GraphError("a random connected graph needs at least 2 nodes")
    if not (0.0 <= edge_probability <= 1.0):
        raise GraphError("edge_probability must lie in [0, 1]")
    rng = random.Random(("random_connected", n, edge_probability, rng_seed).__repr__())
    builder = PortGraphBuilder(name=name or f"er({n},p={edge_probability},seed={rng_seed})")
    # Random spanning tree via a random permutation (random attachment).
    order = list(range(n))
    rng.shuffle(order)
    present = set()
    for index in range(1, n):
        u = order[index]
        v = order[rng.randrange(index)]
        builder.add_edge(u, v)
        present.add(frozenset((u, v)))
    for u in range(n):
        for v in range(u + 1, n):
            if frozenset((u, v)) in present:
                continue
            if rng.random() < edge_probability:
                builder.add_edge(u, v)
    return builder.build()


def random_regular(
    n: int,
    degree: int,
    rng_seed: int = 0,
    name: Optional[str] = None,
    max_attempts: int = 200,
) -> PortLabeledGraph:
    """Return a connected random ``degree``-regular graph on ``n`` nodes.

    Uses the configuration model with rejection (no self-loops, no multiple
    edges, connected), retrying up to ``max_attempts`` times with derived
    seeds.  ``n * degree`` must be even and ``degree < n``.
    """
    if degree < 2 or degree >= n:
        raise GraphError("need 2 <= degree < n for a regular graph")
    if (n * degree) % 2 != 0:
        raise GraphError("n * degree must be even")
    for attempt in range(max_attempts):
        rng = random.Random(("random_regular", n, degree, rng_seed, attempt).__repr__())
        stubs = [v for v in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        pairs = [(stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)]
        seen = set()
        ok = True
        for u, v in pairs:
            if u == v or frozenset((u, v)) in seen:
                ok = False
                break
            seen.add(frozenset((u, v)))
        if not ok:
            continue
        builder = PortGraphBuilder(
            name=name or f"regular({n},d={degree},seed={rng_seed})"
        )
        try:
            builder.add_edges(pairs)
            return builder.build()
        except GraphError:
            continue
    raise GraphError(
        f"could not generate a connected {degree}-regular graph on {n} nodes "
        f"after {max_attempts} attempts"
    )


def random_tree(n: int, rng_seed: int = 0, name: Optional[str] = None) -> PortLabeledGraph:
    """Return a uniformly random labelled tree (random attachment model)."""
    if n < 2:
        raise GraphError("a tree needs at least 2 nodes")
    rng = random.Random(("random_tree", n, rng_seed).__repr__())
    builder = PortGraphBuilder(name=name or f"tree({n},seed={rng_seed})")
    for v in range(1, n):
        builder.add_edge(v, rng.randrange(v))
    return builder.build()


#: Each named family is a callable ``(n, rng_seed) -> PortLabeledGraph``,
#: registered in the runtime's graph-family registry so the scenario runtime,
#: the CLI and the experiment drivers all resolve the same names.
GRAPH_FAMILIES.register("ring", lambda n, seed=0: ring(n))
GRAPH_FAMILIES.register("oriented_ring", lambda n, seed=0: oriented_ring(n))
GRAPH_FAMILIES.register("path", lambda n, seed=0: path(n))
GRAPH_FAMILIES.register("star", lambda n, seed=0: star(n))
GRAPH_FAMILIES.register("complete", lambda n, seed=0: complete_graph(n))
GRAPH_FAMILIES.register("binary_tree", lambda n, seed=0: binary_tree(n))
GRAPH_FAMILIES.register("hypercube", lambda n, seed=0: hypercube(max(1, (n - 1).bit_length())))
GRAPH_FAMILIES.register(
    "lollipop", lambda n, seed=0: lollipop(max(3, n // 2), max(1, n - max(3, n // 2)))
)
GRAPH_FAMILIES.register("erdos_renyi", lambda n, seed=0: random_connected(n, 0.4, rng_seed=seed))
GRAPH_FAMILIES.register(
    "random_regular",
    lambda n, seed=0: random_regular(n if (n * 3) % 2 == 0 else n + 1, 3, rng_seed=seed),
)
GRAPH_FAMILIES.register("random_tree", lambda n, seed=0: random_tree(n, rng_seed=seed))

#: Backwards-compatible alias: the registry is dict-like, so historical code
#: doing ``sorted(FAMILY_BUILDERS)`` or ``FAMILY_BUILDERS[name]`` keeps working.
FAMILY_BUILDERS = GRAPH_FAMILIES


def named_family(family: str, n: int, rng_seed: int = 0) -> PortLabeledGraph:
    """Build a graph of ``family`` with about ``n`` nodes (CLI convenience)."""
    try:
        build = FAMILY_BUILDERS[family]
    except KeyError:
        raise GraphError(
            f"unknown family {family!r}; available: {sorted(FAMILY_BUILDERS)}"
        ) from None
    return build(n, rng_seed)
