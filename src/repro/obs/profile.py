"""Render a trace payload as a human-readable profile table.

The table attributes wall time across the named spans of a trace, relative
to a *root* span (``run`` — the whole scenario — by default, or
``engine.run`` with ``root="engine.run"`` to profile just the engine loop).
Spans nest: ``engine.run`` contains ``scheduler.decide`` / ``engine.apply``
/ ``engine.check_termination``, so percentages of non-root spans may sum
near 100% *within* their parent while the parent itself also appears.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["format_profile", "engine_coverage", "apply_breakdown"]

#: Spans that partition the engine loop (children of ``engine.run``).
ENGINE_CHILD_SPANS = (
    "engine.bootstrap",
    "scheduler.decide",
    "engine.apply",
    "engine.check_termination",
)

#: Spans that break down ``engine.apply``: the sweep over the traversed
#: edge's occupants versus the neighbor-index/lattice maintenance.  Whatever
#: apply time neither covers (action dispatch, program driving) is reported
#: as ``other``.
APPLY_CHILD_SPANS = (
    "engine.apply.sweep",
    "engine.apply.index",
)


def _spans_of(trace: Mapping[str, Any]) -> Dict[str, Dict[str, float]]:
    spans = trace.get("spans", {})
    return {name: dict(span) for name, span in spans.items()}


def engine_coverage(trace: Mapping[str, Any]) -> Optional[float]:
    """Fraction of ``engine.run`` wall time attributed to its child spans.

    ``None`` when the trace holds no engine span (e.g. an ESST run, which is
    adversary-free and never enters the engine).
    """
    spans = _spans_of(trace)
    total = spans.get("engine.run", {}).get("seconds", 0.0)
    if not total:
        return None
    attributed = sum(
        spans.get(name, {}).get("seconds", 0.0) for name in ENGINE_CHILD_SPANS
    )
    return attributed / total


def apply_breakdown(trace: Mapping[str, Any]) -> Optional[Dict[str, float]]:
    """Split ``engine.apply`` seconds into sweep, index maintenance and rest.

    Returns ``{"sweep": s, "index": s, "other": s, "total": s}`` — ``other``
    is the apply time spent outside the two instrumented phases (decision
    validation, driving the agent program, meeting emission).  ``None`` when
    the trace holds no ``engine.apply`` span.
    """
    spans = _spans_of(trace)
    total = spans.get("engine.apply", {}).get("seconds")
    if total is None:
        return None
    sweep = spans.get("engine.apply.sweep", {}).get("seconds", 0.0)
    index = spans.get("engine.apply.index", {}).get("seconds", 0.0)
    return {
        "sweep": sweep,
        "index": index,
        "other": max(0.0, total - sweep - index),
        "total": total,
    }


def format_profile(trace: Mapping[str, Any], root: str = "run") -> str:
    """Aligned profile table: span, calls, seconds, % of the root span.

    Spans are sorted by accumulated seconds, descending; the root span leads.
    A counters section follows with the deterministic tallies (decisions,
    agents scanned, ``Fraction`` ops), since a profile without the work
    counts behind the times only tells half the story.
    """
    spans = _spans_of(trace)
    total = spans.get(root, {}).get("seconds", 0.0)
    if not total:
        # Fall back to the largest span so the table degrades gracefully.
        total = max((span.get("seconds", 0.0) for span in spans.values()), default=0.0)

    ordered: List[Tuple[str, Dict[str, float]]] = sorted(
        spans.items(),
        key=lambda item: (item[0] != root, -item[1].get("seconds", 0.0), item[0]),
    )
    rows = []
    for name, span in ordered:
        seconds = span.get("seconds", 0.0)
        share = f"{100.0 * seconds / total:5.1f}%" if total else "    -"
        rows.append(
            (name, str(int(span.get("count", 0))), f"{seconds:.6f}", share)
        )
    headers = ("span", "calls", "seconds", f"% of {root}")
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rows))
        if rows
        else len(headers[column])
        for column in range(4)
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))

    coverage = engine_coverage(trace)
    if coverage is not None:
        lines.append("")
        lines.append(
            f"engine coverage: {100.0 * coverage:.1f}% of engine.run attributed "
            f"to {', '.join(ENGINE_CHILD_SPANS)}"
        )
    breakdown = apply_breakdown(trace)
    if breakdown is not None and breakdown["total"] > 0:
        total_apply = breakdown["total"]
        lines.append(
            "engine.apply breakdown: "
            f"sweep {100.0 * breakdown['sweep'] / total_apply:.1f}%, "
            f"index maintenance {100.0 * breakdown['index'] / total_apply:.1f}%, "
            f"other {100.0 * breakdown['other'] / total_apply:.1f}%"
        )

    counters = trace.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name.ljust(width)}  {counters[name]}")
    dropped = trace.get("events_dropped", 0)
    events = trace.get("events", ())
    if events or dropped:
        lines.append("")
        lines.append(f"events: {len(events)} recorded, {dropped} dropped")
    return "\n".join(lines)
