"""Run tracing: spans, events and counters summarised into a ``RunTrace``.

A :class:`Tracer` is handed (ambiently, see :func:`use_tracer`) to the
layers executing one scenario.  They record three kinds of telemetry:

* **spans** — named wall-time accumulators (``scheduler.decide``,
  ``engine.apply``, …).  A span is recorded either with the context manager
  :meth:`Tracer.span` or, on hot paths, with the two-call fast path
  ``t0 = tracer.clock(); ...; tracer.add_span("name", t0)``;
* **counters** — deterministic tallies (decisions, agents scanned,
  ``Fraction`` operations) via :meth:`Tracer.count`;
* **events** — a bounded list of structured moments (meetings), via
  :meth:`Tracer.event`.

:meth:`Tracer.finish` folds everything into a :class:`RunTrace`, whose
:meth:`~RunTrace.to_dict` payload is plain JSON values — it travels in
``RunRecord.extra["trace"]`` and is therefore store-queryable, mergeable and
servable like any other result field.  Counters and events are deterministic
for a fixed spec; only the spans' ``seconds`` vary between runs (see
:func:`deterministic_view`, which strips them for comparisons).
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Tracer",
    "RunTrace",
    "TRACE_SCHEMA_VERSION",
    "current_tracer",
    "use_tracer",
    "deterministic_view",
]

#: Version stamp carried by every trace payload.
TRACE_SCHEMA_VERSION = 1

#: Default cap on recorded events (meetings of a long adversarial run can
#: number in the thousands; the trace keeps the first N and counts the rest).
DEFAULT_MAX_EVENTS = 256


@dataclass
class RunTrace:
    """The JSON-serialisable telemetry of one run.

    Attributes
    ----------
    counters:
        Deterministic tallies, e.g. ``{"engine.decisions": 412, ...}``.
    spans:
        ``{name: {"count": n, "seconds": s}}`` wall-time accumulators.
    events:
        The first ``max_events`` structured events, in order.
    events_dropped:
        How many events were recorded beyond the cap.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    events_dropped: int = 0
    schema: int = TRACE_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "counters": dict(sorted(self.counters.items())),
            "spans": {
                name: {"count": span["count"], "seconds": span["seconds"]}
                for name, span in sorted(self.spans.items())
            },
            "events": list(self.events),
            "events_dropped": self.events_dropped,
        }

    def span_seconds(self, name: str) -> float:
        """Accumulated wall seconds of span ``name`` (0.0 when absent)."""
        span = self.spans.get(name)
        return float(span["seconds"]) if span else 0.0


def deterministic_view(trace: Any) -> Dict[str, Any]:
    """The timing-free projection of a trace payload (dict or RunTrace).

    Two traced runs of the same spec agree exactly on this view — counters,
    span names and counts, events — while the spans' measured ``seconds``
    naturally differ run to run.
    """
    data = trace.to_dict() if isinstance(trace, RunTrace) else dict(trace)
    spans = data.get("spans", {})
    return {
        "schema": data.get("schema"),
        "counters": dict(data.get("counters", {})),
        "spans": {name: int(span["count"]) for name, span in sorted(spans.items())},
        "events": list(data.get("events", ())),
        "events_dropped": data.get("events_dropped", 0),
    }


class Tracer:
    """Collects spans, counters and events for one run.

    Not thread-safe by design: a tracer belongs to the single thread running
    one scenario (the concurrency story lives in
    :class:`~repro.obs.metrics.MetricsRegistry`, which aggregates across
    runs).  ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        clock=time.perf_counter,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.clock = clock
        self.max_events = max_events
        self._counters: Dict[str, int] = {}
        self._spans: Dict[str, List[float]] = {}  # name -> [count, seconds]
        self._events: List[Dict[str, Any]] = []
        self._events_dropped = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the deterministic counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def add_span(self, name: str, started: float) -> None:
        """Fast-path span close: accumulate ``clock() - started`` under ``name``."""
        elapsed = self.clock() - started
        span = self._spans.get(name)
        if span is None:
            self._spans[name] = [1, elapsed]
        else:
            span[0] += 1
            span[1] += elapsed

    @contextlib.contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context-manager form of :meth:`add_span` for non-hot paths."""
        started = self.clock()
        try:
            yield
        finally:
            self.add_span(name, started)

    def event(self, type: str, **fields: Any) -> None:
        """Record one structured event (bounded by ``max_events``)."""
        if len(self._events) >= self.max_events:
            self._events_dropped += 1
            return
        self._events.append({"type": type, **fields})

    # ------------------------------------------------------------------
    # summarising
    # ------------------------------------------------------------------
    def finish(self) -> RunTrace:
        """Fold everything recorded so far into a :class:`RunTrace`."""
        return RunTrace(
            counters=dict(self._counters),
            spans={
                name: {"count": span[0], "seconds": round(span[1], 9)}
                for name, span in self._spans.items()
            },
            events=list(self._events),
            events_dropped=self._events_dropped,
        )


# ----------------------------------------------------------------------
# the ambient tracer
# ----------------------------------------------------------------------
# A module-level slot rather than a parameter threaded through every layer:
# the engine sits four call frames below ``run()`` behind registry-dispatched
# problem kinds whose signatures should not grow a telemetry argument.  A
# scenario runs on one thread start to finish, and the runner scopes the slot
# with try/finally, so the ambient value is never observed stale.
_active: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The tracer of the scenario currently executing, or ``None``."""
    return _active


@contextlib.contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Install ``tracer`` as the ambient tracer for the duration of the block."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
