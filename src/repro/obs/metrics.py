"""Process-local metrics: counters, gauges and histograms with labels.

A :class:`MetricsRegistry` is a zero-dependency, thread-safe bag of named
instruments.  Instrumented code asks the registry for an instrument by name
(:meth:`~MetricsRegistry.counter` / :meth:`~MetricsRegistry.gauge` /
:meth:`~MetricsRegistry.histogram`) and records into it; the registry renders
everything either as a plain JSON-able snapshot or in the Prometheus text
exposition format (``render_prom``).

Cost model
----------
Metrics are **disabled by default**: the module-level recorder starts as
:data:`NULL_REGISTRY`, whose instruments are shared no-op singletons, so an
instrumented hot path pays one attribute lookup and one no-op call — nothing
is allocated, no lock is taken.  :func:`enable_metrics` swaps in a live
registry for the process (the CLI does this behind ``repro metrics dump`` and
``REPRO_METRICS=1``); components that want isolated metrics — the HTTP result
service keeps per-instance request counters — construct their own
:class:`MetricsRegistry` instead of touching the global one.

Naming follows the Prometheus conventions: ``snake_case`` metric names with
a ``repro_`` prefix and unit suffixes (``_total``, ``_seconds``, ``_bytes``).
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds-flavoured, Prometheus-style).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Frozen label set: a sorted tuple of ``(name, value)`` string pairs.
LabelItems = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def _format_labels(items: LabelItems) -> str:
    """Render a frozen label set the way Prometheus expects (``{a="b"}``)."""
    if not items:
        return ""
    body = ",".join(
        '{}="{}"'.format(key, value.replace("\\", "\\\\").replace('"', '\\"'))
        for key, value in items
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Instrument:
    """Shared machinery: a named instrument holding per-label-set values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._values: Dict[LabelItems, float] = {}

    # -- reading ------------------------------------------------------
    def value(self, **labels: Any) -> float:
        """Current value for the given label set (0.0 when never touched)."""
        with self._lock:
            return self._values.get(_freeze_labels(labels), 0.0)

    def samples(self) -> List[Tuple[LabelItems, float]]:
        """All ``(labels, value)`` pairs, sorted by label set."""
        with self._lock:
            return sorted(self._values.items())

    def snapshot(self) -> Any:
        """JSON-able view: a bare number, or ``{label-string: number}``."""
        samples = self.samples()
        if len(samples) == 1 and samples[0][0] == ():
            return samples[0][1]
        return {
            ",".join(f"{key}={value}" for key, value in labels) or "": value
            for labels, value in samples
        }


class Counter(_Instrument):
    """A monotonically increasing value (optionally per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        frozen = _freeze_labels(labels)
        with self._lock:
            self._values[frozen] = self._values.get(frozen, 0.0) + amount


class Gauge(_Instrument):
    """A value that can go up and down (queue depths, cache sizes)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        frozen = _freeze_labels(labels)
        with self._lock:
            self._values[frozen] = float(value)

    def inc(self, amount: float = 1, **labels: Any) -> None:
        frozen = _freeze_labels(labels)
        with self._lock:
            self._values[frozen] = self._values.get(frozen, 0.0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)


class Histogram(_Instrument):
    """Cumulative-bucket histogram (count, sum and per-bucket counts)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, lock)
        self.buckets: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        self._counts: Dict[LabelItems, List[int]] = {}
        self._sums: Dict[LabelItems, float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        frozen = _freeze_labels(labels)
        with self._lock:
            counts = self._counts.get(frozen)
            if counts is None:
                counts = self._counts[frozen] = [0] * (len(self.buckets) + 1)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
            self._values[frozen] = self._values.get(frozen, 0.0) + 1
            self._sums[frozen] = self._sums.get(frozen, 0.0) + value

    # -- reading ------------------------------------------------------
    def count(self, **labels: Any) -> int:
        """Number of observations for the label set."""
        return int(self.value(**labels))

    def sum(self, **labels: Any) -> float:
        """Sum of observed values for the label set."""
        with self._lock:
            return self._sums.get(_freeze_labels(labels), 0.0)

    def cumulative_buckets(self, labels: LabelItems) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        with self._lock:
            counts = self._counts.get(labels, [0] * (len(self.buckets) + 1))
            out: List[Tuple[float, int]] = []
            running = 0
            for bound, count in zip(self.buckets, counts):
                running += count
                out.append((bound, running))
            out.append((float("inf"), running + counts[-1]))
            return out

    def snapshot(self) -> Any:
        samples = self.samples()
        out: Dict[str, Any] = {}
        for labels, count in samples:
            key = ",".join(f"{k}={v}" for k, v in labels) or ""
            with self._lock:
                total = self._sums.get(labels, 0.0)
            out[key] = {"count": int(count), "sum": round(total, 9)}
        if list(out) == [""]:
            return out[""]
        return out


class MetricsRegistry:
    """A named collection of instruments sharing one lock.

    ``enabled=False`` builds the null recorder: every instrument accessor
    returns a shared no-op singleton, so disabled call sites cost one method
    call and touch no shared state.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: "Dict[str, _Instrument]" = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------
    # instrument accessors (create-on-first-use, idempotent)
    # ------------------------------------------------------------------
    def _get(self, name: str, factory, kind: str) -> Any:
        if not self.enabled:
            return _NULL_INSTRUMENT
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
                self._order.append(name)
            elif instrument.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {instrument.kind}, not a {kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help, self._lock), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help, self._lock), "gauge")

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(
            name, lambda: Histogram(name, help, self._lock, buckets), "histogram"
        )

    # ------------------------------------------------------------------
    # reading / rendering
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return list(self._order)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able ``{name: value-or-labelled-values}`` view, sorted."""
        return {
            name: self._instruments[name].snapshot() for name in sorted(self.names())
        }

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def render_prom(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self.names()):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for labels, _count in instrument.samples():
                    for bound, cumulative in instrument.cumulative_buckets(labels):
                        le = "+Inf" if bound == float("inf") else _format_value(bound)
                        bucket_labels = labels + (("le", le),)
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(labels)} "
                        f"{_format_value(instrument.sum(**dict(labels)))}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(labels)} "
                        f"{int(instrument.value(**dict(labels)))}"
                    )
            else:
                for labels, value in instrument.samples():
                    lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every instrument (tests; a fresh process starts empty anyway)."""
        with self._lock:
            self._instruments.clear()
            self._order.clear()


class _NullInstrument:
    """The shared no-op instrument every disabled registry hands out."""

    name = "null"
    help = ""
    kind = "null"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        pass

    def dec(self, amount: float = 1, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0.0

    def count(self, **labels: Any) -> int:
        return 0

    def sum(self, **labels: Any) -> float:
        return 0.0

    def samples(self) -> List[Tuple[LabelItems, float]]:
        return []

    def snapshot(self) -> Any:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()

#: The module-level null recorder: a permanently disabled registry.
NULL_REGISTRY = MetricsRegistry(enabled=False)

_default: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide recorder instrumented code writes to.

    Starts as :data:`NULL_REGISTRY` (metrics off; instrumentation is free);
    :func:`enable_metrics` swaps in a live registry.
    """
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide recorder; returns the old one."""
    global _default
    previous = _default
    _default = registry
    return previous


def enable_metrics() -> MetricsRegistry:
    """Turn process-wide metrics on (idempotent); returns the live registry."""
    global _default
    if not _default.enabled:
        _default = MetricsRegistry(enabled=True)
    return _default


def disable_metrics() -> None:
    """Turn process-wide metrics back off (the null recorder)."""
    global _default
    _default = NULL_REGISTRY
