"""Process-local observability: metrics, run tracing and profiling.

Three pieces, all zero-dependency and stdlib-only:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters / gauges / histograms with labels, rendered as JSON or Prometheus
  text.  Process-wide metrics are **off by default** (the module-level null
  recorder makes instrumentation free); :func:`enable_metrics` turns them on,
  and components wanting isolation construct their own registry.
* :mod:`repro.obs.trace` — a per-run :class:`Tracer` of spans, deterministic
  counters and bounded events, summarised into a JSON-serialisable
  :class:`RunTrace` that travels in ``RunRecord.extra["trace"]``.
* :mod:`repro.obs.profile` — renders a trace as a profile table attributing
  wall time across the named spans.
* :mod:`repro.obs.events` — the durable fleet event journal (append-only
  JSONL shards, one per writer) plus worker heartbeats and the fleet
  summary behind ``repro top`` / ``GET /fleet``.
* :mod:`repro.obs.analytics` — cross-run trace aggregation: rollups,
  outlier flagging, ``repro trace diff`` / ``repro trace top``.

Metric name inventory (all from the process-wide registry unless noted):

==========================================  =========  ==========================================
name                                        kind       source
==========================================  =========  ==========================================
``repro_runs_total{problem=}``              counter    runner: scenarios executed
``repro_run_seconds{problem=}``             histogram  runner: per-run wall time
``repro_sweep_cells_total{status=}``        counter    executors: ``executed`` / ``cached`` cells
``repro_cell_seconds{executor=}``           histogram  executors: per-cell wall / completion latency
``repro_store_appends_total``               counter    filestore: record lines appended
``repro_store_bytes_written_total``         counter    filestore: shard + index bytes appended
``repro_store_index_refreshes_total{changed=}``  counter  filestore: ``refresh()`` outcomes
``repro_queue_claims_total{kind=}``         counter    queue: ``fresh`` / ``reclaim`` / ``steal`` claims
``repro_queue_lease_expiries_total``        counter    queue: expired leases observed at claim time
``repro_queue_unit_seconds``                histogram  worker: wall time per processed unit
``repro_queue_unit_cells_total{status=}``   counter    worker: executed/salvaged/cached cells
``serve_http_requests_total{route=}``       counter    serve (per-service registry)
``serve_http_request_seconds{route=}``      histogram  serve (per-service registry)
==========================================  =========  ==========================================
"""

from .analytics import (
    format_rollup,
    format_trace_diff,
    format_trace_top,
    load_traces,
    rollup,
    span_components,
    trace_diff,
    trace_top,
)
from .events import (
    EVENT_SCHEMA_VERSION,
    EventJournal,
    executed_cells,
    fleet_summary,
    format_event,
    format_fleet,
    sweep_timeline,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    disable_metrics,
    enable_metrics,
    get_registry,
    set_registry,
)
from .profile import engine_coverage, format_profile
from .trace import (
    RunTrace,
    TRACE_SCHEMA_VERSION,
    Tracer,
    current_tracer,
    deterministic_view,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "enable_metrics",
    "disable_metrics",
    "get_registry",
    "set_registry",
    "Tracer",
    "RunTrace",
    "TRACE_SCHEMA_VERSION",
    "current_tracer",
    "use_tracer",
    "deterministic_view",
    "format_profile",
    "engine_coverage",
    "EventJournal",
    "EVENT_SCHEMA_VERSION",
    "executed_cells",
    "fleet_summary",
    "format_event",
    "format_fleet",
    "sweep_timeline",
    "load_traces",
    "rollup",
    "format_rollup",
    "span_components",
    "trace_diff",
    "format_trace_diff",
    "trace_top",
    "format_trace_top",
]
