"""The durable fleet event journal: what happened, when, and by whom.

A journal is a directory of append-only JSONL shards, one per *writer*
(a dispatcher, a worker, the serve tier), plus a latest-heartbeat file per
worker for O(1) liveness reads::

    journal/
    ├── events--<writer>.jsonl     # this writer's events, appended atomically
    └── heartbeats/<worker>.json   # most recent heartbeat, atomic-replaced

The multi-writer discipline is FileStore's: every event is **one flushed
line** appended to the writer's *own* shard, so concurrent processes never
interleave bytes within a file and a single-line append is atomic for any
realistic event size.  A process killed mid-append loses at most its
in-flight line — readers drop an unterminated tail and count (rather than
choke on) malformed interior lines, because the journal is observability:
it must never wedge the fleet it observes.

Every event carries the schema version, a wall-clock timestamp, its writer
and a per-writer sequence number, so a merged read has a total order
``(ts, writer, seq)`` that is stable under re-reads and the per-writer
``seq`` exposes gaps (a lost line) rather than hiding them.

The event vocabulary (``type`` values) emitted by the fabric:

=====================  ========================================================
type                   emitted when
=====================  ========================================================
``sweep.dispatch``     a dispatcher chunked a sweep into units
``unit.claim``         a lease was taken (``kind``: fresh / reclaim / steal)
``lease.expire``       a stealer observed an expired lease (names the victim)
``lease.renew``        a live worker extended its lease mid-unit
``unit.start``         a worker began executing a claimed unit
``cell.done``          one cell satisfied (``status``: executed/cached/salvaged)
``unit.done``          a unit's done marker was written
``unit.cancelled``     a unit was tombstoned via the cancel protocol
``worker.start``       a worker process entered its drain loop
``worker.heartbeat``   periodic liveness (pid, host, unit, cells done, metrics)
``worker.exit``        a worker left its drain loop (with totals)
``job.submit``         the serve tier accepted a sweep job
``job.cancel``         the serve tier cancelled a sweep job
=====================  ========================================================
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import socket
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..exceptions import ReproError

__all__ = [
    "EventJournal",
    "EVENT_SCHEMA_VERSION",
    "JOURNAL_DIR_NAME",
    "sweep_timeline",
    "executed_cells",
    "fleet_summary",
    "format_fleet",
    "format_event",
]

#: Version stamp carried by every journal event.
EVENT_SCHEMA_VERSION = 1

#: Conventional journal directory name inside a queue directory.
JOURNAL_DIR_NAME = "journal"

_HEARTBEAT_DIR = "heartbeats"
_SHARD_PREFIX = "events--"

#: Writer names become file-name components; same shape rule as FileStore.
_WRITER_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")


def _atomic_write_json(path: Path, payload: Mapping[str, Any]) -> None:
    tmp = path.with_suffix(path.suffix + f".tmp-{os.getpid()}")
    tmp.write_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    os.replace(tmp, path)


def _split_lines(text: str) -> List[str]:
    """Complete (newline-terminated) lines only: a torn tail is not data."""
    if not text:
        return []
    lines = text.split("\n")
    return lines[:-1]


class EventJournal:
    """Handle on a journal directory; append when a ``writer`` is named.

    Parameters
    ----------
    root:
        The journal directory (conventionally ``<queue>/journal``).
    writer:
        This process's shard namespace.  ``None`` opens the journal
        read-only — :meth:`append` then raises.  Writer names follow the
        FileStore rule (``[A-Za-z0-9][A-Za-z0-9._-]*``, no ``--``) because
        they become file-name components.
    create:
        Create the directory tree when missing (readers of a queue that
        never journalled see an empty journal either way).
    fsync:
        Force every append to stable storage; off by default for the same
        reason FileStore's is — the atomic line already bounds the damage.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        writer: Optional[str] = None,
        create: bool = False,
        fsync: bool = False,
    ) -> None:
        self.root = Path(root)
        if writer is not None and (not _WRITER_RE.match(writer) or "--" in writer):
            raise ReproError(
                f"invalid journal writer name {writer!r}: use letters, digits, "
                "'.', '_' or '-' (and no '--', the namespace separator)"
            )
        self.writer = writer
        self.fsync = fsync
        self.dropped = 0  # malformed lines skipped by the last read
        if create or writer is not None:
            (self.root / _HEARTBEAT_DIR).mkdir(parents=True, exist_ok=True)
        self._handle = None
        self._seq = None  # next per-writer sequence number, lazily initialised

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def heartbeat_root(self) -> Path:
        return self.root / _HEARTBEAT_DIR

    def shard_path(self, writer: str) -> Path:
        return self.root / f"{_SHARD_PREFIX}{writer}.jsonl"

    def shard_paths(self) -> List[Path]:
        """Every writer shard currently present, sorted by writer name."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob(f"{_SHARD_PREFIX}*.jsonl"))

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _ensure_open(self):
        if self.writer is None:
            raise ReproError("journal opened without a writer name is read-only")
        if self._handle is None:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.shard_path(self.writer)
            if self._seq is None:
                # A restarted writer continues its own numbering: seq picks up
                # after the last complete line of its previous life's shard.
                try:
                    self._seq = len(
                        _split_lines(path.read_text(encoding="utf-8"))
                    )
                except OSError:
                    self._seq = 0
            self._handle = path.open("a", encoding="utf-8")
        return self._handle

    def append(self, type: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the stamped event dict.

        The stamp — schema version, timestamp, writer, per-writer sequence
        number — wraps the caller's fields; a caller-supplied ``ts`` wins
        (tests inject deterministic clocks through it).
        """
        handle = self._ensure_open()
        event: Dict[str, Any] = {
            "schema": EVENT_SCHEMA_VERSION,
            "type": type,
            "ts": fields.pop("ts", None) or time.time(),
            "writer": self.writer,
            "seq": self._seq,
        }
        event.update(fields)
        line = json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        handle.write(line)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self._seq += 1
        return event

    def heartbeat(self, **fields: Any) -> Dict[str, Any]:
        """Record a ``worker.heartbeat``: journal line + latest-heartbeat file.

        The journal keeps the history; ``heartbeats/<writer>.json`` is the
        atomic-replaced *latest* snapshot, so fleet views read one small file
        per worker instead of scanning shards.
        """
        event = self.append("worker.heartbeat", **fields)
        self.heartbeat_root.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.heartbeat_root / f"{self.writer}.json", event)
        return event

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def events(
        self,
        *,
        type: Optional[str] = None,
        worker: Optional[str] = None,
        unit: Optional[str] = None,
        since: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Merged events of every shard, sorted by ``(ts, writer, seq)``.

        Filters are conjunctive; ``worker`` matches the event's ``worker``
        field when present, else its ``writer`` stamp (dispatch and serve
        events carry no worker).  Malformed interior lines are skipped and
        counted in :attr:`dropped` — the journal never raises on read.
        """
        merged: List[Dict[str, Any]] = []
        dropped = 0
        for path in self.shard_paths():
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in _split_lines(text):
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    dropped += 1
                    continue
                if not isinstance(event, dict) or "type" not in event:
                    dropped += 1
                    continue
                merged.append(event)
        self.dropped = dropped
        merged.sort(key=lambda e: (e.get("ts", 0.0), e.get("writer") or "", e.get("seq", 0)))
        if type is not None:
            merged = [e for e in merged if e.get("type") == type]
        if worker is not None:
            merged = [
                e for e in merged if (e.get("worker") or e.get("writer")) == worker
            ]
        if unit is not None:
            merged = [e for e in merged if e.get("unit") == unit]
        if since is not None:
            merged = [e for e in merged if float(e.get("ts", 0.0)) >= since]
        return merged

    def latest_heartbeats(self) -> Dict[str, Dict[str, Any]]:
        """``{worker: latest heartbeat event}`` from the heartbeat files."""
        beats: Dict[str, Dict[str, Any]] = {}
        if not self.heartbeat_root.exists():
            return beats
        for path in sorted(self.heartbeat_root.glob("*.json")):
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(data, dict):
                beats[path.stem] = data
        return beats

    def generation(self) -> str:
        """Cheap change fingerprint over the shard files (for ETags).

        Hashes every shard's ``(name, size, mtime_ns)`` — two reads return
        the same generation iff no shard grew in between, without reading
        any shard body.
        """
        hasher = hashlib.sha256()
        for path in self.shard_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            hasher.update(f"{path.name}:{stat.st_size}:{stat.st_mtime_ns};".encode())
        return hasher.hexdigest()[:16]


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------
def _event_list(journal: Union[EventJournal, Iterable[Mapping[str, Any]]]):
    if isinstance(journal, EventJournal):
        return journal.events()
    return list(journal)


def sweep_timeline(
    journal: Union[EventJournal, Iterable[Mapping[str, Any]]],
    unit_ids: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Reconstruct per-unit lifecycles from the journal.

    Returns ``{unit_id: entry}`` where each entry holds the unit's ordered
    ``claims`` (each with ``kind`` fresh/reclaim/steal), ``renews`` count,
    ``expires`` (observed lease expiries, naming victims), per-key ``cells``
    (the last ``cell.done`` event per key), and the terminal ``done`` /
    ``cancelled`` event when one landed.  Restricting to ``unit_ids`` scopes
    the view to one dispatch on a shared queue directory.
    """
    wanted = None if unit_ids is None else set(unit_ids)
    timeline: Dict[str, Dict[str, Any]] = {}

    def entry(uid: str) -> Dict[str, Any]:
        if uid not in timeline:
            timeline[uid] = {
                "claims": [],
                "renews": 0,
                "expires": [],
                "cells": {},
                "done": None,
                "cancelled": False,
            }
        return timeline[uid]

    for event in _event_list(journal):
        uid = event.get("unit")
        if uid is None or (wanted is not None and uid not in wanted):
            continue
        kind = event.get("type")
        if kind == "unit.claim":
            entry(uid)["claims"].append(event)
        elif kind == "lease.renew":
            entry(uid)["renews"] += 1
        elif kind == "lease.expire":
            entry(uid)["expires"].append(event)
        elif kind == "cell.done":
            key = event.get("key")
            if key is not None:
                entry(uid)["cells"][key] = event
        elif kind == "unit.done":
            entry(uid)["done"] = event
        elif kind == "unit.cancelled":
            record = entry(uid)
            record["done"] = event
            record["cancelled"] = True
    return timeline


def executed_cells(
    journal: Union[EventJournal, Iterable[Mapping[str, Any]]],
    *,
    statuses: Sequence[str] = ("executed",),
) -> Dict[str, Dict[str, Any]]:
    """``{cell key: last cell.done event}`` restricted to ``statuses``.

    With the default this is the journal's answer to *which cells did the
    fleet actually compute* — cross-checkable against done markers and the
    union of worker-shard store keys.
    """
    allowed = set(statuses)
    cells: Dict[str, Dict[str, Any]] = {}
    for event in _event_list(journal):
        if event.get("type") != "cell.done":
            continue
        key = event.get("key")
        if key is not None and event.get("status") in allowed:
            cells[key] = event
    return cells


# ----------------------------------------------------------------------
# fleet view
# ----------------------------------------------------------------------
def fleet_summary(
    status: Mapping[str, Any],
    heartbeats: Mapping[str, Mapping[str, Any]],
    *,
    events: Optional[Iterable[Mapping[str, Any]]] = None,
    lease_ttl: Optional[float] = None,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """One structured snapshot of the fleet, from plain queue data.

    Duck-typed on purpose — ``status`` is :meth:`WorkQueue.status`'s dict,
    ``heartbeats`` is :meth:`EventJournal.latest_heartbeats`'s, ``events``
    an optional event list for throughput/ETA — so this module needs no
    import from :mod:`repro.distrib` (which imports :mod:`repro.obs`).

    Workers whose heartbeat is older than ``lease_ttl`` are flagged
    ``stale`` (the same threshold after which their leases become
    stealable).  Throughput is measured over the ``cell.done`` events and
    the ETA extrapolates it over the cells not yet accounted for.
    """
    now = time.time() if now is None else now
    workers = []
    for name in sorted(heartbeats):
        beat = heartbeats[name]
        age = max(0.0, now - float(beat.get("ts", 0.0)))
        entry: Dict[str, Any] = {
            "worker": name,
            "age": round(age, 3),
            "pid": beat.get("pid"),
            "host": beat.get("host"),
            "unit": beat.get("unit"),
            "cells_done": beat.get("cells_done"),
            "unit_total": beat.get("unit_total"),
            "phase": beat.get("phase"),
        }
        if lease_ttl is not None:
            entry["stale"] = age > lease_ttl
        workers.append(entry)

    cells_per_sec = None
    eta = None
    cell_seconds: List[float] = []
    if events is not None:
        done_ts = []
        for event in events:
            if event.get("type") != "cell.done":
                continue
            done_ts.append(float(event.get("ts", 0.0)))
            seconds = event.get("seconds")
            if isinstance(seconds, (int, float)):
                cell_seconds.append(float(seconds))
        if len(done_ts) >= 2:
            window = max(done_ts) - min(done_ts)
            if window > 0:
                cells_per_sec = round((len(done_ts) - 1) / window, 3)
    total_cells = int(status.get("cells", 0))
    accounted = sum(int(status.get(k, 0)) for k in ("executed", "salvaged", "cached"))
    remaining = max(0, total_cells - accounted)
    live = [w for w in workers if not w.get("stale")]
    if remaining and cell_seconds and live:
        mean_cell = sum(cell_seconds) / len(cell_seconds)
        eta = round(remaining * mean_cell / len(live), 3)
    elif remaining and cells_per_sec:
        eta = round(remaining / cells_per_sec, 3)

    return {
        "now": now,
        "queue": dict(status),
        "workers": workers,
        "live_workers": len(live),
        "stale_workers": len(workers) - len(live),
        "remaining_cells": remaining,
        "cells_per_sec": cells_per_sec,
        "eta_seconds": eta,
    }


def _format_age(age: Optional[float]) -> str:
    if age is None:
        return "-"
    if age < 120:
        return f"{age:.0f}s"
    if age < 7200:
        return f"{age / 60:.1f}m"
    return f"{age / 3600:.1f}h"


def format_fleet(summary: Mapping[str, Any]) -> str:
    """Render a :func:`fleet_summary` as the ``repro top`` screen."""
    queue = summary.get("queue", {})
    lines = [
        "units: {done}/{units} done  cells: {cells}  "
        "claimed: {claimed}  pending: {pending}  cancelled: {cancelled}".format(
            done=queue.get("done", 0),
            units=queue.get("units", 0),
            cells=queue.get("cells", 0),
            claimed=queue.get("claimed", 0),
            pending=queue.get("pending", 0),
            cancelled=queue.get("cancelled", 0),
        ),
        "executed: {executed}  salvaged: {salvaged}  cached: {cached}  "
        "steals: {steals}  expired: {expired}".format(
            executed=queue.get("executed", 0),
            salvaged=queue.get("salvaged", 0),
            cached=queue.get("cached", 0),
            steals=queue.get("steals", 0),
            expired=queue.get("expired", 0),
        ),
    ]
    rate = summary.get("cells_per_sec")
    eta = summary.get("eta_seconds")
    remaining = summary.get("remaining_cells", 0)
    tail = [f"remaining cells: {remaining}"]
    if rate is not None:
        tail.append(f"throughput: {rate} cells/sec")
    if eta is not None:
        tail.append(f"eta: {_format_age(eta)}")
    lines.append("  ".join(tail))
    lines.append("")

    workers = summary.get("workers", ())
    if not workers:
        lines.append("no worker heartbeats yet")
        return "\n".join(lines)
    headers = ("worker", "heartbeat", "unit", "progress", "state")
    rows = []
    for worker in workers:
        unit = worker.get("unit")
        done = worker.get("cells_done")
        total = worker.get("unit_total")
        progress = f"{done}/{total}" if done is not None and total else "-"
        state = "STALE" if worker.get("stale") else (worker.get("phase") or "live")
        rows.append(
            (
                str(worker.get("worker")),
                _format_age(worker.get("age")),
                (unit[:12] if isinstance(unit, str) else "-"),
                progress,
                state,
            )
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) for i in range(len(headers))
    ]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_event(event: Mapping[str, Any]) -> str:
    """One ``repro tail`` line: time, writer, type, and the salient fields."""
    ts = float(event.get("ts", 0.0))
    clock = time.strftime("%H:%M:%S", time.localtime(ts))
    parts = [clock, f"{event.get('writer', '?')}", f"{event.get('type', '?')}"]
    for field in ("unit", "key", "kind", "status", "worker", "stolen_from", "job"):
        value = event.get(field)
        if value is None or value == event.get("writer"):
            continue
        if isinstance(value, str) and len(value) > 16:
            value = value[:12] + "…"
        parts.append(f"{field}={value}")
    for field in ("cells", "cells_done", "executed", "salvaged", "cached", "seconds"):
        value = event.get(field)
        if value is not None:
            parts.append(f"{field}={value}")
    return "  ".join(parts)


def default_host() -> str:
    """Short hostname, the same shape worker ids embed."""
    return socket.gethostname().split(".", 1)[0] or "host"
