"""Cross-run trace analytics: rollups, outliers, and span-level diffs.

PR 7's tracer persists one ``RunTrace`` payload per traced run inside
``RunRecord.extra["trace"]``; this module is the layer that reads them *in
aggregate* across a store.  Three views:

* :func:`rollup` — span-time statistics grouped by record fields
  (problem / family / n by default), with outlier runs flagged;
* :func:`trace_top` — which spans dominate wall time across a whole store
  (the ``repro trace top`` table);
* :func:`trace_diff` — attribute the wall-time delta between two runs to
  named spans (the ``repro trace diff`` table), so a perfgate regression
  points at ``engine.apply.sweep``, not just at a number.

The diff works on *components*: the span hierarchy (known from
:mod:`repro.obs.profile`'s child-span constants, extended by the dotted
span-name convention) partitions the root span's seconds exactly — every
leaf span contributes its own time and every internal span contributes a
``(self)`` residual — so summing component deltas reproduces the total
delta and attribution is complete by construction.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .profile import APPLY_CHILD_SPANS, ENGINE_CHILD_SPANS

__all__ = [
    "trace_of",
    "load_traces",
    "span_parent",
    "span_components",
    "trace_diff",
    "format_trace_diff",
    "rollup",
    "format_rollup",
    "trace_top",
    "format_trace_top",
]

#: Default root span: the whole scenario.
ROOT_SPAN = "run"

#: Explicit parent edges of the known span hierarchy; unknown dotted names
#: fall back to their longest dot-prefix ancestor present in the trace.
SPAN_PARENTS: Dict[str, str] = {
    "engine.run": ROOT_SPAN,
    **{name: "engine.run" for name in ENGINE_CHILD_SPANS},
    **{name: "engine.apply" for name in APPLY_CHILD_SPANS},
}

#: A run whose root span exceeds ``threshold × group median`` is an outlier.
OUTLIER_THRESHOLD = 3.0


def trace_of(record: Any) -> Optional[Dict[str, Any]]:
    """The trace payload of a record, or ``None`` for untraced runs."""
    trace = record.extra_dict.get("trace")
    return trace if isinstance(trace, Mapping) else None


def load_traces(store: Any, keys: Optional[Sequence[str]] = None) -> List[Tuple[str, Any, Dict[str, Any]]]:
    """``(key, record, trace)`` for every traced record of ``store``.

    ``keys=None`` scans the whole store; untraced records are skipped (a
    store typically mixes traced and untraced sweeps).
    """
    out: List[Tuple[str, Any, Dict[str, Any]]] = []
    for key in store.keys() if keys is None else keys:
        record = store.get(key)
        if record is None:
            continue
        trace = trace_of(record)
        if trace is not None:
            out.append((key, record, trace))
    return out


# ----------------------------------------------------------------------
# the span tree
# ----------------------------------------------------------------------
def span_parent(name: str, present: Iterable[str], root: str = ROOT_SPAN) -> Optional[str]:
    """The parent of span ``name`` within the spans ``present``.

    Explicit hierarchy first, then the dotted convention (the longest
    present proper dot-prefix), then the root for any other non-root span.
    Returns ``None`` for the root itself (or when the root is absent).
    """
    if name == root:
        return None
    names = set(present)
    explicit = SPAN_PARENTS.get(name)
    if explicit is not None and explicit in names:
        return explicit
    parts = name.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        prefix = ".".join(parts[:cut])
        if prefix in names and prefix != name:
            return prefix
    return root if root in names else None


def span_components(trace: Mapping[str, Any], root: str = ROOT_SPAN) -> Dict[str, float]:
    """Partition the root span's seconds across leaf spans and residuals.

    Every span reachable from ``root`` contributes: leaves their own
    seconds, internal spans a ``"<name> (self)"`` residual (their seconds
    minus their children's, clamped at zero so measurement jitter never
    produces negative components).  When the trace has no ``root`` span the
    top-level spans are treated as a forest under a virtual root.
    """
    spans = {
        name: float(span.get("seconds", 0.0))
        for name, span in trace.get("spans", {}).items()
    }
    if not spans:
        return {}
    children: Dict[Optional[str], List[str]] = {}
    for name in spans:
        children.setdefault(span_parent(name, spans, root), []).append(name)

    components: Dict[str, float] = {}

    def visit(name: str) -> None:
        kids = children.get(name, [])
        if not kids:
            components[name] = spans[name]
            return
        for kid in kids:
            visit(kid)
        residual = spans[name] - sum(spans[kid] for kid in kids)
        components[f"{name} (self)"] = max(0.0, residual)

    if root in spans:
        visit(root)
    else:
        for top in children.get(None, []) + children.get(root, []):
            visit(top)
    return components


def _root_seconds(trace: Mapping[str, Any], root: str) -> float:
    spans = trace.get("spans", {})
    if root in spans:
        return float(spans[root].get("seconds", 0.0))
    return sum(float(span.get("seconds", 0.0)) for span in spans.values())


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def trace_diff(
    trace_a: Mapping[str, Any],
    trace_b: Mapping[str, Any],
    root: str = ROOT_SPAN,
) -> Dict[str, Any]:
    """Attribute the wall-time delta between two traces to span components.

    Returns ``{"root", "seconds_a", "seconds_b", "delta", "attributed",
    "attribution", "components": [...]}`` — components carry each span's
    seconds on both sides and its (signed) share of the delta, sorted by
    absolute delta descending.  ``attribution`` is the fraction of the
    total delta the named components account for; because components
    partition the root on both sides it sits at ~1.0 apart from the
    clamping of negative residuals.
    """
    comp_a = span_components(trace_a, root)
    comp_b = span_components(trace_b, root)
    names = sorted(set(comp_a) | set(comp_b))
    total_a = _root_seconds(trace_a, root)
    total_b = _root_seconds(trace_b, root)
    delta = total_b - total_a
    components = []
    for name in names:
        a = comp_a.get(name, 0.0)
        b = comp_b.get(name, 0.0)
        components.append(
            {
                "span": name,
                "seconds_a": a,
                "seconds_b": b,
                "delta": b - a,
                "share": (b - a) / delta if delta else 0.0,
            }
        )
    components.sort(key=lambda row: (-abs(row["delta"]), row["span"]))
    attributed = sum(row["delta"] for row in components)
    return {
        "root": root,
        "seconds_a": total_a,
        "seconds_b": total_b,
        "delta": delta,
        "attributed": attributed,
        "attribution": (attributed / delta) if delta else 1.0,
        "components": components,
    }


def format_trace_diff(diff: Mapping[str, Any], *, limit: Optional[int] = None) -> str:
    """Aligned ``repro trace diff`` table."""
    rows = list(diff["components"])
    if limit is not None:
        rows = rows[:limit]
    table = [
        (
            row["span"],
            f"{row['seconds_a']:.6f}",
            f"{row['seconds_b']:.6f}",
            f"{row['delta']:+.6f}",
            f"{100.0 * row['share']:+6.1f}%" if diff["delta"] else "     -",
        )
        for row in rows
    ]
    headers = ("span", "a", "b", "delta", "% of delta")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in table)) if table else len(headers[i])
        for i in range(5)
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    lines.append("")
    lines.append(
        f"{diff['root']}: {diff['seconds_a']:.6f}s -> {diff['seconds_b']:.6f}s  "
        f"(delta {diff['delta']:+.6f}s, {100.0 * diff['attribution']:.1f}% "
        "attributed to spans above)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# rollups
# ----------------------------------------------------------------------
def _group_value(record: Any, name: str) -> Any:
    try:
        return getattr(record, name)
    except AttributeError:
        return record.extra_dict.get(name)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def rollup(
    traced: Iterable[Tuple[str, Any, Mapping[str, Any]]],
    *,
    group_by: Sequence[str] = ("problem", "family", "n"),
    root: str = ROOT_SPAN,
    outlier_threshold: float = OUTLIER_THRESHOLD,
) -> List[Dict[str, Any]]:
    """Span-time statistics per record group, outliers flagged.

    ``traced`` is :func:`load_traces` output.  Each returned row carries the
    group values, run count, mean/max root seconds, per-span mean seconds
    with their share of the root, total ``events_dropped``, and the keys of
    outlier runs (root seconds beyond ``outlier_threshold ×`` the group
    median — median-based so one slow machine does not mask itself).
    """
    groups: Dict[Tuple, List[Tuple[str, Any, Mapping[str, Any]]]] = {}
    for item in traced:
        group = tuple(_group_value(item[1], name) for name in group_by)
        groups.setdefault(group, []).append(item)

    rows: List[Dict[str, Any]] = []
    for group in sorted(groups, key=lambda g: tuple(str(v) for v in g)):
        items = groups[group]
        roots = [_root_seconds(trace, root) for _key, _record, trace in items]
        median = _median(roots)
        outliers = [
            key
            for (key, _record, trace), seconds in zip(items, roots)
            if median > 0 and seconds > outlier_threshold * median
        ]
        span_totals: Dict[str, float] = {}
        dropped = 0
        for _key, _record, trace in items:
            for name, span in trace.get("spans", {}).items():
                span_totals[name] = span_totals.get(name, 0.0) + float(
                    span.get("seconds", 0.0)
                )
            dropped += int(trace.get("events_dropped", 0))
        total_root = sum(roots)
        rows.append(
            {
                "group": dict(zip(group_by, group)),
                "runs": len(items),
                "seconds_mean": total_root / len(items) if items else 0.0,
                "seconds_max": max(roots, default=0.0),
                "spans": {
                    name: {
                        "seconds_mean": seconds / len(items),
                        "share": (seconds / total_root) if total_root else 0.0,
                    }
                    for name, seconds in sorted(span_totals.items())
                },
                "events_dropped": dropped,
                "outliers": outliers,
            }
        )
    return rows


def format_rollup(rows: Sequence[Mapping[str, Any]]) -> str:
    """Compact rollup table: one line per group, top span named."""
    table = []
    for row in rows:
        group = row["group"]
        label = " ".join(f"{k}={v}" for k, v in group.items())
        spans = row.get("spans", {})
        top = max(spans, key=lambda n: spans[n]["seconds_mean"], default="-")
        flags = []
        if row.get("outliers"):
            flags.append(f"{len(row['outliers'])} outlier(s)")
        if row.get("events_dropped"):
            flags.append(f"{row['events_dropped']} events dropped")
        table.append(
            (
                label,
                str(row["runs"]),
                f"{row['seconds_mean']:.6f}",
                f"{row['seconds_max']:.6f}",
                top,
                ", ".join(flags) if flags else "-",
            )
        )
    headers = ("group", "runs", "mean s", "max s", "top span", "flags")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in table)) if table else len(headers[i])
        for i in range(6)
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# trace top
# ----------------------------------------------------------------------
def trace_top(
    traced: Iterable[Tuple[str, Any, Mapping[str, Any]]],
    *,
    root: str = ROOT_SPAN,
    limit: int = 15,
) -> Dict[str, Any]:
    """Which span components dominate wall time across many traced runs.

    Aggregates :func:`span_components` over every trace, so times partition
    the total rather than double-counting parents and children.
    """
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    runs = 0
    grand = 0.0
    for _key, _record, trace in traced:
        runs += 1
        grand += _root_seconds(trace, root)
        for name, seconds in span_components(trace, root).items():
            totals[name] = totals.get(name, 0.0) + seconds
            counts[name] = counts.get(name, 0) + 1
    ordered = sorted(totals.items(), key=lambda item: (-item[1], item[0]))[:limit]
    return {
        "runs": runs,
        "total_seconds": grand,
        "spans": [
            {
                "span": name,
                "seconds": seconds,
                "runs": counts[name],
                "share": (seconds / grand) if grand else 0.0,
            }
            for name, seconds in ordered
        ],
    }


def format_trace_top(top: Mapping[str, Any]) -> str:
    """Aligned ``repro trace top`` table."""
    table = [
        (
            row["span"],
            str(row["runs"]),
            f"{row['seconds']:.6f}",
            f"{100.0 * row['share']:5.1f}%",
        )
        for row in top["spans"]
    ]
    headers = ("span", "runs", "seconds", "% of total")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in table)) if table else len(headers[i])
        for i in range(4)
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    lines.append("")
    lines.append(
        f"{top['runs']} traced run(s), {top['total_seconds']:.6f}s total wall time"
    )
    return "\n".join(lines)
