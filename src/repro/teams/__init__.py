"""Multi-agent applications of the rendezvous algorithm (§4).

Public API
----------
* :class:`~repro.teams.sgl.SGLController` — one agent of Algorithm SGL.
* :func:`~repro.teams.problems.run_sgl` — run Strong Global Learning for a team.
* :func:`~repro.teams.problems.solve_team_size`,
  :func:`~repro.teams.problems.solve_leader_election`,
  :func:`~repro.teams.problems.solve_perfect_renaming`,
  :func:`~repro.teams.problems.solve_gossiping` — the four derived problems.
* :class:`~repro.teams.bag.Bag`, the state constants of
  :mod:`repro.teams.states`.
"""

from .bag import Bag, BagSnapshot
from .states import ALL_STATES, EXPLORER, GHOST, TRAVELLER
from .sgl import SGLController
from .problems import (
    SGLOutcome,
    TeamMember,
    run_sgl,
    solve_gossiping,
    solve_leader_election,
    solve_perfect_renaming,
    solve_team_size,
)

__all__ = [
    "Bag",
    "BagSnapshot",
    "ALL_STATES",
    "EXPLORER",
    "GHOST",
    "TRAVELLER",
    "SGLController",
    "SGLOutcome",
    "TeamMember",
    "run_sgl",
    "solve_gossiping",
    "solve_leader_election",
    "solve_perfect_renaming",
    "solve_team_size",
]
