"""The four multi-agent problems solved through Algorithm SGL (§4).

Once every agent knows the set of labels of all participating agents — and
knows that it knows it — the four problems are immediate:

* **team size** — output the cardinality of the label set;
* **leader election** — output the smallest label;
* **perfect renaming** — adopt the rank of one's own label in the sorted
  label set (a bijection onto ``{1, ..., k}``);
* **gossiping** — output the mapping from labels to initial values (values
  travel inside the bags next to the labels).

The cost of each solution is the total number of edge traversals by all
agents until all of them have produced their output, which is exactly what
the engine's ``output_cost`` measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import LabelError, SimulationError
from ..exploration.cost_model import CostModel, default_cost_model
from ..graphs.port_graph import PortLabeledGraph
from ..sim.engine import AgentSpec, AsyncEngine
from ..sim.results import RunResult
from ..sim.schedulers import RoundRobinScheduler, Scheduler
from .sgl import SGLController

__all__ = [
    "TeamMember",
    "SGLOutcome",
    "run_sgl",
    "solve_team_size",
    "solve_leader_election",
    "solve_perfect_renaming",
    "solve_gossiping",
]


@dataclass(frozen=True)
class TeamMember:
    """One agent of the team: its label, start node, optional value and wake mode."""

    label: int
    start_node: int
    value: Any = None
    dormant: bool = False


@dataclass
class SGLOutcome:
    """Result of one run of Algorithm SGL for a whole team.

    Attributes
    ----------
    result:
        The raw engine result (cost, meetings, per-agent traversals).
    label_sets:
        For each agent label, the set of labels it output (as a sorted tuple).
    value_maps:
        For each agent label, the ``label -> value`` mapping it output.
    expected_labels:
        The true set of labels, for convenience.
    """

    result: RunResult
    label_sets: Dict[int, Tuple[int, ...]]
    value_maps: Dict[int, Dict[int, Any]]
    expected_labels: Tuple[int, ...]

    @property
    def all_output(self) -> bool:
        """Whether every agent produced an output."""
        return len(self.label_sets) == len(self.expected_labels)

    @property
    def correct(self) -> bool:
        """Whether every agent output exactly the true set of labels."""
        return self.all_output and all(
            labels == self.expected_labels for labels in self.label_sets.values()
        )

    @property
    def cost(self) -> int:
        """Total edge traversals until the last agent output (the §4 cost measure)."""
        return self.result.cost()


def _agent_name(label: int) -> str:
    return f"sgl-{label}"


def run_sgl(
    graph: PortLabeledGraph,
    members: Iterable[TeamMember],
    scheduler: Optional[Scheduler] = None,
    model: Optional[CostModel] = None,
    max_traversals: int = 5_000_000,
    on_cost_limit: str = "raise",
) -> SGLOutcome:
    """Run Algorithm SGL for a team of agents and collect every agent's output.

    Agents must have pairwise distinct labels and pairwise distinct start
    nodes, and the team must contain at least two agents (the paper's
    footnote: a single agent can never become aware that it is alone).
    """
    members = list(members)
    if len(members) < 2:
        raise LabelError("Algorithm SGL needs a team of at least two agents")
    labels = [member.label for member in members]
    if len(set(labels)) != len(labels):
        raise LabelError("team members must have pairwise distinct labels")
    starts = [member.start_node for member in members]
    if len(set(starts)) != len(starts):
        raise SimulationError("team members must start at pairwise distinct nodes")
    model = model if model is not None else default_cost_model()

    controllers = {
        member.label: SGLController(
            _agent_name(member.label), member.label, model=model, value=member.value
        )
        for member in members
    }
    specs = [
        AgentSpec(controllers[member.label], member.start_node, dormant=member.dormant)
        for member in members
    ]
    engine = AsyncEngine(
        graph,
        specs,
        scheduler if scheduler is not None else RoundRobinScheduler(),
        stop_when_all_output=True,
        max_traversals=max_traversals,
        on_cost_limit=on_cost_limit,
    )
    result = engine.run()

    label_sets: Dict[int, Tuple[int, ...]] = {}
    value_maps: Dict[int, Dict[int, Any]] = {}
    for label, controller in controllers.items():
        if controller.output is None:
            continue
        snapshot = tuple(sorted(controller.output))
        label_sets[label] = tuple(entry[0] for entry in snapshot)
        value_maps[label] = {entry[0]: entry[1] for entry in snapshot}
    return SGLOutcome(
        result=result,
        label_sets=label_sets,
        value_maps=value_maps,
        expected_labels=tuple(sorted(labels)),
    )


def solve_team_size(
    graph: PortLabeledGraph,
    members: Iterable[TeamMember],
    **kwargs,
) -> Tuple[Dict[int, int], SGLOutcome]:
    """Every agent outputs the total number of agents in the team."""
    outcome = run_sgl(graph, members, **kwargs)
    answers = {label: len(labels) for label, labels in outcome.label_sets.items()}
    return answers, outcome


def solve_leader_election(
    graph: PortLabeledGraph,
    members: Iterable[TeamMember],
    **kwargs,
) -> Tuple[Dict[int, int], SGLOutcome]:
    """Every agent outputs the label of the leader (the smallest label)."""
    outcome = run_sgl(graph, members, **kwargs)
    answers = {label: min(labels) for label, labels in outcome.label_sets.items()}
    return answers, outcome


def solve_perfect_renaming(
    graph: PortLabeledGraph,
    members: Iterable[TeamMember],
    **kwargs,
) -> Tuple[Dict[int, int], SGLOutcome]:
    """Every agent adopts a new label from ``{1, ..., k}``: the rank of its label."""
    outcome = run_sgl(graph, members, **kwargs)
    answers = {
        label: sorted(labels).index(label) + 1
        for label, labels in outcome.label_sets.items()
    }
    return answers, outcome


def solve_gossiping(
    graph: PortLabeledGraph,
    members: Iterable[TeamMember],
    **kwargs,
) -> Tuple[Dict[int, Dict[int, Any]], SGLOutcome]:
    """Every agent outputs the mapping from every label to that agent's value."""
    outcome = run_sgl(graph, members, **kwargs)
    return dict(outcome.value_maps), outcome
