"""Algorithm SGL — Strong Global Learning (§4).

Every agent has to learn the labels of *all* participating agents and to be
aware that it has done so.  Solving SGL immediately solves team size, leader
election, perfect renaming and gossiping (see :mod:`repro.teams.problems`).

The algorithm, as implemented by :class:`SGLController`:

* an agent wakes up in state **traveller** and executes Algorithm
  RV-asynch-poly until a meeting sends it to state **ghost** (someone has
  heard of a label smaller than its own) or to state **explorer** (it met a
  non-explorer and no smaller label was heard of); in the latter case the
  smallest-labelled non-explorer it met becomes its **token** and transits to
  state ghost;
* an **explorer** runs Procedure ESST with its token (Phase 1), learns a size
  bound ``E`` (the final ESST phase index, which exceeds the true size ``n``),
  backtracks, resumes RV-asynch-poly from where it was interrupted until it
  has performed the rendezvous budget of edge traversals or hears of a smaller
  label (Phase 2), and finally (Phase 3) either seeks its token — becoming a
  ghost or outputting — or, when it still knows of no smaller label (only the
  minimum-label agent ends up here), performs one full exploration to collect
  every ghost's bag, declares its bag complete, and performs the reverse
  exploration to spread that fact before outputting;
* a **ghost** stops at the end of its current edge and outputs as soon as a
  meeting tells it that its bag is complete.

Deviations from the paper (all documented in DESIGN.md §2): the Phase-2
budget ``Π(E(n), |L|)`` is replaced by the pluggable, calibrated budget of the
cost model, the size bound uses the ESST phase index rather than the ESST
cost, and agents react to a meeting at the next node they reach (at most one
extra edge traversal) rather than instantaneously.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..exceptions import LabelError
from ..exploration.cost_model import CostModel, default_cost_model
from ..exploration.esst import TokenTracker, esst_procedure
from ..exploration.uxs import next_port
from ..exploration.walker import Tape, backtrack, step
from ..core.labels import label_length, validate_label
from ..core.rendezvous import rv_route
from ..sim.actions import MeetingEvent, Observation
from ..sim.agent import AgentController, AgentProgram
from .bag import Bag
from .states import EXPLORER, GHOST, TRAVELLER

__all__ = ["SGLController"]


class SGLController(AgentController):
    """One agent of Algorithm SGL.

    Parameters
    ----------
    name:
        Engine-level agent name (unique per simulation).
    label:
        The agent's label (strictly positive integer, unique in the team).
    model:
        Cost model; defaults to :func:`default_cost_model`.
    value:
        Optional initial value carried by the agent (used by the gossiping
        application); it travels inside the bag next to the label.
    """

    def __init__(
        self,
        name: str,
        label: int,
        model: Optional[CostModel] = None,
        value: Any = None,
    ) -> None:
        super().__init__(name, validate_label(label))
        self._model = model if model is not None else default_cost_model()
        self._value = value
        self.bag = Bag({label: value})
        self.state = TRAVELLER

        # --- flags shared between the meeting hook and the program ---------
        self._pending_transition: Optional[str] = None
        self._token_label: Optional[int] = None
        self._token_tracker: Optional[TokenTracker] = None
        self._token_has_output = False
        self._flagged = False  # someone told us the complete set of labels
        self._bag_complete = False
        #: Per-peer memo of the last meeting: ``name -> (agent snapshot,
        #: is-our-token, token-had-output, bag snapshot)``.  The engine
        #: shares one :class:`AgentSnapshot` object across meetings while a
        #: peer's public state is unchanged, so an *identical* snapshot means
        #: the whole exchange with that peer is a repeat — only the token
        #: sighting (a count, not a state) needs recording.  Bag snapshots
        #: are likewise identity-stable, so a changed snapshot with an
        #: unchanged bag still skips the (idempotent) merge.
        self._peer_seen: Dict[str, Tuple[Any, bool, bool, Any]] = {}

        self.public.update(
            {
                "label": label,
                "state": self.state,
                "bag": self.bag.snapshot(),
                "bag_complete": False,
                "has_output": False,
            }
        )
        #: Bumped on every observable change of :attr:`public`; the engine
        #: uses it to share meeting snapshots across meetings (see
        #: ``AsyncEngine._emit_meeting``).
        self.public_version = 0

    # ------------------------------------------------------------------
    # public-state bookkeeping
    # ------------------------------------------------------------------
    @property
    def model(self) -> CostModel:
        """The cost model this agent runs under."""
        return self._model

    @property
    def token_label(self) -> Optional[int]:
        """Label of the agent used as this explorer's token (if any)."""
        return self._token_label

    def _sync_public(self) -> None:
        # Change detection is by identity: states are module constants, bag
        # snapshots are cached tuples whose identity changes exactly when the
        # bag does, and the flags are bools.  The version therefore bumps iff
        # an observable field actually changed, which is what lets the engine
        # reuse meeting snapshots.
        public = self.public
        changed = False
        if public["state"] is not self.state:
            public["state"] = self.state
            changed = True
        snap = self.bag.snapshot()
        if public["bag"] is not snap:
            public["bag"] = snap
            changed = True
        if public["bag_complete"] is not self._bag_complete:
            public["bag_complete"] = self._bag_complete
            changed = True
        has_output = self.output is not None
        if public["has_output"] is not has_output:
            public["has_output"] = has_output
            changed = True
        if changed:
            self.public_version += 1

    def _set_state(self, state: str) -> None:
        self.state = state
        self._sync_public()

    def _produce_output(self) -> None:
        if self.output is None:
            self.output = self.bag.snapshot()
            self._sync_public()

    def _declare_bag_complete(self) -> None:
        self._bag_complete = True
        self._flagged = True
        self._sync_public()

    # ------------------------------------------------------------------
    # meeting hook (information exchange of §4)
    # ------------------------------------------------------------------
    def on_meeting(self, event: MeetingEvent) -> None:
        participants = event.participants
        if len(participants) < 2:
            return
        name = self._name
        bag = self.bag
        peer_seen = self._peer_seen
        grew = False
        token_seen = False
        token_out = False
        # 1+2 fused: merge every other participant's bag, pick up the
        # completeness flag, and spot the token.  A peer whose snapshot is
        # *identical* to the one from our previous meeting with it has an
        # unchanged public state, so the whole exchange is a repeat — only
        # the token sighting (a count, not a state) recurs.
        for snap in participants:
            peer_name = snap.name
            if peer_name == name:
                continue
            cached = peer_seen.get(peer_name)
            if cached is not None and cached[0] is snap:
                if cached[1]:
                    token_seen = True
                    if cached[2]:
                        token_out = True
                continue
            public = snap.public
            peer_bag = public.get("bag", ())
            if cached is None or cached[3] is not peer_bag:
                if bag.merge(peer_bag):
                    grew = True
            if public.get("bag_complete"):
                self._flagged = True
            is_token = (
                self._token_label is not None
                and public.get("label") == self._token_label
            )
            token_done = False
            if is_token:
                token_seen = True
                if public.get("has_output") or public.get("bag_complete"):
                    token_out = True
                    token_done = True
            peer_seen[peer_name] = (snap, is_token, token_done, peer_bag)
        if token_seen:
            tracker = self._token_tracker
            if tracker is not None:
                # record_sighting, inlined: explorers re-sight the token at
                # nearly every meeting of the verification walks.
                tracker.sightings += 1
                tracker.last_was_at_node = event.node is not None
                if token_out:
                    self._token_has_output = True

        # 3. traveller transition rules (applied once, at the first qualifying
        #    meeting; the program acts on them at the next node it reaches).
        state = self.state
        if state == TRAVELLER and self._pending_transition is None:
            # "Heard of a smaller label" is a post-merge bag query: while an
            # agent is a traveller with no pending transition its own bag
            # minimum is still its own label (any earlier meeting that merged
            # a smaller label would have scheduled the ghost transition right
            # there), so after step 1 the minimum dips below ``self.label``
            # exactly when some other participant's bag held a smaller label.
            heard_smaller = bag.min_label() < self.label
            if heard_smaller:
                self._pending_transition = GHOST
            else:
                non_explorers = [
                    snap
                    for snap in participants
                    if snap.name != name
                    and snap.public.get("state") in (TRAVELLER, GHOST)
                ]
                if non_explorers:
                    self._pending_transition = EXPLORER
                    token = min(
                        non_explorers, key=lambda snap: snap.public.get("label")
                    )
                    self._token_label = token.public.get("label")
                    self._token_tracker = TokenTracker()
                    # The memo's is-token flags were computed before the
                    # token existed; drop them so the next meeting with each
                    # peer re-evaluates.
                    self._peer_seen.clear()

        # 4. a ghost (or any agent that has already stopped) outputs as soon
        #    as it has been told its bag is complete.
        if self._flagged and state == GHOST:
            self._produce_output()
        # ``on_meeting`` changes the public state only through bag growth or
        # a fresh output (which syncs itself); anything else needs no sync.
        if grew:
            self._sync_public()

    # ------------------------------------------------------------------
    # the agent program
    # ------------------------------------------------------------------
    def start(self, observation: Observation) -> AgentProgram:
        return self._program(observation)

    def _program(self, obs: Observation) -> AgentProgram:
        model = self._model
        # A dormant agent woken by a visit may already owe a transition.
        if self._pending_transition == GHOST:
            self._become_ghost()
            return

        # ----------------------------- traveller -------------------------
        rv_tape = Tape()
        rv_gen = rv_route(self.label, model, obs, rv_tape)
        rv_started = False
        rv_traversals = 0
        saved_obs = obs
        if self._pending_transition != EXPLORER:
            rv_action = next(rv_gen)
            rv_started = True
            rv_send = rv_gen.send
            while True:
                obs = yield rv_action
                rv_traversals += 1
                transition = self._pending_transition
                if transition is not None:
                    if transition == GHOST:
                        self._become_ghost()
                        return
                    saved_obs = obs  # transition == EXPLORER
                    break
                rv_action = rv_send(obs)
        else:
            saved_obs = obs

        # ----------------------------- explorer --------------------------
        self._set_state(EXPLORER)
        assert self._token_tracker is not None

        # Phase 1: ESST with the token; the final phase index bounds the size.
        esst_tape = Tape()
        obs, size_bound = yield from esst_procedure(
            model, esst_tape, saved_obs, self._token_tracker
        )

        # Phase 2: backtrack the whole Phase-1 walk, then resume RV-asynch-poly
        # until the rendezvous budget is reached or a smaller label is heard of.
        obs = yield from backtrack(esst_tape, 0, obs)
        budget = model.rendezvous_budget(size_bound, label_length(self.label))
        pending_obs = saved_obs
        while rv_traversals < budget and self.bag.min_label() >= self.label:
            if rv_started:
                rv_action = rv_gen.send(pending_obs)
            else:
                # The agent became an explorer before ever travelling (a
                # dormant agent woken in place): the just-started generator
                # must be primed — it already holds its initial observation.
                rv_action = next(rv_gen)
                rv_started = True
            pending_obs = yield rv_action
            rv_traversals += 1
        obs = pending_obs

        # Phase 3.
        if self.bag.min_label() < self.label:
            obs = yield from self._seek_token(size_bound, obs)
            if self._token_has_output or self._flagged:
                self._produce_output()
                self._become_ghost()
            else:
                self._become_ghost()
            return

        # Only the minimum-label agent is supposed to reach this point: one
        # full exploration collects every ghost's bag, the reverse exploration
        # spreads the completeness information.
        phase3_tape = Tape()
        mark = phase3_tape.mark()
        entry: Optional[int] = None
        for increment in model.uxs_terms(size_bound):
            port = next_port(entry, increment, obs.degree)
            obs = yield from step(phase3_tape, port)
            entry = obs.entry_port
        if self.bag.min_label() < self.label:
            # Defensive deviation (impossible in the paper's setting): the
            # forward pass revealed a smaller label after all, so this agent
            # is not the minimum and must not declare completeness.
            self._become_ghost()
            return
        self._declare_bag_complete()
        obs = yield from backtrack(phase3_tape, mark, obs)
        self._produce_output()
        self._set_state(GHOST)
        return

    # ------------------------------------------------------------------
    # helpers used by the program
    # ------------------------------------------------------------------
    def _become_ghost(self) -> None:
        self._set_state(GHOST)
        if self._flagged:
            self._produce_output()

    def _seek_token(self, size_bound: int, obs: Observation):
        """Phase 3 of a non-minimum explorer: walk ``R(E, s)`` until the token is met.

        If one pass of ``R(E, s)`` does not meet the token (which cannot
        happen when the exploration sequence for ``E`` is integral), the walk
        is repeated after backtracking, so the procedure cannot silently fail.
        """
        assert self._token_tracker is not None
        tape = Tape()
        sightings_before = self._token_tracker.sightings
        while self._token_tracker.sightings == sightings_before:
            mark = tape.mark()
            entry: Optional[int] = None
            for increment in self._model.uxs_terms(size_bound):
                port = next_port(entry, increment, obs.degree)
                obs = yield from step(tape, port)
                entry = obs.entry_port
                if self._token_tracker.sightings > sightings_before:
                    break
            if self._token_tracker.sightings == sightings_before:
                obs = yield from backtrack(tape, mark, obs)
        return obs
