"""The three states of Algorithm SGL (§4): traveller, explorer and ghost.

* A **traveller** executes Algorithm RV-asynch-poly until its first meeting
  with agents that are not (all) explorers, or with agents that have heard of
  a label smaller than its own.
* An **explorer** has met a non-explorer; it uses that agent as the token of
  Procedure ESST to learn a bound on the size of the graph (Phase 1), resumes
  RV-asynch-poly up to a budget of edge traversals (Phase 2), and finally
  either seeks its token or performs the closing double exploration
  (Phase 3).
* A **ghost** stops at the end of its current edge and never moves again; it
  keeps exchanging information at meetings and outputs as soon as it is told
  that its bag contains every label.
"""

from __future__ import annotations

__all__ = ["TRAVELLER", "EXPLORER", "GHOST", "ALL_STATES"]

TRAVELLER = "traveller"
EXPLORER = "explorer"
GHOST = "ghost"

#: All valid SGL states, in the order they are typically entered.
ALL_STATES = (TRAVELLER, EXPLORER, GHOST)
