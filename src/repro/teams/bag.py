"""Bags: the per-agent sets of labels (and values) heard of so far.

Every agent of Algorithm SGL carries a *bag* ``W`` initialised to its own
label; at every meeting it replaces ``W`` by the union of the bags of all
participants.  Bags only ever grow, which is what bounds the number of bag
updates in the paper's cost analysis.

For the gossiping application each label is accompanied by the initial value
of the corresponding agent, so a bag is represented as a mapping
``label -> value`` (``None`` when the agent carries no value).  The public
snapshot shared at meetings is an immutable tuple of ``(label, value)`` pairs
sorted by label.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from ..exceptions import LabelError

__all__ = ["Bag", "BagSnapshot"]

#: The immutable form of a bag that travels inside meeting snapshots.
BagSnapshot = Tuple[Tuple[int, Any], ...]


class Bag:
    """A monotonically growing set of ``label -> value`` facts."""

    __slots__ = ("_entries",)

    def __init__(self, initial: Optional[Dict[int, Any]] = None) -> None:
        self._entries: Dict[int, Any] = {}
        if initial:
            for label, value in initial.items():
                self.add(label, value)

    # ------------------------------------------------------------------
    def add(self, label: int, value: Any = None) -> None:
        """Add one fact.  A known label keeps its value unless it was ``None``."""
        if not isinstance(label, int) or isinstance(label, bool) or label < 1:
            raise LabelError(f"bag labels must be strictly positive integers, got {label!r}")
        if label not in self._entries or self._entries[label] is None:
            self._entries[label] = value

    def merge(self, items: Iterable[Tuple[int, Any]]) -> bool:
        """Merge a snapshot (or any iterable of pairs); return whether the bag grew."""
        grew = False
        for label, value in items:
            known = label in self._entries and self._entries[label] is not None
            self.add(label, value)
            if not known and (label in self._entries):
                grew = True
        return grew

    # ------------------------------------------------------------------
    def labels(self) -> Tuple[int, ...]:
        """Return the labels heard of, in increasing order."""
        return tuple(sorted(self._entries))

    def values(self) -> Dict[int, Any]:
        """Return a copy of the ``label -> value`` mapping."""
        return dict(self._entries)

    def min_label(self) -> int:
        """Return the smallest label heard of (``Min(W)`` in the paper)."""
        return min(self._entries)

    def snapshot(self) -> BagSnapshot:
        """Return the immutable form shared at meetings."""
        return tuple(sorted(self._entries.items()))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, label: int) -> bool:
        return label in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bag({dict(sorted(self._entries.items()))!r})"
