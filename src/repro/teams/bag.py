"""Bags: the per-agent sets of labels (and values) heard of so far.

Every agent of Algorithm SGL carries a *bag* ``W`` initialised to its own
label; at every meeting it replaces ``W`` by the union of the bags of all
participants.  Bags only ever grow, which is what bounds the number of bag
updates in the paper's cost analysis.

For the gossiping application each label is accompanied by the initial value
of the corresponding agent, so a bag is represented as a mapping
``label -> value`` (``None`` when the agent carries no value).  The public
snapshot shared at meetings is an immutable tuple of ``(label, value)`` pairs
sorted by label.

Monotone growth makes two queries cacheable: the minimum label (labels are
never removed, so the minimum only ever decreases at an insertion) and the
public snapshot (rebuilt lazily after a mutation).  Both sit on the engine's
meeting path — every meeting snapshots every participant and every SGL
participant consults ``Min(W)`` — so the caches turn the per-meeting bag cost
from sort-the-bag to amortised O(1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from ..exceptions import LabelError

__all__ = ["Bag", "BagSnapshot"]

#: The immutable form of a bag that travels inside meeting snapshots.
BagSnapshot = Tuple[Tuple[int, Any], ...]

#: Sentinel distinguishing "label absent" from "label present with value None".
_MISSING = object()


class Bag:
    """A monotonically growing set of ``label -> value`` facts."""

    __slots__ = ("_entries", "_min", "_snapshot")

    def __init__(self, initial: Optional[Dict[int, Any]] = None) -> None:
        self._entries: Dict[int, Any] = {}
        self._min: Optional[int] = None
        self._snapshot: Optional[BagSnapshot] = None
        if initial:
            for label, value in initial.items():
                self.add(label, value)

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(label: Any) -> None:
        # Callers skip this for the fast path ``label.__class__ is int and
        # label >= 1``; everything else (including bools, which would
        # otherwise slip through ``label in entries`` as 0/1) lands here.
        if not isinstance(label, int) or isinstance(label, bool) or label < 1:
            raise LabelError(
                f"bag labels must be strictly positive integers, got {label!r}"
            )

    def add(self, label: int, value: Any = None) -> None:
        """Add one fact.  A known label keeps its value unless it was ``None``."""
        if label.__class__ is not int or label < 1:
            self._validate(label)
        entries = self._entries
        existing = entries.get(label, _MISSING)
        if existing is _MISSING or (existing is None and value is not None):
            entries[label] = value
            self._snapshot = None
            if self._min is None or label < self._min:
                self._min = label

    def merge(self, items: Iterable[Tuple[int, Any]]) -> bool:
        """Merge a snapshot (or any iterable of pairs); return whether the bag grew.

        "Grew" means the bag's content changed: some merged label was absent,
        or present only as a valueless placeholder and now carries a value.
        Re-merging a ``None`` value over a ``None`` placeholder is a no-op —
        in particular it keeps the cached snapshot (and its identity) intact,
        which is what lets a meeting hook skip already-seen peer bags.
        """
        grew = False
        entries = self._entries
        for label, value in items:
            if label.__class__ is not int or label < 1:
                self._validate(label)
            existing = entries.get(label, _MISSING)
            if existing is _MISSING or (existing is None and value is not None):
                entries[label] = value
                self._snapshot = None
                if self._min is None or label < self._min:
                    self._min = label
                grew = True
        return grew

    # ------------------------------------------------------------------
    def labels(self) -> Tuple[int, ...]:
        """Return the labels heard of, in increasing order."""
        return tuple(sorted(self._entries))

    def values(self) -> Dict[int, Any]:
        """Return a copy of the ``label -> value`` mapping."""
        return dict(self._entries)

    def min_label(self) -> int:
        """Return the smallest label heard of (``Min(W)`` in the paper)."""
        if self._min is None:
            return min(self._entries)
        return self._min

    def snapshot(self) -> BagSnapshot:
        """Return the immutable form shared at meetings."""
        cached = self._snapshot
        if cached is None:
            cached = self._snapshot = tuple(sorted(self._entries.items()))
        return cached

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, label: int) -> bool:
        return label in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bag({dict(sorted(self._entries.items()))!r})"
