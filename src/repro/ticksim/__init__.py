"""Tick-asynchronous simulation subsystem.

The continuous-time engine in :mod:`repro.sim` models the paper's adversary
as a scheduler choosing which agent advances along its trajectory next.
This package provides the discrete counterpart (ROADMAP item 5): a
tick-stepped engine where, each tick, an *interleaving model* chooses which
agents activate and in what order, a *fault plan* may crash agents or drop
messages, and a *data collector* records bounded per-agent variables into
``RunRecord.extra["ticks"]``.

Everything flows through the existing runtime: interleavers register in
:data:`repro.runtime.registry.INTERLEAVERS`, the tick problem kinds
(``tick_leader``, ``tick_gossip``, ``tick_gathering``) in
:data:`repro.runtime.registry.PROBLEMS`, and their fault/interleaving
configuration travels declaratively in ``ScenarioSpec.problem_params`` — so
faulty runs are content-addressed, cacheable and sweepable like any other
cell.
"""

from .datacollector import TICKS_SCHEMA_VERSION, DataCollector
from .engine import AgentContext, TickAgent, TickEngine, TickResult
from .faults import FaultPlan
from .interleavers import Interleaver
from . import problems as _problems  # noqa: F401  (registers the tick problem kinds)

__all__ = [
    "AgentContext",
    "DataCollector",
    "FaultPlan",
    "Interleaver",
    "TickAgent",
    "TickEngine",
    "TickResult",
    "TICKS_SCHEMA_VERSION",
]
