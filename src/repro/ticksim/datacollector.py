"""Per-tick variable collection into ``RunRecord.extra["ticks"]``.

The collector is the tick engine's counterpart of :mod:`repro.obs.trace`:
a schema-versioned, bounded, JSON-plain payload that travels inside the
record's ``extra`` bag — store-queryable, mergeable and servable like any
other result field.  The payload shape::

    {
      "schema": 1,
      "every": 1,                 # ticks between snapshots
      "ticks": [
        {"tick": 1,
         "activated": [0, 2, 1],  # activation order that tick
         "agents": {"0": {"node": 3, "halted": false, ...}, ...}},
        ...
      ],
      "ticks_dropped": 0          # snapshots beyond the cap
    }

Agent variables come from :meth:`repro.ticksim.engine.TickAgent.observed`
and must stay small and JSON-plain (ints, bools, strings) — the collector
is for bounded state, not event logs.  Agent keys are strings so a record
rebuilt from its JSON form compares equal to the original (the
content-addressed store's round-trip property).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

__all__ = ["DataCollector", "TICKS_SCHEMA_VERSION", "DEFAULT_MAX_TICK_RECORDS"]

#: Version stamp carried by every ticks payload.
TICKS_SCHEMA_VERSION = 1

#: Default cap on recorded tick snapshots; later ticks are counted, not kept.
DEFAULT_MAX_TICK_RECORDS = 64


class DataCollector:
    """Record bounded per-agent variables, one snapshot per ``every`` ticks."""

    def __init__(
        self, max_records: int = DEFAULT_MAX_TICK_RECORDS, every: int = 1
    ) -> None:
        self.max_records = max(0, int(max_records))
        self.every = max(1, int(every))
        self._ticks: List[Dict[str, Any]] = []
        self._dropped = 0

    def collect(
        self,
        tick: int,
        activated: Sequence[int],
        agent_vars: Mapping[int, Mapping[str, Any]],
    ) -> None:
        """Snapshot ``tick`` if it falls on the cadence and fits the cap."""
        if tick % self.every != 0:
            return
        if len(self._ticks) >= self.max_records:
            self._dropped += 1
            return
        self._ticks.append(
            {
                "tick": tick,
                "activated": list(activated),
                "agents": {
                    str(agent_id): dict(variables)
                    for agent_id, variables in sorted(agent_vars.items())
                },
            }
        )

    def payload(self) -> Dict[str, Any]:
        """The JSON-plain ``extra["ticks"]`` document."""
        return {
            "schema": TICKS_SCHEMA_VERSION,
            "every": self.every,
            "ticks": list(self._ticks),
            "ticks_dropped": self._dropped,
        }
