"""Registered experiment tables for the tick-asynchronous problem kinds.

Three tables (T1–T3), one per tick problem, each sweeping size × fault
configuration under the seeded-random interleaver and aggregating over
seeds — success rate and ticks-to-termination per ``(family, n,
fault_rate)`` group:

* **T1** ``tick_leader`` — consensus under crash faults.  The ``consensus``
  column is the ``min`` (logical *all*) of the per-seed consensus flags, so
  it reads ``True`` exactly when every seeded run elected exactly one
  leader — the property CI asserts at ``fault_rate=0``.
* **T2** ``tick_gossip`` — broadcast cover under message drops.
* **T3** ``tick_gathering`` — crash-tolerant gathering of mobile agents.

The grids are deliberately small (tens of cells, sub-second each) so the
tables are cheap to populate cold and render warm from a store with zero
executions, like E1–E6.  The T1 defaults are the contract for the CI
``ticksim-smoke`` job: its queue-dispatched sweep must enumerate exactly
this grid for the warm re-render to hit every cell.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Tuple

from ..analysis.experiment_spec import ExperimentSpec, experiment
from ..runtime.spec import SweepSpec

__all__ = ["TICK_EXPERIMENTS"]

#: The registered tick experiment names, in registration order.
TICK_EXPERIMENTS = ("T1", "T2", "T3")


def _fault_param_sets(
    fault_rates: Sequence[float],
    *,
    interleaving: str,
    max_ticks: int,
    crash_window: Optional[int] = None,
    drop_rate: Optional[float] = None,
) -> Tuple[Mapping[str, Any], ...]:
    sets = []
    for rate in fault_rates:
        params = {
            "interleaving": interleaving,
            "fault_rate": float(rate),
            "max_ticks": int(max_ticks),
        }
        if crash_window is not None:
            params["crash_window"] = int(crash_window)
        if drop_rate is not None:
            params["drop_rate"] = float(drop_rate)
        sets.append(params)
    return tuple(sets)


def _tick_pipeline(success_column: str) -> Tuple[Mapping[str, Any], ...]:
    """Shared T-table shape: per-record extract, then seed aggregation."""
    return (
        {
            "op": "extract",
            "columns": [
                "family",
                "n",
                "fault_rate",
                "drop_rate",
                "seed",
                "ok",
                "consensus",
                "cost",
                "alive",
            ],
        },
        {
            "op": "group_by",
            "keys": ["family", "n", "fault_rate", "drop_rate"],
            "aggregates": {
                success_column: ["mean", "ok"],
                "consensus": ["min", "consensus"],
                "mean_ticks": ["mean", "cost"],
                "max_ticks": ["max", "cost"],
                "min_alive": ["min", "alive"],
                "runs": ["count", "seed"],
            },
        },
    )


@experiment("T1")
def _t1(
    sizes: Sequence[int] = (4, 6),
    seeds: Sequence[int] = tuple(range(5)),
    family: str = "ring",
    fault_rates: Sequence[float] = (0.0, 0.25),
    interleaving: str = "random",
    max_ticks: int = 400,
    crash_window: int = 8,
) -> ExperimentSpec:
    """T1: tick-asynchronous leader election under crash faults."""
    sweep = SweepSpec(
        problems=("tick_leader",),
        families=(family,),
        sizes=tuple(sizes),
        seeds=tuple(seeds),
        problem_param_sets=_fault_param_sets(
            fault_rates,
            interleaving=interleaving,
            max_ticks=max_ticks,
            crash_window=crash_window,
        ),
        name="t1-tick-leader",
    )
    return ExperimentSpec(
        name="T1",
        title="T1: tick-async leader election vs n and fault rate",
        description=(
            "Flood-max leader election under the seeded-random interleaver; "
            "consensus = every seed elected exactly one leader."
        ),
        sweep=sweep,
        pipeline=_tick_pipeline("success_rate"),
        columns=(
            "family",
            "n",
            "fault_rate",
            "success_rate",
            "consensus",
            "mean_ticks",
            "runs",
        ),
    )


@experiment("T2")
def _t2(
    sizes: Sequence[int] = (4, 6, 8),
    seeds: Sequence[int] = tuple(range(5)),
    family: str = "ring",
    drop_rates: Sequence[float] = (0.0, 0.3),
    interleaving: str = "random",
    max_ticks: int = 400,
) -> ExperimentSpec:
    """T2: tick-asynchronous gossip cover under message drops."""
    param_sets = tuple(
        {
            "interleaving": interleaving,
            "drop_rate": float(rate),
            "max_ticks": int(max_ticks),
        }
        for rate in drop_rates
    )
    sweep = SweepSpec(
        problems=("tick_gossip",),
        families=(family,),
        sizes=tuple(sizes),
        seeds=tuple(seeds),
        problem_param_sets=param_sets,
        name="t2-tick-gossip",
    )
    return ExperimentSpec(
        name="T2",
        title="T2: tick-async gossip cover vs n and drop rate",
        description=(
            "Rumour flooding with bounded rebroadcasts; cover_rate = fraction "
            "of seeded runs informing every alive agent."
        ),
        sweep=sweep,
        pipeline=(
            {
                "op": "extract",
                "columns": [
                    "family",
                    "n",
                    "drop_rate",
                    "seed",
                    "ok",
                    "cost",
                    "informed",
                ],
            },
            {
                "op": "group_by",
                "keys": ["family", "n", "drop_rate"],
                "aggregates": {
                    "cover_rate": ["mean", "ok"],
                    "mean_ticks": ["mean", "cost"],
                    "mean_informed": ["mean", "informed"],
                    "runs": ["count", "seed"],
                },
            },
        ),
        columns=(
            "family",
            "n",
            "drop_rate",
            "cover_rate",
            "mean_ticks",
            "mean_informed",
            "runs",
        ),
    )


@experiment("T3")
def _t3(
    sizes: Sequence[int] = (4, 6),
    seeds: Sequence[int] = tuple(range(5)),
    family: str = "ring",
    team_size: int = 3,
    fault_rates: Sequence[float] = (0.0, 0.25),
    interleaving: str = "random",
    max_ticks: int = 2000,
    crash_window: int = 50,
) -> ExperimentSpec:
    """T3: gathering with crash-faulty agents (crashed agents excluded)."""
    sweep = SweepSpec(
        problems=("tick_gathering",),
        families=(family,),
        sizes=tuple(sizes),
        seeds=tuple(seeds),
        team_sizes=(team_size,),
        problem_param_sets=_fault_param_sets(
            fault_rates,
            interleaving=interleaving,
            max_ticks=max_ticks,
            crash_window=crash_window,
        ),
        name="t3-tick-gathering",
    )
    return ExperimentSpec(
        name="T3",
        title="T3: crash-tolerant gathering vs n and fault rate",
        description=(
            "Seeded lazy random walks until all alive agents co-locate; "
            "crashed agents are excluded from the goal."
        ),
        sweep=sweep,
        pipeline=(
            {
                "op": "extract",
                "columns": [
                    "family",
                    "n",
                    "fault_rate",
                    "team_size",
                    "seed",
                    "ok",
                    "cost",
                    "alive",
                ],
            },
            {
                "op": "group_by",
                "keys": ["family", "n", "fault_rate", "team_size"],
                "aggregates": {
                    "gather_rate": ["mean", "ok"],
                    "mean_ticks": ["mean", "cost"],
                    "p95_ticks": ["p95", "cost"],
                    "min_alive": ["min", "alive"],
                    "runs": ["count", "seed"],
                },
            },
        ),
        columns=(
            "family",
            "n",
            "fault_rate",
            "team_size",
            "gather_rate",
            "mean_ticks",
            "p95_ticks",
            "min_alive",
            "runs",
        ),
    )
