"""Declarative fault injection for tick-asynchronous runs.

A :class:`FaultPlan` is derived *entirely* from ``(problem_params, seed,
n_agents, max_ticks)``, so the faults a run suffers are part of its spec:
two cells with the same spec crash the same agents at the same ticks and
drop the same messages, and the content-addressed store can serve either
for the other.  The recognised ``problem_params`` keys:

``fault_rate`` (float, default 0.0)
    Each agent is independently crash-faulty with this probability; a
    faulty agent's crash tick is drawn uniformly from ``[1, crash_window]``.
    Draws come from ``random.Random(f"{seed}:faults")`` in agent-id order.
``crash_window`` (int, default ``max_ticks``)
    Upper bound of the ``fault_rate`` crash-tick draw.  Protocols often
    converge long before ``max_ticks``; a small window makes the drawn
    crashes land *during* the protocol instead of after it.
``crash_at`` (mapping, default ``{}``)
    Explicit ``{agent_id: tick}`` crashes.  Keys **must** be strings (e.g.
    ``{"2": 5}``) so the spec survives a JSON round trip byte-identically;
    explicit entries override ``fault_rate`` draws for the same agent.
``crash_after_activations`` (mapping, default ``{}``)
    ``{agent_id: count}`` — the agent crashes in place of its ``count``-th
    activation.  String keys, like ``crash_at``.
``drop_rate`` (float, default 0.0)
    Probability that any sent message is silently dropped.  Draws come from
    ``random.Random(f"{seed}:drops")`` in send order (which is itself
    deterministic, because activation order is).

A crashed agent never activates again, sends nothing, and receives
nothing; problems decide how crashed agents count towards the goal (e.g.
gathering excludes them).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Tuple

from ..exceptions import ReproError

__all__ = ["FaultPlan"]


def _int_keyed(name: str, value: Any, n_agents: int) -> Dict[int, int]:
    """Validate a ``{str(agent_id): int}`` param mapping into int keys."""
    if not value:
        return {}
    if not isinstance(value, Mapping):
        # _freeze_params leaves nested values alone, so a mapping that went
        # through a spec may arrive as a pair tuple.
        try:
            value = dict(value)
        except (TypeError, ValueError):
            raise ReproError(f"{name} must be a mapping, got {value!r}") from None
    result: Dict[int, int] = {}
    for key, entry in value.items():
        if not isinstance(key, str):
            raise ReproError(
                f"{name} keys must be strings (agent ids), got {key!r}; "
                "string keys are what survive the spec's JSON round trip"
            )
        agent_id = int(key)
        if not 0 <= agent_id < n_agents:
            raise ReproError(f"{name} names agent {agent_id}, but there are {n_agents}")
        result[agent_id] = int(entry)
    return result


class FaultPlan:
    """The complete, pre-drawn fault schedule of one run."""

    def __init__(
        self,
        *,
        crash_tick_of: Dict[int, int],
        activation_limit_of: Dict[int, int],
        drop_rate: float,
        seed: int,
    ) -> None:
        self.crash_tick_of = dict(crash_tick_of)
        self.activation_limit_of = dict(activation_limit_of)
        self.drop_rate = float(drop_rate)
        self._drop_rng = random.Random(f"{seed}:drops")

    @classmethod
    def from_params(
        cls, params: Mapping[str, Any], *, n_agents: int, seed: int, max_ticks: int
    ) -> "FaultPlan":
        fault_rate = float(params.get("fault_rate", 0.0))
        drop_rate = float(params.get("drop_rate", 0.0))
        for name, rate in (("fault_rate", fault_rate), ("drop_rate", drop_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {rate}")
        crash_window = int(params.get("crash_window", max_ticks))
        if not 1 <= crash_window <= max_ticks:
            raise ReproError(
                f"crash_window must be in [1, max_ticks={max_ticks}], got {crash_window}"
            )
        crash_tick_of: Dict[int, int] = {}
        if fault_rate > 0.0:
            rng = random.Random(f"{seed}:faults")
            for agent_id in range(n_agents):
                if rng.random() < fault_rate:
                    crash_tick_of[agent_id] = rng.randint(1, crash_window)
        crash_tick_of.update(_int_keyed("crash_at", params.get("crash_at"), n_agents))
        activation_limit_of = _int_keyed(
            "crash_after_activations", params.get("crash_after_activations"), n_agents
        )
        return cls(
            crash_tick_of=crash_tick_of,
            activation_limit_of=activation_limit_of,
            drop_rate=drop_rate,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # queries (called by the engine)
    # ------------------------------------------------------------------
    def crashes_at_tick(self, agent_id: int, tick: int) -> bool:
        """Whether ``agent_id`` is scheduled to crash at the start of ``tick``."""
        return self.crash_tick_of.get(agent_id) == tick

    def crashes_on_activation(self, agent_id: int, activation: int) -> bool:
        """Whether ``agent_id``'s ``activation``-th activation is a crash."""
        limit = self.activation_limit_of.get(agent_id)
        return limit is not None and activation >= limit

    def drops_message(self) -> bool:
        """Draw the next message-drop decision (deterministic in send order)."""
        if self.drop_rate <= 0.0:
            return False
        return self._drop_rng.random() < self.drop_rate

    @property
    def faulty_agents(self) -> Tuple[int, ...]:
        """Agents scheduled to crash (by tick or activation count), sorted."""
        return tuple(sorted(set(self.crash_tick_of) | set(self.activation_limit_of)))
