"""Tick-asynchronous problem kinds: leader election, gossip, gathering.

Three problems registered in :data:`repro.runtime.registry.PROBLEMS` on top
of the tick engine.  All three read their configuration from
``ScenarioSpec.problem_params`` (every key optional):

``interleaving`` (default ``"synchronous"``)
    An :data:`~repro.runtime.registry.INTERLEAVERS` name.
``interleaving_params`` (default ``{}``)
    Keyword parameters for the interleaver factory (string keys, e.g.
    ``{"patience": 16}`` for ``"lag"``).
``max_ticks`` (default 1000)
    Tick budget; the run stops with reason ``"tick_limit"`` beyond it.
``fault_rate``, ``crash_at``, ``crash_after_activations``, ``drop_rate``
    The fault plan (see :mod:`repro.ticksim.faults`).
``record_ticks`` (default ``True``), ``max_tick_records`` (default 64),
``ticks_every`` (default 1)
    Data-collector knobs; the payload lands in ``extra["ticks"]``.

Every record echoes its effective configuration (``interleaving``,
``fault_rate``, ``drop_rate``) into ``extra`` so experiment pipelines can
extract them as columns — ``problem_params`` is not on the field-resolution
path of :func:`repro.runtime.records.resolve_field`.

The kinds (cost = ticks to termination, decisions = total activations):

``tick_leader``
    One stationary agent per node (labels ``3 + 2 i`` unless
    ``spec.labels`` says otherwise) flooding the maximum label.  The run
    stops when the network is stable (no broadcasts pending, no mail in
    flight); the consensus check then requires *exactly one* alive agent
    claiming leadership and unanimous agreement on its label — crash the
    top-labelled agent mid-flood and zero agents claim, which is precisely
    the fault-sensitivity the T1 experiment measures.
``tick_gossip``
    A rumour starts at agent 0 and floods; each informed agent rebroadcasts
    a bounded number of times (``rebroadcasts``, default 3 — headroom
    against ``drop_rate``).  Success = every alive agent informed.
``tick_gathering``
    ``spec.team_size`` (default 3) mobile agents perform seeded random
    walks; success = all alive agents co-located.  Crashed agents are
    excluded from the goal, making this the crash-tolerant gathering
    variant.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import ReproError
from ..exploration.cost_model import CostModel
from ..graphs.port_graph import PortLabeledGraph
from ..runtime.records import RunRecord
from ..runtime.registry import INTERLEAVERS, PROBLEMS
from ..runtime.spec import ScenarioSpec
from .datacollector import DEFAULT_MAX_TICK_RECORDS, DataCollector
from .engine import AgentContext, TickAgent, TickEngine, TickResult
from .faults import FaultPlan

__all__ = ["build_tick_engine", "DEFAULT_MAX_TICKS"]

#: Default tick budget of every tick problem.
DEFAULT_MAX_TICKS = 1000


# ----------------------------------------------------------------------
# shared scaffolding
# ----------------------------------------------------------------------
def _tick_config(spec: ScenarioSpec) -> Dict[str, Any]:
    params = spec.problem_kwargs
    interleaving = str(params.get("interleaving", "synchronous"))
    interleaving_params = dict(params.get("interleaving_params") or {})
    max_ticks = int(params.get("max_ticks", DEFAULT_MAX_TICKS))
    return {
        "interleaving": interleaving,
        "interleaving_params": interleaving_params,
        "max_ticks": max_ticks,
        "fault_rate": float(params.get("fault_rate", 0.0)),
        "drop_rate": float(params.get("drop_rate", 0.0)),
        "record_ticks": bool(params.get("record_ticks", True)),
        "max_tick_records": int(params.get("max_tick_records", DEFAULT_MAX_TICK_RECORDS)),
        "ticks_every": int(params.get("ticks_every", 1)),
    }


def build_tick_engine(
    spec: ScenarioSpec, graph: PortLabeledGraph, agents: List[TickAgent]
) -> Tuple[TickEngine, Dict[str, Any]]:
    """Assemble interleaver + faults + collector around ``agents``.

    Returns the engine and the parsed config (which the problems echo into
    the record's ``extra`` bag).
    """
    config = _tick_config(spec)
    interleaver = INTERLEAVERS.create(
        config["interleaving"], seed=spec.seed, **config["interleaving_params"]
    )
    faults = FaultPlan.from_params(
        spec.problem_kwargs,
        n_agents=len(agents),
        seed=spec.seed,
        max_ticks=config["max_ticks"],
    )
    collector = (
        DataCollector(max_records=config["max_tick_records"], every=config["ticks_every"])
        if config["record_ticks"]
        else None
    )
    engine = TickEngine(
        graph,
        agents,
        interleaver=interleaver,
        faults=faults,
        collector=collector,
        max_ticks=config["max_ticks"],
    )
    return engine, config


def _tick_record(
    spec: ScenarioSpec,
    graph: PortLabeledGraph,
    result: TickResult,
    config: Dict[str, Any],
    *,
    ok: bool,
    extra: Dict[str, Any],
) -> RunRecord:
    payload: Dict[str, Any] = {
        "interleaving": config["interleaving"],
        "fault_rate": config["fault_rate"],
        "drop_rate": config["drop_rate"],
        "ticks": result.ticks_payload if config["record_ticks"] else None,
        "crashed": result.crashed,
        "messages_sent": result.messages_sent,
        "messages_dropped": result.messages_dropped,
        "moves": result.moves,
    }
    payload.update(extra)
    return RunRecord(
        spec=spec,
        ok=ok,
        cost=result.ticks,
        reason=result.reason,
        decisions=result.activations,
        graph_name=graph.name,
        graph_size=graph.size,
        graph_edges=graph.num_edges,
        extra=payload,
    )


def _alive(engine: TickEngine) -> List[TickAgent]:
    return [agent for agent in engine.agents.values() if agent.alive]


# ----------------------------------------------------------------------
# leader election (flood-max)
# ----------------------------------------------------------------------
class _LeaderAgent(TickAgent):
    def __init__(self, agent_id: int, node: int, label: int) -> None:
        super().__init__(agent_id, node, label)
        self.max_seen = self.label
        self.pending_broadcast = True

    def on_activate(self, ctx: AgentContext) -> None:
        for message in ctx.receive():
            if message > self.max_seen:
                self.max_seen = message
                self.pending_broadcast = True
        if self.pending_broadcast:
            ctx.broadcast(self.max_seen)
            self.pending_broadcast = False

    def observed(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "alive": self.alive,
            "max_seen": self.max_seen,
            "is_leader": self.alive and self.max_seen == self.label,
        }


def _leader_stable(engine: TickEngine) -> bool:
    # Stable = nothing will ever change again: no broadcast pending, no
    # message in flight, no unread mail.  (Engine goal checks run after the
    # tick's activations, before the next delivery.)
    if engine._outbox:
        return False
    for agent in _alive(engine):
        if agent.pending_broadcast or agent.inbox:
            return False
    return True


@PROBLEMS.register("tick_leader")
def _run_tick_leader(
    spec: ScenarioSpec, graph: PortLabeledGraph, model: CostModel
) -> RunRecord:
    nodes = sorted(graph.nodes())
    if spec.labels is not None:
        labels = list(spec.labels)
        if len(labels) != len(nodes):
            raise ReproError(
                f"tick_leader needs one label per node, got {len(labels)} "
                f"for {len(nodes)} nodes"
            )
        if len(set(labels)) != len(labels):
            raise ReproError("tick_leader labels must be distinct")
    else:
        labels = [3 + 2 * index for index in range(len(nodes))]
    agents: List[TickAgent] = [
        _LeaderAgent(index, node, labels[index]) for index, node in enumerate(nodes)
    ]
    engine, config = build_tick_engine(spec, graph, agents)
    result = engine.run(goal=_leader_stable)
    alive = _alive(engine)
    leaders = [agent.label for agent in alive if agent.max_seen == agent.label]
    agreed = len({agent.max_seen for agent in alive}) == 1 if alive else False
    consensus = result.reason == "done" and agreed and len(leaders) == 1
    return _tick_record(
        spec,
        graph,
        result,
        config,
        ok=consensus,
        extra={
            "consensus": consensus,
            "leader": leaders[0] if len(leaders) == 1 else None,
            "leaders": len(leaders),
            "agreed": agreed,
            "alive": len(alive),
        },
    )


# ----------------------------------------------------------------------
# gossip / broadcast-until-cover
# ----------------------------------------------------------------------
class _GossipAgent(TickAgent):
    def __init__(self, agent_id: int, node: int, rebroadcasts: int) -> None:
        super().__init__(agent_id, node)
        self.informed = agent_id == 0
        self.broadcasts_left = int(rebroadcasts)

    def on_activate(self, ctx: AgentContext) -> None:
        if any(message == "rumor" for message in ctx.receive()):
            self.informed = True
        if self.informed and self.broadcasts_left > 0:
            ctx.broadcast("rumor")
            self.broadcasts_left -= 1

    def observed(self) -> Dict[str, Any]:
        return {"node": self.node, "alive": self.alive, "informed": self.informed}


def _gossip_covered(engine: TickEngine) -> bool:
    alive = _alive(engine)
    return bool(alive) and all(agent.informed for agent in alive)


@PROBLEMS.register("tick_gossip")
def _run_tick_gossip(
    spec: ScenarioSpec, graph: PortLabeledGraph, model: CostModel
) -> RunRecord:
    rebroadcasts = int(spec.problem_kwargs.get("rebroadcasts", 3))
    if rebroadcasts < 1:
        raise ReproError("tick_gossip needs rebroadcasts >= 1")
    nodes = sorted(graph.nodes())
    agents: List[TickAgent] = [
        _GossipAgent(index, node, rebroadcasts) for index, node in enumerate(nodes)
    ]
    engine, config = build_tick_engine(spec, graph, agents)
    result = engine.run(goal=_gossip_covered)
    alive = _alive(engine)
    informed = sum(1 for agent in alive if agent.informed)
    return _tick_record(
        spec,
        graph,
        result,
        config,
        ok=result.reason == "done",
        extra={
            "covered": result.reason == "done",
            "informed": informed,
            "alive": len(alive),
            "rebroadcasts": rebroadcasts,
        },
    )


# ----------------------------------------------------------------------
# gathering with crash-faulty agents
# ----------------------------------------------------------------------
class _WalkerAgent(TickAgent):
    def __init__(self, agent_id: int, node: int, seed: int) -> None:
        super().__init__(agent_id, node)
        # Per-agent walk stream, stable across processes (string seeding).
        self._rng = random.Random(f"{seed}:walk:{agent_id}")

    def on_activate(self, ctx: AgentContext) -> None:
        # Lazy walk: stay put with probability 1/(d+1).  Pure lock-step
        # walks on a bipartite graph (an even ring) preserve the walkers'
        # parity relative to each other, so non-lazy synchronous walkers
        # starting on opposite colours would never co-locate.
        port = self._rng.randrange(ctx.degree + 1)
        if port < ctx.degree:
            ctx.move(port)

    def observed(self) -> Dict[str, Any]:
        return {"node": self.node, "alive": self.alive}


def _gathered(engine: TickEngine) -> bool:
    alive = _alive(engine)
    return bool(alive) and len({agent.node for agent in alive}) == 1


@PROBLEMS.register("tick_gathering")
def _run_tick_gathering(
    spec: ScenarioSpec, graph: PortLabeledGraph, model: CostModel
) -> RunRecord:
    nodes = sorted(graph.nodes())
    k = spec.team_size if spec.team_size is not None else 3
    if k < 1:
        raise ReproError("tick_gathering needs at least one agent")
    if spec.starts is not None:
        starts = list(spec.starts)
        if len(starts) != k:
            raise ReproError("tick_gathering needs one start node per agent")
    else:
        # Spread evenly, like the teams placement rule.
        starts = [nodes[(index * graph.size) // k] for index in range(k)]
    agents: List[TickAgent] = [
        _WalkerAgent(index, start, spec.seed) for index, start in enumerate(starts)
    ]
    engine, config = build_tick_engine(spec, graph, agents)
    result = engine.run(goal=_gathered)
    alive = _alive(engine)
    gathered = result.reason == "done"
    meeting: Optional[int] = alive[0].node if gathered and alive else None
    return _tick_record(
        spec,
        graph,
        result,
        config,
        ok=gathered,
        extra={
            "gathered": gathered,
            "meeting_node": meeting,
            "alive": len(alive),
            "team_size": k,
        },
    )
