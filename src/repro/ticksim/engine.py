"""The tick-stepped engine: interleaved activations over a port graph.

Execution model (the discrete analogue of :mod:`repro.sim.engine`):

* Time advances in integer ticks, starting at 1.  Each tick:

  1. messages sent last tick are delivered to the mailboxes of their target
     nodes, and every agent's inbox becomes the mail at its current node;
  2. crash faults scheduled for this tick fire (see
     :mod:`repro.ticksim.faults`);
  3. the interleaver names which alive, unhalted agents activate, in order;
     each activated agent runs :meth:`TickAgent.on_activate` with an
     :class:`AgentContext` through which it may read its inbox, ``send``
     messages out of ports (delivered next tick, possibly dropped), ``move``
     through a port (immediate), or ``halt``;
  4. the data collector snapshots the agents' observed variables;
  5. the goal predicate is evaluated — if it holds the run stops with
     reason ``"done"``.

* The run also stops when nothing can ever activate again (all agents
  halted or crashed — reason ``"quiescent"``) or when ``max_ticks`` ticks
  have elapsed (reason ``"tick_limit"``).

Everything is deterministic in ``(graph, agents, interleaver, faults)``:
the engine draws no randomness of its own, so byte-identical records across
the serial, pool and queue executors follow from the components being
deterministic in the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ReproError
from ..graphs.port_graph import PortLabeledGraph
from .datacollector import DataCollector
from .faults import FaultPlan
from .interleavers import Interleaver

__all__ = ["TickAgent", "AgentContext", "TickEngine", "TickResult"]


class TickAgent:
    """Base class for tick-activated agents.

    Subclasses implement :meth:`on_activate` (the agent's whole program —
    there is no other hook) and :meth:`observed` (the bounded variables the
    data collector snapshots).  Agents never touch the engine directly;
    everything goes through the :class:`AgentContext`.
    """

    def __init__(self, agent_id: int, node: int, label: Optional[int] = None) -> None:
        self.id = int(agent_id)
        self.node = int(node)
        self.label = self.id if label is None else int(label)
        self.alive = True
        self.halted = False
        self.activations = 0
        self.inbox: List[Any] = []

    def on_activate(self, ctx: "AgentContext") -> None:
        raise NotImplementedError

    def observed(self) -> Dict[str, Any]:
        """Small JSON-plain variables for the per-tick snapshot."""
        return {"node": self.node, "halted": self.halted, "alive": self.alive}


class AgentContext:
    """The activated agent's window onto the engine (one per activation)."""

    def __init__(self, engine: "TickEngine", agent: TickAgent) -> None:
        self._engine = engine
        self.agent = agent
        self.tick = engine.tick

    @property
    def degree(self) -> int:
        """Degree of the agent's current node."""
        return self._engine.graph.degree(self.agent.node)

    @property
    def inbox(self) -> List[Any]:
        """Messages delivered (and not yet drained) at the agent's nodes."""
        return self.agent.inbox

    def receive(self) -> List[Any]:
        """Drain the inbox: return all pending messages and clear it."""
        messages = self.agent.inbox
        self.agent.inbox = []
        return messages

    def send(self, port: int, payload: Any) -> None:
        """Send ``payload`` through ``port``; delivered next tick (or dropped)."""
        self._engine._send(self.agent, port, payload)

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` through every port of the current node."""
        for port in range(self.degree):
            self.send(port, payload)

    def move(self, port: int) -> int:
        """Traverse ``port`` immediately; returns the entry port at the target."""
        target, entry_port = self._engine.graph.traverse(self.agent.node, port)
        self.agent.node = target
        self._engine.moves += 1
        return entry_port

    def halt(self) -> None:
        """Stop activating forever (a normal, non-faulty termination)."""
        self.agent.halted = True


@dataclass
class TickResult:
    """What one engine run did, independent of any problem's goal."""

    reason: str  # "done" | "quiescent" | "tick_limit"
    ticks: int
    activations: int
    moves: int
    messages_sent: int
    messages_dropped: int
    crashed: Tuple[int, ...]
    ticks_payload: Dict[str, Any] = field(default_factory=dict)


class TickEngine:
    """Drive a set of :class:`TickAgent` instances to termination."""

    def __init__(
        self,
        graph: PortLabeledGraph,
        agents: Sequence[TickAgent],
        interleaver: Interleaver,
        faults: FaultPlan,
        collector: Optional[DataCollector] = None,
        max_ticks: int = 1000,
    ) -> None:
        if not agents:
            raise ReproError("the tick engine needs at least one agent")
        ids = [agent.id for agent in agents]
        if len(set(ids)) != len(ids):
            raise ReproError(f"duplicate agent ids: {sorted(ids)}")
        self.graph = graph
        self.agents: Dict[int, TickAgent] = {agent.id: agent for agent in agents}
        self.interleaver = interleaver
        self.faults = faults
        self.collector = collector
        self.max_ticks = int(max_ticks)
        if self.max_ticks < 1:
            raise ReproError("max_ticks must be positive")
        self.tick = 0
        self.activations = 0
        self.moves = 0
        self.messages_sent = 0
        self.messages_dropped = 0
        self.crashed: List[int] = []
        # Messages in flight: (target_node, payload), delivered next tick.
        self._outbox: List[Tuple[int, Any]] = []

    # ------------------------------------------------------------------
    # engine internals
    # ------------------------------------------------------------------
    def _send(self, agent: TickAgent, port: int, payload: Any) -> None:
        self.messages_sent += 1
        if self.faults.drops_message():
            self.messages_dropped += 1
            return
        target, _entry_port = self.graph.traverse(agent.node, port)
        self._outbox.append((target, payload))

    def _deliver(self) -> None:
        mail: Dict[int, List[Any]] = {}
        for target, payload in self._outbox:
            mail.setdefault(target, []).append(payload)
        self._outbox = []
        # Mail *accumulates* in the inbox until the agent activates and
        # drains it (AgentContext.receive) — an agent the interleaver starves
        # for a few ticks must not lose the messages delivered meanwhile.
        for agent in self.agents.values():
            if agent.alive:
                agent.inbox.extend(mail.get(agent.node, ()))

    def _crash(self, agent: TickAgent) -> None:
        agent.alive = False
        agent.inbox = []
        self.crashed.append(agent.id)

    def _active_ids(self) -> List[int]:
        return sorted(
            agent.id
            for agent in self.agents.values()
            if agent.alive and not agent.halted
        )

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self, goal: Optional[Callable[["TickEngine"], bool]] = None) -> TickResult:
        """Step ticks until ``goal`` holds, nothing can activate, or the limit."""
        reason = "tick_limit"
        while self.tick < self.max_ticks:
            if not self._active_ids():
                reason = "quiescent"
                break
            self.tick += 1
            self._deliver()
            for agent_id in self._active_ids():
                if self.faults.crashes_at_tick(agent_id, self.tick):
                    self._crash(self.agents[agent_id])
            activatable = self._active_ids()
            activated: List[int] = []
            for agent_id in self.interleaver.order(self.tick, activatable):
                agent = self.agents.get(agent_id)
                if agent is None or not agent.alive or agent.halted:
                    continue
                agent.activations += 1
                self.activations += 1
                if self.faults.crashes_on_activation(agent_id, agent.activations):
                    self._crash(agent)
                    continue
                activated.append(agent_id)
                agent.on_activate(AgentContext(self, agent))
            if self.collector is not None:
                self.collector.collect(
                    self.tick,
                    activated,
                    {agent.id: agent.observed() for agent in self.agents.values()},
                )
            if goal is not None and goal(self):
                reason = "done"
                break
        return TickResult(
            reason=reason,
            ticks=self.tick,
            activations=self.activations,
            moves=self.moves,
            messages_sent=self.messages_sent,
            messages_dropped=self.messages_dropped,
            crashed=tuple(sorted(self.crashed)),
            ticks_payload=(
                self.collector.payload() if self.collector is not None else {}
            ),
        )
