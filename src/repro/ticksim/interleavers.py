"""Per-tick activation orders: the tick-asynchronous adversary.

An :class:`Interleaver` is asked once per tick which of the currently alive,
unhalted agents activate and in what order.  It is the discrete analogue of
the continuous-time schedulers in :mod:`repro.sim.schedulers`: the engine
never activates an agent the interleaver did not name, so starvation and
reordering are entirely the interleaver's choice.

Interleavers register in :data:`repro.runtime.registry.INTERLEAVERS` with
the factory signature ``factory(seed=0, **params) -> Interleaver`` (the same
shape as the scheduler registry), and are named by the ``"interleaving"``
key of ``ScenarioSpec.problem_params``:

============== ===============================================================
name           per-tick order
============== ===============================================================
synchronous    every alive agent, in ascending id order (lock-step rounds)
round_robin    exactly one agent per tick, cycling through ids
random         a seeded uniform permutation of the alive agents, redrawn
               per tick
lag            adversarial: starve the lowest-id alive agent for ``patience``
               consecutive ticks, then release it for one tick, repeat with
               the next victim
============== ===============================================================

All interleavers are deterministic in ``(seed, params)`` and in the alive
set they are shown — the property the byte-identical-records guarantee of
the sweep executors rests on.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..runtime.registry import INTERLEAVERS

__all__ = ["Interleaver"]


class Interleaver:
    """Strategy interface: choose this tick's activation order.

    ``order(tick, alive)`` receives the 1-based tick number and the ids of
    the agents that can activate (alive and unhalted, ascending), and
    returns the ids to activate this tick, in activation order.  Returning
    an empty sequence is allowed (the tick passes with message delivery
    only).
    """

    def order(self, tick: int, alive: Sequence[int]) -> List[int]:
        raise NotImplementedError


@INTERLEAVERS.register("synchronous")
class SynchronousInterleaver(Interleaver):
    """Lock-step rounds: every alive agent activates, ascending ids."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def order(self, tick: int, alive: Sequence[int]) -> List[int]:
        return list(alive)


@INTERLEAVERS.register("round_robin")
class RoundRobinInterleaver(Interleaver):
    """One agent per tick, cycling through the alive ids in order."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._cursor = 0

    def order(self, tick: int, alive: Sequence[int]) -> List[int]:
        if not alive:
            return []
        chosen = alive[self._cursor % len(alive)]
        self._cursor += 1
        return [chosen]


@INTERLEAVERS.register("random")
class RandomInterleaver(Interleaver):
    """A fresh seeded uniform permutation of the alive agents each tick."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        # String seeding goes through the sha512 initialiser, which is
        # stable across processes and Python builds (unlike hash()).
        self._rng = random.Random(f"{seed}:interleave")

    def order(self, tick: int, alive: Sequence[int]) -> List[int]:
        permutation = list(alive)
        self._rng.shuffle(permutation)
        return permutation


@INTERLEAVERS.register("lag")
class LagInterleaver(Interleaver):
    """Adversarial starvation: hold one victim back for ``patience`` ticks.

    Every tick all non-victim agents activate (ascending); the victim is
    withheld until it has been starved for ``patience`` consecutive ticks,
    then activates last for one tick, after which the next alive id becomes
    the victim.  With ``patience=0`` this degenerates to ``synchronous``.
    """

    def __init__(self, seed: int = 0, patience: int = 8) -> None:
        self.seed = seed
        self.patience = max(0, int(patience))
        self._victim_index = 0
        self._starved = 0

    def order(self, tick: int, alive: Sequence[int]) -> List[int]:
        if not alive:
            return []
        victim = alive[self._victim_index % len(alive)]
        others = [agent_id for agent_id in alive if agent_id != victim]
        if self._starved < self.patience:
            self._starved += 1
            return others
        self._starved = 0
        self._victim_index += 1
        return others + [victim]
