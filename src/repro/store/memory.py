"""The in-memory result-store backend.

A plain process-local dict behind the :class:`~repro.store.base.ResultStore`
interface: zero I/O, records come back as the very objects that were put.
Used for warm-cache runs inside one process (e.g. an experiment driver that
aggregates the same sweep several ways) and as the reference backend the
file store is tested against.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..runtime.records import RunRecord
from .base import KeyLike, ResultStore

__all__ = ["MemoryStore"]


class MemoryStore(ResultStore):
    """Result store backed by a dict, in insertion order."""

    backend = "memory"

    def __init__(self) -> None:
        self._records: Dict[str, RunRecord] = {}

    def get(self, key: KeyLike) -> Optional[RunRecord]:
        return self._records.get(self.key_of(key))

    def put(self, record: RunRecord) -> str:
        key = record.spec.key()
        self._records.setdefault(key, record)
        return key

    def put_replace(self, record: RunRecord) -> str:
        key = record.spec.key()
        self._records[key] = record
        return key

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._records)

    def clear(self) -> None:
        """Drop every stored record."""
        self._records.clear()
